"""Churn traces: realistic membership dynamics for overlay evaluation.

Measurement studies of deployed overlays (Gnutella/Overnet-era and
later) consistently find Poisson-ish arrivals with heavy-tailed session
lengths. :func:`generate_churn_trace` produces event streams with that
shape — Poisson arrivals, lognormal session durations — against which
the dynamic-membership layers (:class:`~repro.overlay.dynamic.
DynamicOverlay`, :class:`~repro.overlay.protocol.
DistributedJoinProtocol`) and the stream simulator can be driven.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.generators import as_rng

__all__ = ["ChurnEvent", "generate_churn_trace", "replay_trace"]


@dataclass(frozen=True)
class ChurnEvent:
    """One membership event in a trace."""

    time: float
    action: str  # "join" or "leave"
    name: str
    coords: tuple = None  # set for joins


def generate_churn_trace(
    duration: float,
    arrival_rate: float,
    mean_session: float,
    session_sigma: float = 1.0,
    dim: int = 2,
    spread: float = 0.4,
    seed=None,
) -> list[ChurnEvent]:
    """Poisson arrivals, lognormal sessions, Gaussian positions.

    :param duration: trace length in time units; leaves beyond it are
        dropped (the session outlives the trace).
    :param arrival_rate: expected joins per time unit.
    :param mean_session: mean session length. The lognormal's ``mu`` is
        derived so the *mean* (not median) matches.
    :param session_sigma: lognormal shape; 1.0 gives the heavy tail the
        measurement studies report, 0 makes sessions deterministic.
    :param spread: std-dev of member positions around the origin.
    :returns: events sorted by time; joins carry coordinates.
    """
    if duration <= 0 or arrival_rate <= 0 or mean_session <= 0:
        raise ValueError("duration, arrival_rate and mean_session must be positive")
    if session_sigma < 0:
        raise ValueError("session_sigma cannot be negative")
    rng = as_rng(seed)

    # lognormal mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
    mu = np.log(mean_session) - session_sigma**2 / 2.0

    events: list[ChurnEvent] = []
    t = 0.0
    counter = 0
    while True:
        t += float(rng.exponential(1.0 / arrival_rate))
        if t >= duration:
            break
        name = f"peer-{counter}"
        counter += 1
        coords = tuple(float(c) for c in rng.normal(scale=spread, size=dim))
        events.append(ChurnEvent(time=t, action="join", name=name, coords=coords))
        session = float(rng.lognormal(mean=mu, sigma=session_sigma))
        depart = t + session
        if depart < duration:
            events.append(ChurnEvent(time=depart, action="leave", name=name))
    events.sort(key=lambda e: (e.time, e.action == "leave", e.name))
    return events


def replay_trace(overlay, events) -> dict:
    """Drive a membership layer with a trace.

    :param overlay: anything with ``join(name, coords)`` and
        ``leave(name)`` — :class:`DynamicOverlay` and
        :class:`DistributedJoinProtocol` both qualify.
    :returns: counts: ``{"joins": j, "leaves": l, "peak": max members}``.
    """
    joins = leaves = 0
    active = 0
    peak = 0
    for event in events:
        if event.action == "join":
            overlay.join(event.name, event.coords)
            joins += 1
            active += 1
            peak = max(peak, active)
        elif event.action == "leave":
            overlay.leave(event.name)
            leaves += 1
            active -= 1
        else:
            raise ValueError(f"unknown action {event.action!r}")
    return {"joins": joins, "leaves": leaves, "peak": peak}
