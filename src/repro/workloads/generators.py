"""Random point-set generators for the paper's experiments and beyond.

Every generator takes an explicit seed (or :class:`numpy.random.Generator`)
and returns an ``(n, d)`` array **whose row 0 is the multicast source**.
The Section V experiments place the source at the centre of the region;
generators that support other placements say so.

The non-uniform generators exist for the paper's remark that asymptotic
optimality survives any density bounded below by ``eps > 0`` on a convex
region: they exercise exactly that regime.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.regions import Annulus, Ball, ConvexPolygon, Rectangle

__all__ = [
    "as_rng",
    "unit_disk",
    "unit_ball",
    "annulus_points",
    "rectangle_points",
    "polygon_points",
    "clustered_disk",
    "nonuniform_disk",
    "with_source_at_center",
]


def as_rng(seed) -> np.random.Generator:
    """Accept a seed, a Generator, or None (fresh entropy)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _require_positive(n: int) -> int:
    n = int(n)
    if n < 1:
        raise ValueError("need at least one node (the source)")
    return n


def with_source_at_center(points: np.ndarray, center) -> np.ndarray:
    """Prepend the source at ``center`` as row 0."""
    center = np.asarray(center, dtype=np.float64)[None, :]
    return np.concatenate([center, points], axis=0)


def unit_disk(n: int, seed=None) -> np.ndarray:
    """``n`` nodes: the source at the disk centre plus ``n - 1`` receivers
    uniform in the unit disk — the Table I workload."""
    n = _require_positive(n)
    rng = as_rng(seed)
    receivers = Ball(dim=2).sample(n - 1, rng)
    return with_source_at_center(receivers, (0.0, 0.0))


def unit_ball(n: int, dim: int = 3, seed=None) -> np.ndarray:
    """Source at the centre of the unit ``dim``-ball plus uniform
    receivers — the Figure 8 workload for ``dim = 3``."""
    n = _require_positive(n)
    rng = as_rng(seed)
    receivers = Ball(dim=dim).sample(n - 1, rng)
    return with_source_at_center(receivers, (0.0,) * dim)


def annulus_points(
    n: int, r_inner: float = 0.5, r_outer: float = 1.0, dim: int = 2, seed=None
) -> np.ndarray:
    """Source at the centre, receivers uniform in an annulus around it —
    the Section IV-C regime where ``fit_annulus=True`` pays off."""
    n = _require_positive(n)
    rng = as_rng(seed)
    region = Annulus(dim=dim, r_inner=r_inner, r_outer=r_outer)
    receivers = region.sample(n - 1, rng)
    return with_source_at_center(receivers, (0.0,) * dim)


def rectangle_points(
    n: int, lower=(0.0, 0.0), upper=(2.0, 1.0), source=None, seed=None
) -> np.ndarray:
    """Receivers uniform in a box; source anywhere inside (default: its
    centre). Exercises the general-convex-region claim of Section IV-C."""
    n = _require_positive(n)
    rng = as_rng(seed)
    region = Rectangle(lower=tuple(lower), upper=tuple(upper))
    if source is None:
        source = tuple(
            (lo + hi) / 2.0 for lo, hi in zip(region.lower, region.upper)
        )
    receivers = region.sample(n - 1, rng)
    return with_source_at_center(receivers, source)


def polygon_points(n: int, vertices, source=None, seed=None) -> np.ndarray:
    """Receivers uniform in a convex polygon; source defaults to the
    vertex centroid (inside, by convexity)."""
    n = _require_positive(n)
    rng = as_rng(seed)
    region = ConvexPolygon(vertices=tuple(map(tuple, vertices)))
    if source is None:
        source = tuple(np.mean(np.asarray(vertices, dtype=np.float64), axis=0))
    receivers = region.sample(n - 1, rng)
    return with_source_at_center(receivers, source)


def clustered_disk(
    n: int,
    clusters: int = 5,
    spread: float = 0.08,
    background: float = 0.2,
    seed=None,
) -> np.ndarray:
    """A clustered (non-uniform) population inside the unit disk.

    ``background`` of the receivers are uniform over the disk (keeping
    the density bounded below, per the paper's extension remark); the
    rest are Gaussian blobs around random cluster centres, resampled
    until they land inside the disk.
    """
    n = _require_positive(n)
    if not 0.0 <= background <= 1.0:
        raise ValueError("background must be a fraction in [0, 1]")
    rng = as_rng(seed)
    receivers = n - 1
    n_background = int(round(receivers * background))
    n_clustered = receivers - n_background
    disk = Ball(dim=2)
    base = disk.sample(n_background, rng)

    centers = disk.sample(max(clusters, 1), rng) * 0.7
    out = []
    remaining = n_clustered
    while remaining > 0:
        pick = rng.integers(0, len(centers), size=remaining)
        pts = centers[pick] + rng.normal(scale=spread, size=(remaining, 2))
        inside = pts[np.sqrt((pts**2).sum(axis=1)) <= 1.0]
        out.append(inside)
        remaining -= inside.shape[0]
    clustered = (
        np.concatenate(out, axis=0)[:n_clustered]
        if out
        else np.empty((0, 2))
    )
    receivers_arr = np.concatenate([base, clustered], axis=0)
    rng.shuffle(receivers_arr, axis=0)
    return with_source_at_center(receivers_arr, (0.0, 0.0))


def nonuniform_disk(n: int, tilt: float = 0.8, seed=None) -> np.ndarray:
    """Receivers in the unit disk with density ``1 + tilt * x`` (linear
    gradient, bounded below by ``1 - tilt > 0``), sampled by rejection.

    This is exactly the "density strictly more than some eps inside the
    convex region" case the paper's asymptotic result extends to.
    """
    n = _require_positive(n)
    if not 0.0 <= tilt < 1.0:
        raise ValueError("tilt must be in [0, 1) to keep the density positive")
    rng = as_rng(seed)
    receivers = n - 1
    disk = Ball(dim=2)
    out = [np.empty((0, 2))]
    remaining = receivers
    while remaining > 0:
        batch = disk.sample(int(remaining * 2.2) + 8, rng)
        accept = rng.random(batch.shape[0]) < (1.0 + tilt * batch[:, 0]) / (
            1.0 + tilt
        )
        kept = batch[accept]
        out.append(kept)
        remaining -= kept.shape[0]
    receivers_arr = np.concatenate(out, axis=0)[:receivers]
    return with_source_at_center(receivers_arr, (0.0, 0.0))
