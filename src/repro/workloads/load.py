"""Offered-load traces: seeded utilization pressure for the congestion suite.

Where :mod:`repro.workloads.churn` varies *who* is in the session, this
module varies *how hard the stream pushes* — the offered load ``L``
(stream rate as a fraction of one uplink capacity unit) that the cost
models of :mod:`repro.costmodel` turn into per-edge queueing penalties.

:data:`LOAD_PROFILES` mirrors the churn profiles documented in
EXPERIMENTS.md: three named, seeded regimes (light / heavy / bursty)
whose windows replay through :meth:`repro.overlay.dynamic.
DynamicOverlay.observe_load` to exercise the congestion-rebuild
trigger. Every profile is fully determined by its entry — the suite is
reproducible from the documentation alone.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generators import as_rng

__all__ = ["LOAD_PROFILES", "generate_load_trace"]

#: The highest load a trace emits; stays clear of 1.0 so even a
#: fan-out-1 chain keeps a finite queueing factor without clipping.
MAX_LOAD = 0.95

#: Named offered-load regimes (see EXPERIMENTS.md "Offered-load
#: profiles"). ``mean``/``sigma`` shape the Gaussian around which each
#: window's load is drawn; ``burst``/``burst_every`` (bursty only)
#: overwrite every ``burst_every``-th window with a spike around the
#: burst level.
LOAD_PROFILES = {
    "light": {"seed": 101, "windows": 24, "mean": 0.15, "sigma": 0.04},
    "heavy": {"seed": 202, "windows": 24, "mean": 0.65, "sigma": 0.10},
    "bursty": {
        "seed": 303,
        "windows": 24,
        "mean": 0.25,
        "sigma": 0.05,
        "burst": 0.85,
        "burst_every": 4,
    },
}


def generate_load_trace(
    windows: int,
    mean: float,
    sigma: float,
    burst: float | None = None,
    burst_every: int = 4,
    seed=None,
) -> np.ndarray:
    """One offered-load sample per observation window, in ``[0, 0.95]``.

    Gaussian around ``mean`` with spread ``sigma``; when ``burst`` is
    given, every ``burst_every``-th window (starting at the first) is
    replaced by a spike drawn around the burst level with the same
    spread. Clipped to ``[0,`` :data:`MAX_LOAD` ``]``.

    ``generate_load_trace(**LOAD_PROFILES[name])`` reproduces a named
    profile exactly.
    """
    if windows < 1:
        raise ValueError("need at least one window")
    if sigma < 0:
        raise ValueError("sigma cannot be negative")
    if burst_every < 1:
        raise ValueError("burst_every must be at least 1")
    rng = as_rng(seed)
    loads = rng.normal(loc=mean, scale=sigma, size=windows)
    if burst is not None:
        spikes = rng.normal(loc=burst, scale=sigma, size=windows)
        loads[::burst_every] = spikes[::burst_every]
    return np.clip(loads, 0.0, MAX_LOAD)
