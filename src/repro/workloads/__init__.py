"""Seeded random workloads used by the experiments, tests and examples."""

from repro.workloads.churn import (
    ChurnEvent,
    generate_churn_trace,
    replay_trace,
)
from repro.workloads.generators import (
    annulus_points,
    clustered_disk,
    nonuniform_disk,
    polygon_points,
    rectangle_points,
    unit_ball,
    unit_disk,
    with_source_at_center,
)
from repro.workloads.load import (
    LOAD_PROFILES,
    generate_load_trace,
)

__all__ = [
    "ChurnEvent",
    "LOAD_PROFILES",
    "generate_load_trace",
    "annulus_points",
    "generate_churn_trace",
    "replay_trace",
    "clustered_disk",
    "nonuniform_disk",
    "polygon_points",
    "rectangle_points",
    "unit_ball",
    "unit_disk",
    "with_source_at_center",
]
