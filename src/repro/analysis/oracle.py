"""Independent structural oracle for multicast trees.

:class:`~repro.core.tree.MulticastTree` validates itself with the same
vectorised machinery (pointer doubling) that computes its delays — a bug
in that machinery can therefore hide from its own checks. This module
re-derives every invariant the paper's constructions promise *from
scratch*, using nothing but the raw parent array and the coordinates:

* **spanning / acyclicity** — a plain breadth-first search from the root
  over the child adjacency, never trusting cached delays or doubling;
* **out-degree cap** — recomputed with a bincount against a scalar or
  per-node budget (the paper's constraint ``d(v) <= d_max``);
* **radius** — re-accumulated edge length by edge length in BFS order
  and compared against the tree's own ``radius()`` / ``root_delays()``,
  so stale caches and doubling bugs are caught too;
* **polar-grid invariants** — for trees built by Algorithm Polar_Grid,
  the cell-occupancy property (Section III-A, property 3 or the relaxed
  IV-C parent-chain rule) and the representative rule of Section III-B
  are re-checked against a fresh cell assignment.

Every failure is returned as a structured :class:`Violation` record, not
a boolean, so the fuzzing and differential harnesses in
:mod:`repro.testing` can write actionable crash artifacts. Nothing here
raises on bad trees unless you ask (:meth:`OracleReport.raise_if_failed`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.tree import MulticastTree, TreeInvariantError

__all__ = [
    "Violation",
    "OracleReport",
    "check_tree",
    "check_packing",
    "check_build_result",
    "check_incremental_state",
]

# How many offending node indices a Violation records before truncating;
# crash artifacts stay readable even when half the tree is wrong.
MAX_NODES_PER_VIOLATION = 16

# Relative slack for floating-point comparisons of recomputed delays.
FLOAT_RTOL = 1e-9
FLOAT_ATOL = 1e-12


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to reproduce it.

    :param code: stable machine-readable identifier (``"CYCLE"``,
        ``"DEGREE_CAP"``, ...) — the fuzzer keys its artifacts on this.
    :param message: human-readable description with the measured values.
    :param nodes: offending node indices (truncated to
        :data:`MAX_NODES_PER_VIOLATION`).
    """

    code: str
    message: str
    nodes: tuple[int, ...] = ()

    def __str__(self) -> str:
        suffix = f" nodes={list(self.nodes)}" if self.nodes else ""
        return f"[{self.code}] {self.message}{suffix}"


@dataclass
class OracleReport:
    """All violations found by one oracle pass, plus summary statistics.

    ``checks`` lists every check that actually ran, so a report with no
    violations can still be audited for coverage (a check skipped for a
    missing input is visibly absent).
    """

    violations: list[Violation] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, code: str, message: str, nodes=()) -> None:
        nodes = tuple(int(v) for v in list(nodes)[:MAX_NODES_PER_VIOLATION])
        self.violations.append(Violation(code, message, nodes))

    def extend(self, other: "OracleReport") -> "OracleReport":
        """Merge another report's findings into this one."""
        self.violations.extend(other.violations)
        self.checks.extend(c for c in other.checks if c not in self.checks)
        self.stats.update(other.stats)
        return self

    def render(self) -> str:
        lines = [
            f"tree oracle: {len(self.checks)} checks, "
            f"{len(self.violations)} violations"
        ]
        for v in self.violations:
            lines.append(f"  {v}")
        return "\n".join(lines)

    def raise_if_failed(self) -> "OracleReport":
        """Raise :class:`TreeInvariantError` listing every violation."""
        if not self.ok:
            raise TreeInvariantError(self.render())
        return self

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by fuzz crash artifacts)."""
        return {
            "ok": self.ok,
            "checks": list(self.checks),
            "stats": {k: _jsonable(v) for k, v in self.stats.items()},
            "violations": [
                {"code": v.code, "message": v.message, "nodes": list(v.nodes)}
                for v in self.violations
            ],
        }


def _jsonable(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


# ----------------------------------------------------------------------
# the core oracle
# ----------------------------------------------------------------------


def _coerce_inputs(tree, points, root):
    """Accept a MulticastTree or a raw parent array; return raw arrays."""
    if isinstance(tree, MulticastTree):
        parent = np.asarray(tree.parent, dtype=np.int64)
        tree_points = np.asarray(tree.points, dtype=np.float64)
        tree_root = int(tree.root)
        if points is None:
            points = tree_points
        if root is None:
            root = tree_root
        return tree, parent, np.asarray(points, dtype=np.float64), int(root)
    # Raw parent array: points and root are mandatory.
    if points is None or root is None:
        raise ValueError("raw parent arrays need explicit points and root")
    parent = np.asarray(tree, dtype=np.int64)
    return None, parent, np.asarray(points, dtype=np.float64), int(root)


def _label_group(report: OracleReport, group: str) -> OracleReport:
    """Prefix every violation with its group label (multi-group runs)."""
    report.stats["group"] = group
    report.violations = [
        Violation(v.code, f"group {group!r}: {v.message}", v.nodes)
        for v in report.violations
    ]
    return report


def check_tree(
    tree,
    points=None,
    d_max=None,
    root=None,
    *,
    cost_model=None,
    utilization=None,
    group=None,
) -> OracleReport:
    """Re-derive every structural invariant of a rooted multicast tree.

    :param tree: a :class:`~repro.core.tree.MulticastTree`, or a raw
        parent array (then ``points`` and ``root`` are required).
    :param points: expected coordinates; defaults to the tree's own, and
        is cross-checked against them when both are available.
    :param d_max: out-degree budget — a scalar, a per-node array, or
        ``None`` to skip the degree check.
    :param root: expected root index; defaults to the tree's own.
    :param cost_model: optional non-Euclidean cost model (any form
        :func:`repro.costmodel.get_cost_model` accepts). When given,
        the oracle additionally sanity-checks the model's per-edge
        costs and re-accumulates effective delays edge by edge in BFS
        order, catching pointer-doubling bugs in
        :func:`repro.costmodel.effective_delays` the same way the
        radius check catches them in ``root_delays()``.
    :param utilization: per-edge utilization array for ``cost_model``
        (``None`` = idle network); validated for shape, finiteness and
        sign before use.
    :param group: optional group label for multi-group runs — stamped
        into ``report.stats`` and prefixed onto every violation
        message, so packing crash artifacts name the offending group.
    :returns: an :class:`OracleReport`; ``report.ok`` means every check
        that ran found nothing wrong.

    The oracle is deliberately redundant with
    :meth:`MulticastTree.validate`: it shares no code path with the
    pointer-doubling delay machinery, so a bug there cannot mask itself.
    """
    report = _check_tree_body(
        tree,
        points,
        d_max,
        root,
        cost_model=cost_model,
        utilization=utilization,
    )
    if group is not None:
        _label_group(report, group)
    return report


def _check_tree_body(
    tree,
    points=None,
    d_max=None,
    root=None,
    *,
    cost_model=None,
    utilization=None,
) -> OracleReport:
    """The label-free single-tree oracle pass behind :func:`check_tree`."""
    report = OracleReport()
    mtree, parent, points, root = _coerce_inputs(tree, points, root)
    n = int(parent.shape[0])
    report.stats["n"] = n

    report.checks.append("shape")
    if points.ndim != 2 or points.shape[0] != n:
        report.add(
            "SHAPE",
            f"points shape {points.shape} does not match {n} parent entries",
        )
        return report  # nothing downstream is meaningful
    if not np.all(np.isfinite(points)):
        bad = np.flatnonzero(~np.isfinite(points).all(axis=1))
        report.add("NON_FINITE", "non-finite coordinates", bad)
    if mtree is not None and points is not mtree.points:
        if points.shape != mtree.points.shape or not np.array_equal(
            points, mtree.points
        ):
            report.add(
                "POINTS_MISMATCH",
                "tree.points differ from the expected coordinates",
            )
    if not 0 <= root < n:
        report.add("ROOT_RANGE", f"root index {root} out of range for n={n}")
        return report

    report.checks.append("parent-range")
    out_of_range = np.flatnonzero((parent < 0) | (parent >= n))
    if out_of_range.size:
        report.add(
            "PARENT_RANGE",
            f"{out_of_range.size} parent indices outside [0, {n})",
            out_of_range,
        )
        return report  # adjacency below would index out of bounds

    report.checks.append("root-loop")
    self_loops = np.flatnonzero(parent == np.arange(n))
    if self_loops.tolist() != [root]:
        report.add(
            "ROOT_LOOP",
            f"expected exactly one self-loop at root {root}; "
            f"found self-loops at {self_loops.tolist()[:8]}",
            self_loops,
        )

    # --- BFS from the root over the child adjacency -------------------
    report.checks.append("spanning-bfs")
    children = [[] for _ in range(n)]
    for child, par in enumerate(parent.tolist()):
        if child != root:
            children[par].append(child)

    order = []  # BFS order; every node appears after its parent
    reached = np.zeros(n, dtype=bool)
    reached[root] = True
    queue = deque([root])
    while queue:
        node = queue.popleft()
        order.append(node)
        for child in children[node]:
            if not reached[child]:
                reached[child] = True
                queue.append(child)
    unreached = np.flatnonzero(~reached)
    if unreached.size:
        # Distinguish true cycles from components hanging off a bad root:
        # chase parents from one stranded node; revisiting proves a cycle.
        walk, seen = int(unreached[0]), set()
        while walk not in seen and not reached[walk]:
            seen.add(walk)
            walk = int(parent[walk])
        code = "CYCLE" if not reached[walk] else "NOT_SPANNING"
        report.add(
            code,
            f"{unreached.size} of {n} nodes unreachable from the root",
            unreached,
        )

    # --- out-degree cap -----------------------------------------------
    if d_max is not None:
        report.checks.append("degree-cap")
        if np.isscalar(d_max):
            budgets = np.full(n, int(d_max), dtype=np.int64)
        else:
            budgets = np.asarray(d_max, dtype=np.int64)
            if budgets.shape != (n,):
                raise ValueError(f"d_max must be scalar or shape ({n},)")
        degrees = np.bincount(parent, minlength=n)
        degrees[root] -= 1  # the root's self-loop is not a child
        over = np.flatnonzero(degrees > budgets)
        if over.size:
            worst = int(over[np.argmax(degrees[over] - budgets[over])])
            report.add(
                "DEGREE_CAP",
                f"{over.size} nodes exceed their fan-out budget "
                f"(worst: node {worst} has {int(degrees[worst])} children, "
                f"budget {int(budgets[worst])})",
                over,
            )
        report.stats["max_out_degree"] = int(degrees.max()) if n > 1 else 0

    # --- radius recomputation -----------------------------------------
    # Accumulate parent-edge lengths in BFS order: O(n) scalar adds, no
    # doubling, no caching. Only meaningful on a spanning, acyclic tree.
    if not unreached.size:
        report.checks.append("radius-recompute")
        diffs = points - points[parent]
        lengths = np.sqrt(np.sum(diffs * diffs, axis=1))
        delays = np.zeros(n, dtype=np.float64)
        for node in order:
            if node != root:
                delays[node] = delays[parent[node]] + lengths[node]
        radius = float(delays.max()) if n else 0.0
        report.stats["radius"] = radius
        if mtree is not None:
            claimed = mtree.root_delays()
            if not np.allclose(
                claimed, delays, rtol=FLOAT_RTOL, atol=FLOAT_ATOL
            ):
                bad = np.flatnonzero(
                    ~np.isclose(claimed, delays, rtol=FLOAT_RTOL, atol=FLOAT_ATOL)
                )
                report.add(
                    "DELAY_MISMATCH",
                    f"root_delays() disagrees with the BFS recomputation at "
                    f"{bad.size} nodes (worst gap "
                    f"{float(np.abs(claimed - delays).max()):.3e})",
                    bad,
                )
            claimed_radius = mtree.radius()
            if not np.isclose(
                claimed_radius, radius, rtol=FLOAT_RTOL, atol=FLOAT_ATOL
            ):
                report.add(
                    "RADIUS_MISMATCH",
                    f"radius() reports {claimed_radius!r}, recomputation "
                    f"gives {radius!r}",
                )

        # --- effective delays under a non-Euclidean cost model --------
        if cost_model is not None:
            _check_effective_delays(
                report, mtree, parent, points, root, order,
                cost_model, utilization,
            )
    return report


def check_packing(
    trees,
    memberships,
    caps,
    *,
    n_hosts=None,
    d_maxes=None,
    groups=None,
) -> OracleReport:
    """Check a set of live group trees against shared per-host caps.

    The packing invariant (Kerivin et al., arXiv 1111.0706): every
    host's out-degree *summed across all live sessions* stays within
    its cap, while each per-group tree independently passes the full
    single-tree oracle (:func:`check_tree`).

    :param trees: one :class:`~repro.core.tree.MulticastTree` per live
        group, each over its own member-local index space.
    :param memberships: per group, the population indices its tree's
        local nodes map to (``len(members) == tree.n``; local node
        ``i`` is population host ``members[i]``).
    :param caps: per-host out-degree caps — an ``(N,)`` array, or a
        scalar with ``n_hosts`` giving ``N``.
    :param d_maxes: optional per-group fan-out bounds forwarded to each
        tree's own degree check (scalar or sequence, ``None`` skips).
    :param groups: optional group labels (default ``group0``,
        ``group1``, ...) — violations from group ``i``'s tree are
        prefixed with its label via ``check_tree(group=...)``.
    :returns: an :class:`OracleReport` whose stats summarise the
        packing (``live_groups``, ``slots_used``, ``agg_max_degree``).
    """
    report = OracleReport()
    caps_arr = np.asarray(caps, dtype=np.int64)
    if caps_arr.ndim == 0:
        if n_hosts is None:
            raise ValueError("scalar caps need n_hosts to size the host set")
        caps_arr = np.full(int(n_hosts), int(caps_arr), dtype=np.int64)
    if caps_arr.ndim != 1:
        raise ValueError("caps must be a scalar or a 1-D array")
    n = int(caps_arr.size)
    trees = list(trees)
    memberships = list(memberships)
    if len(trees) != len(memberships):
        raise ValueError(
            f"{len(trees)} trees but {len(memberships)} membership lists"
        )
    if groups is None:
        groups = [f"group{i}" for i in range(len(trees))]
    groups = [str(g) for g in groups]
    if len(groups) != len(trees):
        raise ValueError(f"{len(trees)} trees but {len(groups)} labels")
    if d_maxes is None or np.isscalar(d_maxes):
        d_maxes = [d_maxes] * len(trees)

    report.checks.append("packing-membership")
    total = np.zeros(n, dtype=np.int64)
    used_by: dict[int, list[str]] = {}
    for tree, members, label, d_max in zip(
        trees, memberships, groups, d_maxes
    ):
        members = np.asarray(members, dtype=np.int64)
        ok = True
        uniq, counts = np.unique(members, return_counts=True)
        if (counts > 1).any():
            report.add(
                "MEMBER_DUP",
                f"group {label!r} lists duplicate population hosts",
                uniq[counts > 1],
            )
            ok = False
        if members.size and (members.min() < 0 or members.max() >= n):
            report.add(
                "MEMBER_RANGE",
                f"group {label!r} members outside the population [0, {n})",
                members[(members < 0) | (members >= n)],
            )
            ok = False
        if int(tree.n) != int(members.size):
            report.add(
                "MEMBER_COUNT",
                f"group {label!r}: tree spans {int(tree.n)} nodes but "
                f"membership lists {int(members.size)} hosts",
            )
            ok = False
        report.extend(check_tree(tree, d_max=d_max, group=label))
        if not ok:
            continue
        total[members] += tree.out_degrees()
        for host in members[tree.out_degrees() > 0].tolist():
            used_by.setdefault(int(host), []).append(label)

    report.checks.append("packing-aggregate-degree")
    over = np.flatnonzero(total > caps_arr)
    if over.size:
        worst = int(over[np.argmax((total - caps_arr)[over])])
        report.add(
            "AGG_DEGREE_CAP",
            f"{over.size} host(s) exceed their shared out-degree cap; "
            f"worst is host {worst} at {int(total[worst])}/"
            f"{int(caps_arr[worst])} across groups "
            f"{used_by.get(worst, [])}",
            over,
        )
    report.stats.update(
        hosts=n,
        live_groups=len(trees),
        slots_used=int(total.sum()),
        agg_max_degree=int(total.max()) if n else 0,
    )
    # check_tree stamped the last group's label; the merged report is
    # not about any single group.
    report.stats.pop("group", None)
    return report


def _check_effective_delays(
    report, mtree, parent, points, root, order, cost_model, utilization
):
    """Cost-model extension of :func:`check_tree`.

    Re-accumulates the model's per-edge costs in BFS order (no pointer
    doubling) and compares against :func:`repro.costmodel.
    effective_delays`; also sanity-checks the costs themselves: finite,
    non-negative, zero at the root, and never *below* the idle-network
    cost (congestion can only add delay).
    """
    from repro.costmodel import effective_delays, get_cost_model

    model = get_cost_model(cost_model)
    n = int(parent.shape[0])
    eval_tree = (
        mtree
        if mtree is not None
        else MulticastTree(points=points, parent=parent, root=root)
    )

    u = None
    if utilization is not None:
        report.checks.append("utilization-sanity")
        u = np.asarray(utilization, dtype=np.float64)
        if u.shape != (n,):
            report.add(
                "UTILIZATION_SHAPE",
                f"utilization shape {u.shape} does not match n={n}",
            )
            return
        bad = np.flatnonzero(~np.isfinite(u) | (u < 0))
        if bad.size:
            report.add(
                "UTILIZATION_RANGE",
                f"{bad.size} utilization entries are negative or "
                "non-finite",
                bad,
            )
            return

    report.checks.append(f"effective-cost-sanity[{model.name}]")
    costs = np.asarray(model.edge_costs(eval_tree, u), dtype=np.float64)
    if costs.shape != (n,):
        report.add(
            "EFFECTIVE_COST_SANITY",
            f"edge_costs returned shape {costs.shape}, expected ({n},)",
        )
        return
    if not np.isclose(costs[root], 0.0, rtol=FLOAT_RTOL, atol=FLOAT_ATOL):
        report.add(
            "EFFECTIVE_COST_SANITY",
            f"the root's (nonexistent) parent edge costs {costs[root]!r}, "
            "expected 0",
            [root],
        )
    bad = np.flatnonzero(~np.isfinite(costs) | (costs < 0))
    if bad.size:
        report.add(
            "EFFECTIVE_COST_SANITY",
            f"{bad.size} per-edge costs are negative or non-finite",
            bad,
        )
        return
    idle = np.asarray(model.edge_costs(eval_tree, None), dtype=np.float64)
    below = np.flatnonzero(costs < idle * (1.0 - FLOAT_RTOL) - FLOAT_ATOL)
    if below.size:
        report.add(
            "EFFECTIVE_COST_SANITY",
            f"{below.size} loaded edge costs fall below the idle cost — "
            "congestion can only add delay",
            below,
        )

    report.checks.append("effective-delay-recompute")
    eff = np.zeros(n, dtype=np.float64)
    for node in order:
        if node != root:
            eff[node] = eff[parent[node]] + costs[node]
    report.stats["effective_radius"] = float(eff.max()) if n else 0.0
    claimed = effective_delays(eval_tree, model, u)
    if not np.allclose(claimed, eff, rtol=FLOAT_RTOL, atol=FLOAT_ATOL):
        bad = np.flatnonzero(
            ~np.isclose(claimed, eff, rtol=FLOAT_RTOL, atol=FLOAT_ATOL)
        )
        report.add(
            "EFFECTIVE_DELAY_MISMATCH",
            f"effective_delays() disagrees with the BFS recomputation at "
            f"{bad.size} nodes (worst gap "
            f"{float(np.abs(claimed - eff).max()):.3e})",
            bad,
        )


# ----------------------------------------------------------------------
# polar-grid specific invariants
# ----------------------------------------------------------------------


def _inner_anchor_distance(grid, points, nodes, ring, cell):
    """Distance from each node to the centre of its cell's inner face —
    the anchor the Section III-B representative rule minimises.

    Mirrors the geometry in :func:`repro.core.builder.build_polar_grid_tree`
    (independent recomputation, shared definitions).
    """
    radii = np.array([grid.ring_radius(i) for i in range(grid.k + 1)])
    r_lo = np.where(ring == 0, grid.r_min, radii[np.maximum(ring - 1, 0)])
    rho, t = grid.transform.transform(points[nodes], grid.center)
    t_mid = np.empty_like(t)
    for r in np.unique(ring):
        mask = ring == r
        for axis, width in enumerate(grid.axis_splits(int(r))):
            count = 1 << width
            bins = np.minimum(
                (t[mask, axis] * count).astype(np.int64), count - 1
            )
            t_mid[mask, axis] = (bins + 0.5) / count
    direction = grid.transform.direction(t_mid)
    anchors = grid.center + r_lo[:, None] * direction
    return np.sqrt(np.sum((points[nodes] - anchors) ** 2, axis=1))


def check_build_result(
    result,
    points=None,
    d_max=None,
    source=None,
    *,
    occupancy: str | None = "full",
    representative_rule: str | None = "inner-anchor",
) -> OracleReport:
    """Oracle pass over a :class:`~repro.core.builder.BuildResult`.

    Runs :func:`check_tree` (with ``d_max`` defaulting to the budget the
    build was asked for), then — when the result carries a polar grid —
    re-derives the grid-level invariants:

    * every receiver's ``(ring, cell)`` assignment is recomputed from the
      raw coordinates and checked for **cell occupancy** (property 3 of
      Section III-A for ``occupancy="full"``, the relaxed IV-C
      parent-chain rule for ``"connected"``; pass ``None`` to skip, e.g.
      for builds with a forced ``k``);
    * the recorded **representatives** are distinct non-source nodes, one
      per occupied subdivided cell, each a member of the cell it
      represents;
    * each representative actually optimises the configured
      **representative rule** within its cell (min inner-anchor distance
      for ``"inner-anchor"``, min radius for ``"min-radius"``; ``None``
      skips the rule check).
    """
    tree = result.tree
    if d_max is None:
        d_max = result.max_out_degree
    if source is None:
        source = tree.root
    report = check_tree(tree, points=points, d_max=d_max, root=source)
    grid = getattr(result, "grid", None)
    if grid is None or not report.ok and any(
        v.code in ("SHAPE", "PARENT_RANGE", "ROOT_RANGE")
        for v in report.violations
    ):
        return report

    pts = np.asarray(tree.points, dtype=np.float64)
    n = pts.shape[0]
    receivers = np.flatnonzero(np.arange(n) != source)
    ring, cell = grid.assign_points(pts[receivers])
    gid = np.asarray(grid.global_id(ring, cell))

    if occupancy is not None:
        report.checks.append(f"grid-occupancy[{occupancy}]")
        if occupancy == "full":
            ok = grid.occupancy_ok(ring, cell)
        elif occupancy == "connected":
            ok = grid.connectivity_ok(ring, cell)
        else:
            raise ValueError(f"unknown occupancy rule {occupancy!r}")
        if not ok:
            report.add(
                "OCCUPANCY",
                f"grid with k={grid.k} fails the {occupancy!r} occupancy "
                f"property over {receivers.size} receivers",
            )

    reps = getattr(result, "representatives", None)
    if reps is None:
        return report
    reps = np.asarray(reps, dtype=np.int64)
    report.checks.append("grid-representatives")
    report.stats["representatives"] = int(reps.size)

    bad_range = reps[(reps < 0) | (reps >= n)]
    if bad_range.size:
        report.add("REP_RANGE", "representative index out of range", bad_range)
        return report
    if np.unique(reps).size != reps.size:
        dup = reps[np.flatnonzero(np.bincount(reps, minlength=n)[reps] > 1)]
        report.add("REP_DUPLICATE", "a node represents two cells", dup)
    if np.any(reps == source):
        report.add("REP_SOURCE", "the source is listed as a representative")

    # Map receivers -> their gid, then compare the represented cells with
    # the occupied subdivided cells (the inner region D0 — gid 0 — is
    # represented by the source itself and carries no entry in `reps`).
    gid_of = np.full(n, -1, dtype=np.int64)
    gid_of[receivers] = gid
    rep_gids = gid_of[reps]
    if np.any(rep_gids < 0):
        report.add(
            "REP_MEMBER",
            "a representative is not a receiver of any cell",
            reps[rep_gids < 0],
        )
    occupied = np.unique(gid[gid > 0])
    represented = np.unique(rep_gids[rep_gids > 0])
    if represented.size != rep_gids[rep_gids > 0].size:
        report.add(
            "REP_CELL_CLASH",
            "two representatives claim the same cell",
        )
    missing = np.setdiff1d(occupied, represented)
    if missing.size:
        report.add(
            "REP_MISSING",
            f"{missing.size} occupied cells have no representative "
            f"(gids {missing[:8].tolist()})",
        )
    extra = np.setdiff1d(represented, occupied)
    if extra.size:
        report.add(
            "REP_EMPTY_CELL",
            f"representatives recorded for {extra.size} empty cells",
        )

    if representative_rule is not None:
        if representative_rule not in ("inner-anchor", "min-radius"):
            raise ValueError(
                f"unknown representative rule {representative_rule!r}"
            )
        report.checks.append(f"grid-rep-rule[{representative_rule}]")
        if representative_rule == "inner-anchor":
            key = _inner_anchor_distance(grid, pts, receivers, ring, cell)
        else:
            key, _ = grid.transform.transform(pts[receivers], grid.center)
        key_of = np.full(n, np.inf)
        key_of[receivers] = key
        # Per-cell minimum of the rule's key, via sorting receivers by gid.
        order = np.argsort(gid, kind="stable")
        sorted_gid = gid[order]
        sorted_key = key[order]
        cuts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_gid)) + 1, [sorted_gid.size]]
        )
        best = {}
        for s, e in zip(cuts[:-1], cuts[1:]):
            best[int(sorted_gid[s])] = float(sorted_key[s:e].min())
        # Ties (duplicate points) make any minimiser legitimate.
        offenders = [
            int(r)
            for r, g in zip(reps, rep_gids)
            if g > 0
            and not np.isclose(
                key_of[r], best[int(g)], rtol=1e-9, atol=1e-12
            )
        ]
        if offenders:
            report.add(
                "REP_RULE",
                f"{len(offenders)} representatives do not minimise the "
                f"{representative_rule!r} key within their cell",
                offenders,
            )
    return report


# ----------------------------------------------------------------------
# incremental-maintenance invariants
# ----------------------------------------------------------------------


def check_incremental_state(engine) -> OracleReport:
    """Oracle pass over a live :class:`~repro.overlay.incremental.
    IncrementalGridTree`.

    Re-derives every piece of the engine's bookkeeping from raw
    coordinates and the frozen grid, trusting nothing the engine caches:

    * the compacted tree passes :func:`check_tree` with the engine's
      degree budget (spanning, acyclic, degree-capped, finite);
    * **CELL_MEMBERSHIP** — every live member's ``(ring, cell)``
      assignment recomputed from its coordinates matches both
      ``cell_of`` and the :class:`~repro.core.grid.CellTable` buckets;
    * **CELL_DANGLING** — no representative entry for an empty cell
      (the corruption a last-member leave used to cause);
    * **CELL_REP_RULE** — each occupied subdivided cell's representative
      minimises the inner-anchor distance among its members (ties from
      duplicate coordinates allowed);
    * **CELL_CHAIN** — each occupied cell's recorded provider is its
      nearest occupied ancestor, and its representative's parent is the
      provider's representative unless a fallback attachment is recorded
      (then the parent must be exactly the recorded fallback target);
    * **HOLE_REGISTRY** — the engine's hole set equals the exhaustively
      recomputed set of empty interior cells;
    * **DRIFT_BOUND** — the amortized-cost counter sits in
      ``[0, drift_limit)``: the partial rebuild must have fired before
      the bound was crossed, and resets it;
    * **STATE_DELAY_DRIFT** — the engine's per-slot cached delays match
      a from-scratch BFS recomputation over its parent array.
    """
    grid = engine.grid
    snap = engine.snapshot()
    report = check_tree(snap.tree, d_max=engine.d_max)
    report.stats["live"] = engine.live_count

    live = [
        s
        for s, nm in enumerate(engine.names)
        if nm is not None and s != engine.source_slot
    ]

    report.checks.append("cell-membership")
    mismatched = []
    derived_members: dict[int, list[int]] = {}
    if live:
        pts = np.asarray([engine.points[s] for s in live])
        ring, cell = grid.assign_points(pts)
        gids = np.asarray(grid.global_id(ring, cell)).tolist()
        for slot, g in zip(live, gids):
            derived_members.setdefault(int(g), []).append(slot)
            if engine.cell_of[slot] != int(g):
                mismatched.append(slot)
    if mismatched:
        report.add(
            "CELL_MEMBERSHIP",
            f"{len(mismatched)} slots carry a stale cell assignment",
            mismatched,
        )
    table_gids = set(engine.cells.occupied_gids())
    if table_gids != set(derived_members):
        report.add(
            "CELL_MEMBERSHIP",
            f"cell table tracks gids {sorted(table_gids)[:8]}..., "
            f"recomputation gives {sorted(derived_members)[:8]}...",
        )
    else:
        for g, expected in derived_members.items():
            if sorted(engine.cells.members(g)) != sorted(expected):
                report.add(
                    "CELL_MEMBERSHIP",
                    f"cell {g} member bucket disagrees with recomputation",
                    expected,
                )

    report.checks.append("cell-dangling")
    dangling = engine.cells.dangling_reps()
    if dangling:
        report.add(
            "CELL_DANGLING",
            f"{len(dangling)} empty cells still carry a representative "
            f"entry (gids {dangling[:8]})",
        )
    if engine.cells.has_rep(0):
        report.add(
            "CELL_DANGLING",
            "the inner region D0 carries a representative entry "
            "(the source represents it)",
        )

    report.checks.append("cell-rep-rule")
    for g in engine.cells.occupied_gids():
        if g == 0:
            continue
        r, c = grid.ring_of_global(g)
        if not engine.cells.has_rep(g):
            report.add("CELL_REP_MISSING", f"occupied cell {g} has no rep")
            continue
        rep = engine.cells.rep(g)
        members = engine.cells.members(g)
        if rep not in members:
            report.add(
                "CELL_REP_RULE", f"rep of cell {g} is not one of its members"
            )
            continue
        anchor = grid.cell_anchor(r, c, "inner")
        dists = {
            m: float(np.sqrt(np.sum((engine.points[m] - anchor) ** 2)))
            for m in members
        }
        best = min(dists.values())
        if not np.isclose(dists[rep], best, rtol=1e-9, atol=1e-12):
            report.add(
                "CELL_REP_RULE",
                f"rep of cell {g} sits {dists[rep]:.6g} from the inner "
                f"anchor; best member is at {best:.6g}",
                [rep],
            )

    report.checks.append("cell-chain")
    for g in engine.cells.occupied_gids():
        if g == 0:
            continue
        r, c = grid.ring_of_global(g)
        provider, _hops = engine.cells.nearest_live_ancestor(r, c)
        if engine.providers.get(g) != provider:
            report.add(
                "CELL_CHAIN",
                f"cell {g} records provider {engine.providers.get(g)}, "
                f"nearest occupied ancestor is {provider}",
            )
            continue
        if not engine.cells.has_rep(g):
            continue
        rep = engine.cells.rep(g)
        par = engine.parent[rep]
        if g in engine.fallbacks:
            if par != engine.fallbacks[g]:
                report.add(
                    "CELL_CHAIN",
                    f"cell {g} records fallback target "
                    f"{engine.fallbacks[g]} but its rep attaches to {par}",
                    [rep],
                )
        else:
            expected = (
                engine.source_slot
                if provider == 0
                else engine.cells.rep(provider)
            )
            if par != expected:
                report.add(
                    "CELL_CHAIN",
                    f"cell {g}'s rep attaches to {par}, expected its "
                    f"provider {provider}'s rep {expected}",
                    [rep],
                )

    report.checks.append("hole-registry")
    derived_holes = engine.cells.interior_holes()
    if engine.holes != derived_holes:
        ghost = sorted(engine.holes - derived_holes)
        missed = sorted(derived_holes - engine.holes)
        report.add(
            "HOLE_REGISTRY",
            f"hole set drifted: {len(ghost)} ghost entries "
            f"(gids {ghost[:8]}), {len(missed)} unregistered holes "
            f"(gids {missed[:8]})",
        )

    report.checks.append("drift-bound")
    if not 0 <= engine.drift_events < engine.drift_limit:
        report.add(
            "DRIFT_BOUND",
            f"amortized-cost counter at {engine.drift_events}, outside "
            f"[0, {engine.drift_limit}) — a partial rebuild failed to fire",
        )
    report.stats["drift_events"] = int(engine.drift_events)

    report.checks.append("state-delay-drift")
    delays = snap.tree.root_delays()
    cached = np.asarray([engine.delay[s] for s in snap.slots])
    if not np.allclose(cached, delays, rtol=FLOAT_RTOL, atol=FLOAT_ATOL):
        bad = np.flatnonzero(
            ~np.isclose(cached, delays, rtol=FLOAT_RTOL, atol=FLOAT_ATOL)
        )
        report.add(
            "STATE_DELAY_DRIFT",
            f"cached delays drifted from recomputation at {bad.size} "
            f"slots (worst gap {float(np.abs(cached - delays).max()):.3e})",
            [snap.slots[int(b)] for b in bad],
        )
    return report
