"""Empirical convergence-rate estimation.

The paper observes that "the algorithm converges very quickly" — faster
than the analytic bound — but never quantifies the rate. This module
does: fitting

    delay(n) - L  ~  C * n^(-beta)

on a log-log grid gives the empirical convergence exponent ``beta``.
For context, the eq.(7) bound decays like ``Delta_0 ~ 2^(-k/2) ~
n^(-1/4)`` (using ``k ~ log2 n / 2``), so any measured ``beta``
meaningfully above 0.25 *is* the "faster than the theoretic bound"
claim, made precise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import aggregate, run_trials

__all__ = ["ConvergenceFit", "fit_power_law", "measure_convergence"]


@dataclass(frozen=True)
class ConvergenceFit:
    """Result of a power-law fit ``y ~ C * n^(-beta)``."""

    beta: float
    log_C: float
    r_squared: float
    sizes: tuple
    values: tuple

    def predict(self, n: float) -> float:
        return float(np.exp(self.log_C) * n ** (-self.beta))


def fit_power_law(sizes, values) -> ConvergenceFit:
    """Least-squares fit of ``log y = log C - beta * log n``.

    :param sizes: positive sample sizes.
    :param values: positive excess values (e.g. ``delay - 1``).
    :raises ValueError: on non-positive inputs or fewer than 3 points.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if sizes.shape != values.shape or sizes.size < 3:
        raise ValueError("need at least 3 matching (size, value) pairs")
    if np.any(sizes <= 0) or np.any(values <= 0):
        raise ValueError("sizes and values must be positive for a log fit")
    x = np.log(sizes)
    y = np.log(values)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ConvergenceFit(
        beta=float(-slope),
        log_C=float(intercept),
        r_squared=r_squared,
        sizes=tuple(sizes.tolist()),
        values=tuple(values.tolist()),
    )


def measure_convergence(
    sizes=(500, 2_000, 8_000, 32_000),
    max_out_degree: int = 6,
    trials: int = 5,
    dim: int = 2,
    seed: int = 0,
    limit: float = 1.0,
) -> ConvergenceFit:
    """Measure ``delay(n) - limit`` over a size ladder and fit the rate.

    :param limit: the asymptotic delay (1.0 for the unit disk/ball).
    :returns: the fitted :class:`ConvergenceFit`; ``beta`` is the
        empirical convergence exponent.
    """
    excesses = []
    for n in sizes:
        row = aggregate(
            run_trials(n, max_out_degree, trials=trials, dim=dim, seed=seed)
        )
        excess = row.delay - limit
        if excess <= 0:
            raise ValueError(
                f"measured delay {row.delay} at n={n} is not above the "
                f"limit {limit}; widen the trial count or lower the limit"
            )
        excesses.append(excess)
    return fit_power_law(sizes, excesses)
