"""Empirical verification of the paper's formal claims.

:mod:`repro.analysis.verify` turns every theorem, lemma and numbered
equation of the paper into an executable check — Monte Carlo where the
claim is probabilistic, exhaustive-oracle where it is combinatorial —
and renders a pass/fail report (``python -m repro verify``).
"""

from repro.analysis.convergence import (
    ConvergenceFit,
    fit_power_law,
    measure_convergence,
)
from repro.analysis.sensitivity import DepthSweep, sweep_grid_depth
from repro.analysis.verify import CheckResult, VerificationReport, run_all_checks

__all__ = [
    "CheckResult",
    "ConvergenceFit",
    "DepthSweep",
    "VerificationReport",
    "fit_power_law",
    "measure_convergence",
    "run_all_checks",
    "sweep_grid_depth",
]
