"""Empirical verification of the paper's formal claims.

:mod:`repro.analysis.verify` turns every theorem, lemma and numbered
equation of the paper into an executable check — Monte Carlo where the
claim is probabilistic, exhaustive-oracle where it is combinatorial —
and renders a pass/fail report (``python -m repro verify``).

:mod:`repro.analysis.oracle` is the per-tree counterpart: an independent
re-derivation of the structural invariants (spanning, acyclicity,
degree cap, radius, polar-grid cell/representative rules) returning
structured :class:`~repro.analysis.oracle.Violation` records — the
backbone of the differential and fuzzing harnesses in
:mod:`repro.testing`.
"""

from repro.analysis.convergence import (
    ConvergenceFit,
    fit_power_law,
    measure_convergence,
)
from repro.analysis.oracle import (
    OracleReport,
    Violation,
    check_build_result,
    check_tree,
)
from repro.analysis.sensitivity import DepthSweep, sweep_grid_depth
from repro.analysis.verify import CheckResult, VerificationReport, run_all_checks

__all__ = [
    "CheckResult",
    "ConvergenceFit",
    "DepthSweep",
    "OracleReport",
    "VerificationReport",
    "Violation",
    "check_build_result",
    "check_tree",
    "fit_power_law",
    "measure_convergence",
    "run_all_checks",
    "sweep_grid_depth",
]
