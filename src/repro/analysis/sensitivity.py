"""Sensitivity of the built tree to the grid depth ``k``.

The algorithm picks the *largest* ``k`` whose grid satisfies the
occupancy property. Is that actually the best ``k``? The bound says yes
asymptotically (``S_k`` shrinks with ``k``), but at finite ``n`` a
deeper grid means sparser cells and noisier representatives. This
module sweeps ``k`` around the automatic choice and reports the delay
at each depth, so the heuristic's optimality margin is a number rather
than an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from statistics import mean

from repro.core.builder import build_polar_grid_tree
from repro.core.core_network import WiringError
from repro.workloads.generators import unit_disk

__all__ = ["DepthSweep", "sweep_grid_depth"]


@dataclass(frozen=True)
class DepthSweep:
    """Delay per forced grid depth, around the automatic choice."""

    n: int
    max_out_degree: int
    auto_k: int
    depths: tuple
    delays: tuple
    infeasible: tuple  # depths that violated occupancy

    def best_depth(self) -> int:
        pairs = [
            (delay, depth)
            for depth, delay in zip(self.depths, self.delays)
            if delay is not None
        ]
        return min(pairs)[1]

    def auto_choice_regret(self) -> float:
        """Relative delay excess of the automatic k over the best k."""
        by_depth = dict(zip(self.depths, self.delays))
        auto = by_depth.get(self.auto_k)
        best = min(d for d in self.delays if d is not None)
        if auto is None or best <= 0:
            return 0.0
        return auto / best - 1.0


def sweep_grid_depth(
    n: int = 5_000,
    max_out_degree: int = 6,
    span: int = 3,
    trials: int = 5,
    seed: int = 0,
) -> DepthSweep:
    """Force every depth in ``[auto_k - span, auto_k + span]``.

    Depths whose grids violate occupancy on any trial are reported in
    ``infeasible`` with a ``None`` delay (deeper-than-feasible grids
    cannot be built at all — that *is* the finding for those depths).
    """
    if span < 1:
        raise ValueError("span must be positive")
    auto_ks = []
    for trial in range(trials):
        points = unit_disk(n, seed=seed + trial)
        auto_ks.append(build_polar_grid_tree(points, 0, max_out_degree).rings)
    auto_k = round(mean(auto_ks))

    depths = tuple(
        k for k in range(max(1, auto_k - span), auto_k + span + 1)
    )
    delays = []
    infeasible = []
    for k in depths:
        per_trial = []
        feasible = True
        for trial in range(trials):
            points = unit_disk(n, seed=seed + trial)
            try:
                result = build_polar_grid_tree(
                    points, 0, max_out_degree, k=k
                )
            except WiringError:
                feasible = False
                break
            per_trial.append(result.radius)
        if feasible:
            delays.append(mean(per_trial))
        else:
            delays.append(None)
            infeasible.append(k)
    return DepthSweep(
        n=n,
        max_out_degree=max_out_degree,
        auto_k=auto_k,
        depths=depths,
        delays=tuple(delays),
        infeasible=tuple(infeasible),
    )
