"""Executable checks for the paper's theorems, lemmas and equations.

Each ``check_*`` function exercises one formal claim on fresh random
instances and returns a :class:`CheckResult` carrying the measured
quantities, so the report doubles as a numerical appendix:

=============  ========================================================
Lemma 1        empty-bucket probability <= n^a * exp(-n^(1-a))
Lemma 2        the Lemma 1 bound <= 1/e for a <= 1/2
Equation (1)   bisection path <= max(R-q, q-r) + 2Ra   (out-degree 4)
Equation (2)   conservative form of the out-degree-2 path bound
Theorem 1      bisection radius <= 5x / 9x the exhaustive optimum
Equation (5)   built grids achieve k >= (1/2) log2 n - O(1)
Equation (7)   built delay <= r_max + 2c*Delta_0 + S_k
Theorem 2      delay/lower-bound ratio decreases toward 1 with n
=============  ========================================================

These are *statistical* checks of necessary consequences, not proofs —
their value is catching implementation drift: any regression in the
representative rule, the grid geometry or the wiring shows up here
before it shows up in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.exact import optimal_radius
from repro.core.bounds import (
    bisection_constant_factor,
    bisection_path_bound,
    lemma1_probability,
    lemma2_threshold,
    polar_grid_upper_bound,
    rings_lower_bound,
)
from repro.core.builder import build_bisection_tree, build_polar_grid_tree
from repro.workloads.generators import unit_disk

__all__ = ["CheckResult", "VerificationReport", "run_all_checks"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one claim's verification."""

    claim: str
    passed: bool
    detail: str


@dataclass
class VerificationReport:
    """All check outcomes plus rendering."""

    results: list = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.results)

    def render(self) -> str:
        width = max(len(r.claim) for r in self.results)
        lines = ["Verification of the paper's formal claims", ""]
        for r in self.results:
            status = "PASS" if r.passed else "FAIL"
            lines.append(f"  [{status}] {r.claim:<{width}}  {r.detail}")
        lines.append("")
        lines.append(
            "all claims verified"
            if self.all_passed
            else "SOME CLAIMS FAILED — the implementation has drifted"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# individual checks
# ----------------------------------------------------------------------


def check_lemma1(rng: np.random.Generator, fast: bool) -> CheckResult:
    """Monte Carlo empty-bucket probability against the Lemma 1 bound."""
    trials = 400 if fast else 2_000
    worst_margin = np.inf
    detail_parts = []
    for n, alpha in ((64, 0.5), (256, 0.45), (1024, 0.4)):
        buckets = int(round(n**alpha))
        empties = 0
        for _ in range(trials):
            counts = np.bincount(
                rng.integers(0, buckets, size=n), minlength=buckets
            )
            empties += int(np.any(counts == 0))
        empirical = empties / trials
        bound = lemma1_probability(n, alpha)
        worst_margin = min(worst_margin, bound - empirical)
        detail_parts.append(f"n={n}: {empirical:.3f}<={bound:.3f}")
    # Allow tiny Monte Carlo noise on top of the bound.
    passed = worst_margin > -0.02
    return CheckResult("Lemma 1 (empty buckets)", passed, "; ".join(detail_parts))


def check_lemma2() -> CheckResult:
    """Scan the bound over a wide n range for alpha <= 1/2."""
    threshold = lemma2_threshold()
    worst = 0.0
    for alpha in (0.1, 0.25, 0.4, 0.5):
        for n in np.unique(np.geomspace(1, 1e6, 60).astype(np.int64)):
            worst = max(worst, lemma1_probability(int(n), alpha))
    passed = worst <= threshold + 1e-12
    return CheckResult(
        "Lemma 2 (bound <= 1/e for a<=1/2)",
        passed,
        f"max over scan {worst:.4f} <= {threshold:.4f}",
    )


def _segment_instance(rng: np.random.Generator, n: int):
    """Random points in a ring segment satisfying Section II's set-up."""
    r_lo, r_hi = 0.65, 1.0
    span = 0.12 * 2 * np.pi  # radians
    radius = np.sqrt(rng.uniform(r_lo**2, r_hi**2, n))
    theta = rng.uniform(0.0, span, n)
    points = np.stack(
        [radius * np.cos(theta), radius * np.sin(theta)], axis=1
    )
    return points, r_lo, r_hi, span, radius, theta


def check_equation1(rng: np.random.Generator, fast: bool) -> CheckResult:
    """Paths of the degree-4 bisection against eq. (1)."""
    from repro.core.bisection import bisection_tree_2d
    from repro.core.tree import MulticastTree

    trials = 30 if fast else 150
    worst_ratio = 0.0
    for _ in range(trials):
        n = int(rng.integers(2, 120))
        points, r_lo, r_hi, span, radius, theta = _segment_instance(rng, n)
        parent = np.full(n, -1, dtype=np.int64)
        parent[0] = 0
        bisection_tree_2d(
            radius.tolist(),
            (theta / (2 * np.pi)).tolist(),
            list(range(1, n)),
            0,
            (r_lo - 1e-12, r_hi),
            (0.0, span / (2 * np.pi)),
            parent,
            4,
        )
        tree = MulticastTree(points=points, parent=parent, root=0)
        bound = bisection_path_bound(r_lo, r_hi, span, float(radius[0]), 4)
        worst_ratio = max(worst_ratio, tree.radius() / bound)
    passed = worst_ratio <= 1.0 + 1e-9
    return CheckResult(
        "Equation (1) (deg-4 path bound)",
        passed,
        f"worst path/bound ratio {worst_ratio:.3f} over {trials} segments",
    )


def check_equation2(rng: np.random.Generator, fast: bool) -> CheckResult:
    """Degree-2 bisection paths against the conservative eq. (2) form."""
    from repro.core.bisection import bisection_tree_2d
    from repro.core.tree import MulticastTree

    trials = 30 if fast else 150
    worst_ratio = 0.0
    for _ in range(trials):
        n = int(rng.integers(2, 120))
        points, r_lo, r_hi, span, radius, theta = _segment_instance(rng, n)
        parent = np.full(n, -1, dtype=np.int64)
        parent[0] = 0
        bisection_tree_2d(
            radius.tolist(),
            (theta / (2 * np.pi)).tolist(),
            list(range(1, n)),
            0,
            (r_lo - 1e-12, r_hi),
            (0.0, span / (2 * np.pi)),
            parent,
            2,
        )
        tree = MulticastTree(points=points, parent=parent, root=0)
        bound = bisection_path_bound(
            r_lo, r_hi, span, float(radius[0]), 2, conservative=True
        )
        worst_ratio = max(worst_ratio, tree.radius() / bound)
    passed = worst_ratio <= 1.0 + 1e-9
    return CheckResult(
        "Equation (2) (deg-2 path bound, conservative)",
        passed,
        f"worst path/bound ratio {worst_ratio:.3f} over {trials} segments",
    )


def check_theorem1(rng: np.random.Generator, fast: bool) -> CheckResult:
    """Constant factors 5 / 9 against the exhaustive optimum."""
    trials = 6 if fast else 15
    worst = {4: 0.0, 2: 0.0}
    for _ in range(trials):
        n = int(rng.integers(4, 7))
        points = rng.uniform(-1, 1, size=(n, 2))
        for degree in (4, 2):
            built = build_bisection_tree(points, 0, degree).radius
            opt = optimal_radius(points, 0, degree)
            if opt > 0:
                worst[degree] = max(worst[degree], built / opt)
    ok4 = worst[4] <= bisection_constant_factor(4) + 1e-9
    ok2 = worst[2] <= bisection_constant_factor(2) + 1e-9
    return CheckResult(
        "Theorem 1 (factors 5 / 9 vs optimum)",
        ok4 and ok2,
        f"worst deg-4 factor {worst[4]:.2f}<=5, deg-2 {worst[2]:.2f}<=9",
    )


def check_equation5(rng: np.random.Generator, fast: bool) -> CheckResult:
    """Observed k against the eq.(5) floor (1/2) log2 n."""
    sizes = (256, 2_048) if fast else (256, 2_048, 16_384)
    margins = []
    for n in sizes:
        for trial in range(3):
            seed = int(rng.integers(1 << 30))
            result = build_polar_grid_tree(unit_disk(n, seed=seed), 0, 6)
            margins.append(result.rings - rings_lower_bound(n))
    worst = min(margins)
    passed = worst >= -1.0  # the paper's "with high probability" slack
    return CheckResult(
        "Equation (5) (k >= (1/2) log2 n)",
        passed,
        f"worst observed margin {worst:+.2f} rings",
    )


def check_equation7(rng: np.random.Generator, fast: bool) -> CheckResult:
    """Built delays against the eq.(7) upper bound."""
    trials = 6 if fast else 20
    worst_ratio = 0.0
    for _ in range(trials):
        n = int(rng.integers(100, 4_000))
        seed = int(rng.integers(1 << 30))
        points = unit_disk(n, seed=seed)
        for degree in (6, 2):
            result = build_polar_grid_tree(points, 0, degree)
            bound = polar_grid_upper_bound(result.rings, degree)
            worst_ratio = max(worst_ratio, result.radius / bound)
    passed = worst_ratio <= 1.0 + 1e-9
    return CheckResult(
        "Equation (7) (grid delay bound)",
        passed,
        f"worst delay/bound ratio {worst_ratio:.3f} over {trials} builds",
    )


def check_theorem2(rng: np.random.Generator, fast: bool) -> CheckResult:
    """Asymptotic optimality: delay/lower-bound decreasing toward 1."""
    sizes = (300, 3_000, 30_000) if fast else (300, 3_000, 30_000, 150_000)
    ratios = []
    for n in sizes:
        seed = int(rng.integers(1 << 30))
        points = unit_disk(n, seed=seed)
        result = build_polar_grid_tree(points, 0, 6)
        farthest = float(np.linalg.norm(points - points[0], axis=1).max())
        ratios.append(result.radius / farthest)
    decreasing = all(a > b for a, b in zip(ratios, ratios[1:]))
    close = ratios[-1] < 1.12
    return CheckResult(
        "Theorem 2 (asymptotic optimality)",
        decreasing and close,
        "delay/OPT ratio "
        + " -> ".join(f"{r:.3f}" for r in ratios)
        + f" over n={list(sizes)}",
    )


def run_all_checks(seed: int = 0, fast: bool = False) -> VerificationReport:
    """Run every check with a shared seeded RNG."""
    rng = np.random.default_rng(seed)
    report = VerificationReport()
    report.results.append(check_lemma1(rng, fast))
    report.results.append(check_lemma2())
    report.results.append(check_equation1(rng, fast))
    report.results.append(check_equation2(rng, fast))
    report.results.append(check_theorem1(rng, fast))
    report.results.append(check_equation5(rng, fast))
    report.results.append(check_equation7(rng, fast))
    report.results.append(check_theorem2(rng, fast))
    return report
