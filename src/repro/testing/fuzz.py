"""Seed-corpus fuzzing harness for the tree builders.

Each corpus entry is an index into a deterministic stream derived from a
base seed: instance ``i`` is generated from
``np.random.SeedSequence((base_seed, i))``, so a corpus is identified by
``(base_seed, size)`` alone — no wall-clock, no loop state, no ordering
effects. Re-running ``python -m repro fuzz --seeds 50`` reproduces the
exact same 50 instances anywhere; the ``--budget`` clock only decides how
far into the corpus a run gets, never what the instances are.

Every instance goes through the differential harness
(:func:`repro.testing.differential.run_differential` — all builders, the
structural oracle, the sandwich bounds, the metamorphic transforms) plus
the extra builders the harness does not cover (quadtree,
bandwidth-latency) and an event-driven simulator cross-check. On any
violation the instance is *shrunk* — the point count is bisected
downward while the failure persists — and a JSON crash artifact
(points + seed + violations, original and shrunk) lands in
``results/fuzz/``. Artifacts are written only on violation; a clean run
leaves the directory untouched.

``--mode churn`` switches the corpus from static point clouds to seeded
join/leave *event sequences* replayed through the cell-local
incremental engine (:mod:`repro.overlay.incremental`): after every
event the live tree must pass the incremental-state oracle and stay
within :data:`~repro.overlay.incremental.DELAY_DRIFT_BOUND` of a
from-scratch build over the same membership. Failing traces shrink to
the shortest failing event prefix first, then drop earlier events
chunk-wise with the same delta-debugging loop.

``--mode packing`` fuzzes the multi-group packing invariant instead:
seeded admit/evict traces drive a shared
:class:`~repro.packing.allocator.DegreeBudgetAllocator` and the
``packed-polar-grid`` builder; after every event, every host's summed
out-degree across live groups must stay within its cap
(:func:`repro.analysis.oracle.check_packing`). Structured
``BudgetExhausted`` rejections are *expected* on over-subscribed
admits — only a builder/ledger disagreement or an aggregate-cap breach
is a finding. Failing traces shrink exactly like churn traces (the
final event is always kept).

Exit codes: :data:`EXIT_CLEAN` (0) for a clean run, :data:`EXIT_CRASH`
(3) when at least one violation was found (distinct from argparse's 2
and from an ordinary crash of the harness itself, which propagates as a
traceback with exit 1).

Usage::

    python -m repro fuzz --seeds 200 --budget 60
    python tools/fuzz.py --seconds 60          # compatibility shim
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback
from dataclasses import dataclass
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.testing.differential import run_differential

__all__ = [
    "EXIT_CLEAN",
    "EXIT_CRASH",
    "FuzzInstance",
    "ChurnInstance",
    "PackingInstance",
    "instance_from_seed",
    "churn_instance_from_seed",
    "packing_instance_from_seed",
    "check_instance",
    "check_churn_instance",
    "check_packing_instance",
    "shrink_instance",
    "shrink_churn_instance",
    "shrink_packing_instance",
    "run_fuzz",
    "main",
]

EXIT_CLEAN = 0
EXIT_CRASH = 3

DEFAULT_OUT_DIR = "results/fuzz"

# Metamorphic rebuilds multiply the per-instance cost; cap the size they
# run at so a 60-second smoke budget still covers hundreds of seeds.
METAMORPHIC_MAX_N = 250


@dataclass(frozen=True)
class FuzzInstance:
    """One corpus entry, fully determined by ``(base_seed, index)``."""

    base_seed: int
    index: int
    points: np.ndarray
    source: int
    d_max: int
    kind: int

    @property
    def description(self) -> str:
        n, dim = self.points.shape
        return (
            f"base_seed={self.base_seed} index={self.index} n={n} dim={dim} "
            f"kind={self.kind} source={self.source} d_max={self.d_max}"
        )


def random_cloud(rng: np.random.Generator) -> tuple[np.ndarray, int]:
    """A random point cloud with deliberately nasty shapes mixed in."""
    n = int(rng.integers(2, 400))
    dim = int(rng.choice([2, 2, 2, 3, 4]))
    kind = int(rng.integers(0, 5))
    if kind == 0:  # plain gaussian
        pts = rng.normal(size=(n, dim))
    elif kind == 1:  # extreme anisotropy
        scales = 10.0 ** rng.uniform(-3, 3, size=dim)
        pts = rng.normal(size=(n, dim)) * scales
    elif kind == 2:  # heavy duplicates
        base = rng.normal(size=(max(1, n // 8), dim))
        pts = base[rng.integers(0, base.shape[0], size=n)]
        pts = pts + rng.normal(scale=1e-9, size=pts.shape)
    elif kind == 3:  # collinear
        direction = rng.normal(size=dim)
        pts = np.outer(rng.uniform(-5, 5, n), direction)
    else:  # clustered far apart
        centers = rng.normal(scale=100.0, size=(3, dim))
        pts = centers[rng.integers(0, 3, size=n)] + rng.normal(size=(n, dim))
    return pts, kind


def instance_from_seed(base_seed: int, index: int) -> FuzzInstance:
    """Materialise corpus entry ``index`` of the ``base_seed`` stream.

    Deterministic by construction: the RNG is seeded from the pair
    ``(base_seed, index)``, never from loop state, so any entry can be
    regenerated in isolation (which is exactly what the shrinker and the
    crash artifacts rely on).
    """
    rng = np.random.default_rng(np.random.SeedSequence((base_seed, index)))
    points, kind = random_cloud(rng)
    n = points.shape[0]
    source = int(rng.integers(0, n))
    d_max = int(rng.choice([2, 3, 4, 6, 8, 10, 20]))
    return FuzzInstance(
        base_seed=int(base_seed),
        index=int(index),
        points=points,
        source=source,
        d_max=d_max,
        kind=kind,
    )


# ----------------------------------------------------------------------
# churn-sequence corpus (--mode churn)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnInstance:
    """One churn-trace corpus entry, determined by ``(base_seed, index)``.

    ``events`` is a list of plain dicts — ``{"action": "join", "name":
    ..., "coords": [...]}`` / ``{"action": "leave", "name": ...}`` — so
    crash artifacts serialise it untouched. The trace starts from an
    empty session (source only); the warm-up joins are part of the trace
    and shrink like any other event.
    """

    base_seed: int
    index: int
    dim: int
    d_max: int
    bootstrap: int
    events: tuple

    @property
    def description(self) -> str:
        return (
            f"base_seed={self.base_seed} index={self.index} "
            f"dim={self.dim} d_max={self.d_max} "
            f"bootstrap={self.bootstrap} events={len(self.events)}"
        )


def churn_instance_from_seed(base_seed: int, index: int) -> ChurnInstance:
    """Materialise churn-trace ``index`` of the ``base_seed`` stream.

    The stream is tagged with a third seed component so the churn corpus
    never overlaps the builder corpus of the same base seed. Traces mix
    deliberately nasty events in: duplicate coordinates, escapees far
    beyond the initial footprint (they break the grid's ``r_max``
    assumption), and near-source joins.
    """
    rng = np.random.default_rng(np.random.SeedSequence((base_seed, index, 1)))
    dim = int(rng.choice([2, 2, 2, 3]))
    full_threshold = (1 << dim) + 2
    d_max = int(rng.choice([full_threshold, full_threshold, full_threshold + 2]))
    n0 = int(rng.integers(8, 80))
    n_events = int(rng.integers(20, 160))
    join_prob = float(rng.choice([0.35, 0.5, 0.65]))

    events = []
    live: list[str] = []
    serial = 0

    def join_event():
        nonlocal serial
        roll = rng.random()
        if roll < 0.10 and live:
            # Duplicate an existing member's coordinates exactly.
            coords = next(
                e["coords"]
                for e in reversed(events)
                if e["action"] == "join" and e["name"] == live[-1]
            )
        elif roll < 0.15:
            coords = rng.uniform(-1, 1, size=dim) * rng.uniform(3, 10)
            coords = coords.tolist()
        elif roll < 0.20:
            coords = (rng.normal(size=dim) * 1e-6).tolist()
        else:
            coords = rng.uniform(-1, 1, size=dim).tolist()
        name = f"c{serial}"
        serial += 1
        events.append({"action": "join", "name": name, "coords": coords})
        live.append(name)

    for _ in range(n0):
        join_event()
    for _ in range(n_events):
        if live and rng.random() >= join_prob:
            victim = live.pop(int(rng.integers(0, len(live))))
            events.append({"action": "leave", "name": victim})
        else:
            join_event()
    return ChurnInstance(
        base_seed=int(base_seed),
        index=int(index),
        dim=dim,
        d_max=d_max,
        bootstrap=8,
        events=tuple(events),
    )


def check_churn_instance(
    events, dim: int, d_max: int, bootstrap: int = 8
) -> list[dict]:
    """Replay one churn trace through the incremental path; all findings.

    After every event the maintained tree is validated — through the
    incremental-state oracle once the engine has bootstrapped, through
    the plain tree oracle before — and its radius is compared against a
    from-scratch polar-grid build over the same membership
    (:data:`~repro.overlay.incremental.DELAY_DRIFT_BOUND`). Violations
    carry the 0-based ``event`` index that exposed them.

    Events that are infeasible at replay time (leave of an absent
    member, duplicate join) are *skipped*, not flagged: the shrinker
    removes events chunk-wise, so a candidate trace must stay replayable
    after any subset of removals.
    """
    from repro.analysis.oracle import check_incremental_state, check_tree
    from repro.core.builder import build_polar_grid_tree
    from repro.overlay.dynamic import DynamicOverlay
    from repro.overlay.incremental import DELAY_DRIFT_BOUND

    violations: list[dict] = []
    overlay = DynamicOverlay(
        np.zeros(dim),
        max_out_degree=d_max,
        rebuild_threshold=None,
        mode="incremental",
        bootstrap=bootstrap,
    )
    live: set[str] = set()
    for i, event in enumerate(events):
        name = event["name"]
        feasible = (
            name not in live
            if event["action"] == "join"
            else name in live
        )
        if not feasible:
            continue
        try:
            if event["action"] == "join":
                overlay.join(name, np.asarray(event["coords"], dtype=np.float64))
                live.add(name)
            else:
                overlay.leave(name)
                live.discard(name)
        except Exception:  # noqa: BLE001 - an event crash IS a finding
            violations.append(
                {
                    "code": "EVENT_ERROR",
                    "message": traceback.format_exc(limit=6),
                    "nodes": [],
                    "event": i,
                }
            )
            return violations  # state unusable past a crashed event

        if overlay.engine is not None:
            report = check_incremental_state(overlay.engine)
        else:
            report = check_tree(overlay.tree(), d_max=d_max)
        for v in report.to_dict()["violations"]:
            violations.append({**v, "event": i})
        if violations:
            return violations  # later events replay corrupted state

        if overlay.engine is not None and overlay.n >= 3:
            fresh = build_polar_grid_tree(
                overlay.tree().points, 0, d_max
            )
            if (
                fresh.radius > 0.0
                and overlay.radius() > DELAY_DRIFT_BOUND * fresh.radius
            ):
                violations.append(
                    {
                        "code": "DELAY_DRIFT",
                        "message": (
                            f"incremental radius {overlay.radius():.6g} "
                            f"exceeds {DELAY_DRIFT_BOUND} x fresh-build "
                            f"radius {fresh.radius:.6g}"
                        ),
                        "nodes": [],
                        "event": i,
                    }
                )
                return violations
    return violations


def shrink_churn_instance(
    events,
    dim: int,
    d_max: int,
    bootstrap: int = 8,
    *,
    max_checks: int = 80,
) -> tuple[list, list[dict]]:
    """Minimise a failing churn trace to a short reproducer.

    First truncates to the prefix ending at the first failing event
    (everything after it never ran), then delta-debugs *earlier* events
    out chunk-wise — dropping any chunk whose removal keeps the prefix
    failing. Infeasible leftovers (a leave whose join was dropped) are
    skipped by the checker, so every candidate stays replayable.

    :returns: ``(shrunk_events, violations)`` for the smallest failing
        trace found within ``max_checks`` re-checks.
    """
    events = list(events)
    best_violations = check_churn_instance(events, dim, d_max, bootstrap)
    if not best_violations:
        return events, []
    first_failure = min(
        (v.get("event", len(events) - 1) for v in best_violations),
        default=len(events) - 1,
    )
    keep = events[: first_failure + 1]

    checks = 0
    chunk = max(1, len(keep) // 2)
    while chunk >= 1 and checks < max_checks:
        shrunk_this_pass = False
        start = 0
        while start < len(keep) and checks < max_checks:
            # Never drop the final event — it is the one that fails.
            candidate = [
                e
                for pos, e in enumerate(keep)
                if pos == len(keep) - 1 or not start <= pos < start + chunk
            ]
            if len(candidate) == len(keep) or not candidate:
                start += chunk
                continue
            checks += 1
            obs.add("fuzz.shrink_checks.total")
            found = check_churn_instance(candidate, dim, d_max, bootstrap)
            if found:
                keep = candidate
                best_violations = found
                shrunk_this_pass = True
                start = 0
            else:
                start += chunk
        if not shrunk_this_pass:
            chunk //= 2
        else:
            chunk = min(chunk, max(1, len(keep) // 2))
    return keep, best_violations


def _write_churn_artifact(
    out_dir: Path, instance: ChurnInstance, violations, shrunk
) -> Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"crash-churn-{instance.base_seed}-{instance.index}.json"
    shrunk_events, shrunk_violations = shrunk
    payload = {
        "description": instance.description,
        "base_seed": instance.base_seed,
        "index": instance.index,
        "dim": instance.dim,
        "d_max": instance.d_max,
        "bootstrap": instance.bootstrap,
        "violations": violations,
        "events": list(instance.events),
        "shrunk": {
            "events": list(shrunk_events),
            "violations": shrunk_violations,
        },
        "reproduce": (
            "from repro.testing.fuzz import churn_instance_from_seed, "
            "check_churn_instance; "
            f"i = churn_instance_from_seed({instance.base_seed}, "
            f"{instance.index}); "
            "print(check_churn_instance(i.events, i.dim, i.d_max, "
            "i.bootstrap))"
        ),
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


# ----------------------------------------------------------------------
# multi-group packing corpus (--mode packing)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PackingInstance:
    """One admit/evict-sequence corpus entry: ``(base_seed, index)``.

    ``points`` is the shared host population, ``cap`` the uniform
    per-host out-degree cap, and ``events`` a list of plain dicts —
    ``{"action": "admit", "group": ..., "members": [...], "source":
    ..., "degree": ...}`` / ``{"action": "evict", "group": ...}`` — so
    crash artifacts serialise the trace untouched.
    """

    base_seed: int
    index: int
    points: np.ndarray
    cap: int
    events: tuple

    @property
    def description(self) -> str:
        n, dim = self.points.shape
        return (
            f"base_seed={self.base_seed} index={self.index} "
            f"hosts={n} dim={dim} cap={self.cap} events={len(self.events)}"
        )


def packing_instance_from_seed(base_seed: int, index: int) -> PackingInstance:
    """Materialise packing-trace ``index`` of the ``base_seed`` stream.

    Tagged with a third seed component (2) so the packing corpus never
    overlaps the builder (no tag) or churn (1) corpora of the same base
    seed. Traces over-subscribe deliberately: group sizes up to the
    whole population and caps as low as 3, so many admits are rejected
    — a rejection is *expected* behaviour, not a finding.
    """
    rng = np.random.default_rng(np.random.SeedSequence((base_seed, index, 2)))
    dim = int(rng.choice([2, 2, 3]))
    n_hosts = int(rng.integers(12, 48))
    cap = int(rng.choice([3, 4, 6, 10]))
    points = rng.uniform(-1.0, 1.0, size=(n_hosts, dim))
    n_events = int(rng.integers(8, 40))
    admit_prob = float(rng.choice([0.5, 0.65, 0.8]))

    events = []
    groups: list[str] = []
    for _ in range(n_events):
        if not groups or rng.random() < admit_prob:
            size = int(rng.integers(3, n_hosts + 1))
            members = np.sort(
                rng.choice(n_hosts, size=size, replace=False)
            ).tolist()
            group = f"g{len(groups)}"
            groups.append(group)
            events.append(
                {
                    "action": "admit",
                    "group": group,
                    "members": [int(m) for m in members],
                    "source": int(members[int(rng.integers(0, size))]),
                    "degree": int(rng.choice([4, 6, 10])),
                }
            )
        else:
            # May target an already-evicted (or rejected) group; such
            # events are skipped at replay, like churn's absent leaves.
            events.append(
                {
                    "action": "evict",
                    "group": groups[int(rng.integers(0, len(groups)))],
                }
            )
    return PackingInstance(
        base_seed=int(base_seed),
        index=int(index),
        points=points,
        cap=cap,
        events=tuple(events),
    )


def check_packing_instance(points, cap: int, events) -> list[dict]:
    """Replay one admit/evict trace against a shared budget ledger.

    Each admit builds the group's tree with the ``packed-polar-grid``
    builder against the allocator's residual budgets, then reserves the
    tree's out-degrees. A structured ``BudgetExhausted`` from the
    *builder* is an expected rejection (skipped); a ``BudgetExhausted``
    from the *ledger* after the builder claimed the group fits is a
    real finding (``RESERVE_MISMATCH``) — the builder and the
    allocator disagree about feasibility. After every event the full
    live set must pass :func:`repro.analysis.oracle.check_packing`,
    and no host's residual may go negative. Violations carry the
    0-based ``event`` index that exposed them.
    """
    from repro.analysis.oracle import check_packing
    from repro.core.registry import build
    from repro.packing import BudgetExhausted, DegreeBudgetAllocator

    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    allocator = DegreeBudgetAllocator(np.full(n, int(cap), dtype=np.int64))
    live: dict[str, tuple] = {}  # group -> (tree, members, degree)
    violations: list[dict] = []
    for i, event in enumerate(events):
        group = event["group"]
        if event["action"] == "admit":
            if group in live:
                continue  # infeasible after shrinking; skip like churn
            members = np.asarray(event["members"], dtype=np.int64)
            try:
                local_source = int(
                    np.flatnonzero(members == int(event["source"]))[0]
                )
                out = build(
                    points[members],
                    local_source,
                    "packed-polar-grid",
                    max_out_degree=int(event["degree"]),
                    budgets=allocator.residual()[members],
                    group=group,
                )
            except BudgetExhausted:
                continue  # an over-subscribed admit SHOULD be rejected
            except Exception:  # noqa: BLE001 - an event crash IS a finding
                violations.append(
                    {
                        "code": "EVENT_ERROR",
                        "message": traceback.format_exc(limit=6),
                        "nodes": [],
                        "event": i,
                    }
                )
                return violations
            usage = np.zeros(n, dtype=np.int64)
            usage[members] = out.tree.out_degrees()
            try:
                allocator.reserve(group, usage)
            except BudgetExhausted as exc:
                violations.append(
                    {
                        "code": "RESERVE_MISMATCH",
                        "message": (
                            "builder accepted the group under residual "
                            f"budgets but the ledger rejected it: {exc}"
                        ),
                        "nodes": [] if exc.host is None else [exc.host],
                        "event": i,
                    }
                )
                return violations
            live[group] = (out.tree, members, int(event["degree"]))
        else:
            if group not in live:
                continue
            del live[group]
            allocator.release(group)

        if (allocator.residual() < 0).any():
            bad = np.flatnonzero(allocator.residual() < 0)
            violations.append(
                {
                    "code": "NEGATIVE_RESIDUAL",
                    "message": f"{bad.size} host(s) went past their cap",
                    "nodes": bad.tolist(),
                    "event": i,
                }
            )
            return violations
        report = check_packing(
            [t for t, _, _ in live.values()],
            [m for _, m, _ in live.values()],
            cap,
            n_hosts=n,
            d_maxes=[d for _, _, d in live.values()],
            groups=list(live),
        )
        for v in report.to_dict()["violations"]:
            violations.append({**v, "event": i})
        if violations:
            return violations  # later events replay corrupted state
    return violations


def shrink_packing_instance(
    points, cap: int, events, *, max_checks: int = 80
) -> tuple[list, list[dict]]:
    """Minimise a failing packing trace to a short reproducer.

    Same delta-debugging loop as :func:`shrink_churn_instance`:
    truncate to the first failing event, then drop earlier chunks
    whose removal keeps the trace failing, never dropping the final
    event. Events made infeasible by removals (evict of a never-
    admitted group, duplicate admit) are skipped by the checker, so
    every candidate stays replayable.
    """
    events = list(events)
    best_violations = check_packing_instance(points, cap, events)
    if not best_violations:
        return events, []
    first_failure = min(
        (v.get("event", len(events) - 1) for v in best_violations),
        default=len(events) - 1,
    )
    keep = events[: first_failure + 1]

    checks = 0
    chunk = max(1, len(keep) // 2)
    while chunk >= 1 and checks < max_checks:
        shrunk_this_pass = False
        start = 0
        while start < len(keep) and checks < max_checks:
            # Never drop the final event — it is the one that fails.
            candidate = [
                e
                for pos, e in enumerate(keep)
                if pos == len(keep) - 1 or not start <= pos < start + chunk
            ]
            if len(candidate) == len(keep) or not candidate:
                start += chunk
                continue
            checks += 1
            obs.add("fuzz.shrink_checks.total")
            found = check_packing_instance(points, cap, candidate)
            if found:
                keep = candidate
                best_violations = found
                shrunk_this_pass = True
                start = 0
            else:
                start += chunk
        if not shrunk_this_pass:
            chunk //= 2
        else:
            chunk = min(chunk, max(1, len(keep) // 2))
    return keep, best_violations


def _write_packing_artifact(
    out_dir: Path, instance: PackingInstance, violations, shrunk
) -> Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    path = (
        out_dir / f"crash-packing-{instance.base_seed}-{instance.index}.json"
    )
    shrunk_events, shrunk_violations = shrunk
    payload = {
        "description": instance.description,
        "base_seed": instance.base_seed,
        "index": instance.index,
        "cap": instance.cap,
        "points": instance.points.tolist(),
        "violations": violations,
        "events": list(instance.events),
        "shrunk": {
            "events": list(shrunk_events),
            "violations": shrunk_violations,
        },
        "reproduce": (
            "from repro.testing.fuzz import packing_instance_from_seed, "
            "check_packing_instance; "
            f"i = packing_instance_from_seed({instance.base_seed}, "
            f"{instance.index}); "
            "print(check_packing_instance(i.points, i.cap, i.events))"
        ),
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


# ----------------------------------------------------------------------
# per-instance checking
# ----------------------------------------------------------------------


def check_instance(
    points: np.ndarray, source: int, d_max: int, *, metamorphic: bool | None = None
) -> list[dict]:
    """All violations the harness can find on one instance.

    Returns a JSON-ready list — empty means clean. Exceptions from the
    builders are converted into ``BUILD_ERROR``-style entries by the
    differential harness; exceptions from the extra builders are caught
    here the same way.
    """
    n = points.shape[0]
    if metamorphic is None:
        metamorphic = n <= METAMORPHIC_MAX_N
    report = run_differential(
        points, source, d_max, metamorphic=metamorphic, seed=0
    )
    violations = report.to_dict()["violations"]

    # Builders outside the differential harness, plus the simulator.
    from repro.analysis.oracle import check_tree
    from repro.core.registry import build as build_named
    from repro.overlay.simulator import simulate_dissemination

    def extra(name, build):
        try:
            tree = build()
            oracle = check_tree(tree, d_max=d_max, root=source)
            for v in oracle.to_dict()["violations"]:
                violations.append({**v, "message": f"{name}: {v['message']}"})
            replay = simulate_dissemination(tree)
            if not np.allclose(replay.receive_time, tree.root_delays()):
                violations.append(
                    {
                        "code": "SIMULATOR_MISMATCH",
                        "message": f"{name}: event-driven replay disagrees "
                        "with analytic delays",
                        "nodes": [],
                    }
                )
        except Exception:  # noqa: BLE001 - a builder crash IS a finding
            violations.append(
                {
                    "code": "BUILD_ERROR",
                    "message": f"{name}: {traceback.format_exc(limit=6)}",
                    "nodes": [],
                }
            )

    extra(
        "quadtree",
        lambda: build_named(
            points, source, "quadtree", max_out_degree=d_max
        ).tree,
    )
    extra(
        "bandwidth-latency",
        lambda: build_named(
            points, source, "bandwidth-latency", max_out_degree=d_max, seed=0
        ).tree,
    )
    return violations


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------


def shrink_instance(
    points: np.ndarray,
    source: int,
    d_max: int,
    *,
    max_checks: int = 80,
) -> tuple[np.ndarray, int, list[dict]]:
    """Bisect ``n`` downward while the instance keeps failing.

    Classic delta-debugging over the receiver set: repeatedly try to
    drop a contiguous chunk (half, then quarters, ...) of the current
    points — always keeping the source — and accept any removal that
    still fails :func:`check_instance`. Metamorphic checks are disabled
    during shrinking so the reduced reproducer pins the *structural*
    failure.

    :returns: ``(shrunk_points, shrunk_source, violations)`` for the
        smallest failing instance found within ``max_checks`` re-checks.
    """
    keep = list(range(points.shape[0]))
    best_violations = check_instance(
        points, source, d_max, metamorphic=False
    )
    if not best_violations:
        # The failure only manifests metamorphically; shrink against the
        # full check instead (slower, still bounded by max_checks).
        best_violations = check_instance(points, source, d_max)
        full_check = True
        if not best_violations:
            return points, source, []
    else:
        full_check = False

    def still_fails(indices):
        obs.add("fuzz.shrink_checks.total")
        sub = points[indices]
        sub_source = indices.index(source)
        found = check_instance(
            sub, sub_source, d_max, metamorphic=None if full_check else False
        )
        return found

    checks = 0
    chunk = max(1, len(keep) // 2)
    while chunk >= 1 and checks < max_checks:
        shrunk_this_pass = False
        start = 0
        while start < len(keep) and checks < max_checks:
            candidate = [
                node
                for pos, node in enumerate(keep)
                if node == source or not start <= pos < start + chunk
            ]
            if len(candidate) == len(keep) or len(candidate) < 2:
                start += chunk
                continue
            checks += 1
            found = still_fails(candidate)
            if found:
                keep = candidate
                best_violations = found
                shrunk_this_pass = True
                # Re-scan from the front at the same granularity.
                start = 0
            else:
                start += chunk
        if not shrunk_this_pass:
            chunk //= 2
        else:
            chunk = min(chunk, max(1, len(keep) // 2))

    shrunk = points[keep]
    return shrunk, keep.index(source), best_violations


# ----------------------------------------------------------------------
# the corpus loop
# ----------------------------------------------------------------------


def _write_artifact(
    out_dir: Path, instance: FuzzInstance, violations, shrunk
) -> Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"crash-{instance.base_seed}-{instance.index}.json"
    shrunk_points, shrunk_source, shrunk_violations = shrunk
    payload = {
        "description": instance.description,
        "base_seed": instance.base_seed,
        "index": instance.index,
        "d_max": instance.d_max,
        "source": instance.source,
        "kind": instance.kind,
        "violations": violations,
        "points": instance.points.tolist(),
        "shrunk": {
            "n": int(shrunk_points.shape[0]),
            "source": int(shrunk_source),
            "points": shrunk_points.tolist(),
            "violations": shrunk_violations,
        },
        "reproduce": (
            "from repro.testing.fuzz import instance_from_seed, "
            "check_instance; "
            f"i = instance_from_seed({instance.base_seed}, {instance.index}); "
            "print(check_instance(i.points, i.source, i.d_max))"
        ),
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def run_fuzz(
    seeds: int,
    budget: float | None = None,
    base_seed: int = 0,
    out_dir: str = DEFAULT_OUT_DIR,
    *,
    mode: str = "builders",
    max_crashes: int = 5,
    shrink: bool = True,
    report_every: int = 50,
    log=print,
) -> int:
    """Run corpus entries ``0 .. seeds-1`` of the ``base_seed`` stream.

    :param seeds: corpus size (number of instances).
    :param budget: optional wall-clock cap in seconds; the run stops
        early (still cleanly) when it is exhausted.
    :param base_seed: corpus identity; same value, same instances.
    :param out_dir: crash artifact directory (created on first crash).
    :param mode: ``"builders"`` (static point clouds through the
        differential harness), ``"churn"`` (join/leave event traces
        through the incremental engine), or ``"packing"`` (admit/evict
        traces against a shared degree-budget ledger).
    :param max_crashes: stop after this many distinct failing instances.
    :param shrink: bisect failing instances down before writing them out.
    :returns: :data:`EXIT_CLEAN` or :data:`EXIT_CRASH`.
    """
    if mode not in ("builders", "churn", "packing"):
        raise ValueError(f"unknown fuzz mode {mode!r}")
    started = time.monotonic()
    deadline = None if budget is None else started + float(budget)
    out_path = Path(out_dir)
    crashes = 0
    executed = 0
    for index in range(int(seeds)):
        if deadline is not None and time.monotonic() >= deadline:
            log(f"budget exhausted after {executed}/{seeds} instances")
            break
        if mode == "churn":
            instance = churn_instance_from_seed(base_seed, index)
            with obs.span(
                "fuzz.churn_instance", index=index, events=len(instance.events)
            ):
                violations = check_churn_instance(
                    instance.events,
                    instance.dim,
                    instance.d_max,
                    instance.bootstrap,
                )
        elif mode == "packing":
            instance = packing_instance_from_seed(base_seed, index)
            with obs.span(
                "fuzz.packing_instance",
                index=index,
                events=len(instance.events),
            ):
                violations = check_packing_instance(
                    instance.points, instance.cap, instance.events
                )
        else:
            instance = instance_from_seed(base_seed, index)
            with obs.span(
                "fuzz.instance", index=index, n=instance.points.shape[0]
            ):
                violations = check_instance(
                    instance.points, instance.source, instance.d_max
                )
        executed += 1
        obs.add("fuzz.execs.total")
        if violations:
            crashes += 1
            obs.add("fuzz.crashes.total")
            log(f"FUZZ FAILURE: {instance.description}")
            for v in violations[:8]:
                log(f"  [{v['code']}] {v['message'].splitlines()[0]}")
            if mode == "churn":
                if shrink:
                    shrunk = shrink_churn_instance(
                        instance.events,
                        instance.dim,
                        instance.d_max,
                        instance.bootstrap,
                    )
                else:
                    shrunk = (list(instance.events), violations)
                artifact = _write_churn_artifact(
                    out_path, instance, violations, shrunk
                )
                log(
                    f"  artifact: {artifact} "
                    f"(shrunk to {len(shrunk[0])} events)"
                )
            elif mode == "packing":
                if shrink:
                    shrunk = shrink_packing_instance(
                        instance.points, instance.cap, instance.events
                    )
                else:
                    shrunk = (list(instance.events), violations)
                artifact = _write_packing_artifact(
                    out_path, instance, violations, shrunk
                )
                log(
                    f"  artifact: {artifact} "
                    f"(shrunk to {len(shrunk[0])} events)"
                )
            else:
                if shrink:
                    shrunk = shrink_instance(
                        instance.points, instance.source, instance.d_max
                    )
                else:
                    shrunk = (instance.points, instance.source, violations)
                artifact = _write_artifact(
                    out_path, instance, violations, shrunk
                )
                log(
                    f"  artifact: {artifact} "
                    f"(shrunk to n={shrunk[0].shape[0]})"
                )
            if crashes >= max_crashes:
                log(f"stopping after {crashes} crashes")
                break
        elif report_every and executed % report_every == 0:
            log(f"{executed} instances clean (last index {index})")
    elapsed = time.monotonic() - started
    if elapsed > 0:
        obs.set_gauge("fuzz.execs_per_sec", executed / elapsed)
    if crashes:
        log(f"fuzzing found {crashes} failing instances ({executed} run)")
        return EXIT_CRASH
    log(f"fuzzing clean: {executed} instances")
    return EXIT_CLEAN


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="seed-corpus differential fuzzing of the tree builders",
    )
    parser.add_argument(
        "--seeds", type=int, default=200, help="corpus size (instances)"
    )
    parser.add_argument(
        "--mode",
        choices=("builders", "churn", "packing"),
        default="builders",
        help="corpus kind: static clouds through the differential "
        "harness, churn event traces through the incremental engine, "
        "or admit/evict traces against a shared degree-budget ledger",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECS",
        help="wall-clock cap; stops early but never changes the corpus",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (corpus identity)"
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT_DIR, help="crash artifact directory"
    )
    parser.add_argument(
        "--max-crashes", type=int, default=5, help="stop after K crashes"
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="write crash artifacts without the shrinking pass",
    )
    return parser


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    return run_fuzz(
        seeds=args.seeds,
        budget=args.budget,
        base_seed=args.seed,
        out_dir=args.out,
        mode=args.mode,
        max_crashes=args.max_crashes,
        shrink=not args.no_shrink,
    )


if __name__ == "__main__":
    sys.exit(main())
