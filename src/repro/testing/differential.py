"""Differential and metamorphic verification of the tree builders.

One instance, every algorithm: :func:`run_differential` builds the same
point set with Algorithm Polar_Grid, the Section II bisection, and the
baselines (compact tree, capped star), runs the structural oracle of
:mod:`repro.analysis.oracle` over each result, and then cross-checks the
radii against every bound that must hold simultaneously:

* **universal lower bound** — any spanning tree's radius is at least the
  distance from the source to its farthest receiver;
* **exact sandwich** — for tiny instances the exhaustive optimum of
  :mod:`repro.baselines.exact` gives ``opt <= radius``, and Theorem 1
  additionally caps the 2-D bisection at ``factor * opt``;
* **equation (7)** — the 2-D polar-grid radius never exceeds the paper's
  closed-form bound (reported by the builder itself).

On top sit *metamorphic* transforms — rotation, translation, uniform
scaling, point permutation. Isometries preserve all pairwise distances,
so whenever the construction is equivariant under the transform the
radius must be reproduced exactly (up to the scale factor); where a
construction is deliberately frame- or order-dependent the harness still
requires the transformed build to pass the oracle and the bounds. Which
equivalences hold for which builder is encoded in
:data:`METAMORPHIC_TRANSFORMS` and documented in ``docs/TESTING.md``:

============  ==============================  ===========================
transform     polar grid                      bisection
============  ==============================  ===========================
translate     radius equal                    radius equal
scale         radius scales by the factor     radius scales by the factor
permute       radius equal                    radius equal except the 2-D
                                              binary mode (order-driven
                                              forwarder chains)
rotate-pi     radius equal in the full mode   radius equal for d >= 3
              (the half-turn maps every       (the annulus t-box is
              dyadic cell onto a cell); the   half-turn symmetric); the
              binary core chains cells in     2-D mode anchors its ring
              id order, so only bounds are    centre to the bounding box,
              required                        so only bounds are required
============  ==============================  ===========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from traceback import format_exception_only

import numpy as np

from repro.analysis.oracle import (
    OracleReport,
    Violation,
    check_build_result,
    check_tree,
)
from repro.baselines.exact import MAX_EXACT_NODES, optimal_radius
from repro.core.bounds import bisection_constant_factor
from repro.core.registry import build

__all__ = [
    "BuilderOutcome",
    "DifferentialReport",
    "METAMORPHIC_TRANSFORMS",
    "run_differential",
]

# Exhaustive search costs (n-1)^(n-1); 7 nodes (46k vectors) is cheap
# enough to run on every fuzz iteration, 8 is opt-in.
DEFAULT_EXACT_LIMIT = 7

# Radii reproduced under an exact equivariance must match to this rtol
# (builds repeat the same float ops on transformed inputs).
METAMORPHIC_RTOL = 1e-7

BOUND_SLACK = 1e-9


@dataclass(frozen=True)
class BuilderOutcome:
    """One builder's result on one instance (or variant of it)."""

    builder: str
    radius: float | None = None
    report: OracleReport | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and (self.report is None or self.report.ok)


@dataclass
class DifferentialReport:
    """Everything the harness measured on one instance."""

    n: int
    dim: int
    source: int
    d_max: int
    outcomes: list[BuilderOutcome] = field(default_factory=list)
    cross_violations: list[Violation] = field(default_factory=list)
    optimum: float | None = None

    @property
    def ok(self) -> bool:
        return not self.cross_violations and all(o.ok for o in self.outcomes)

    @property
    def violations(self) -> list[Violation]:
        """All violations, per-builder and cross-builder."""
        out = list(self.cross_violations)
        for o in self.outcomes:
            if o.report is not None:
                out.extend(o.report.violations)
            if o.error is not None:
                out.append(Violation("BUILD_ERROR", f"{o.builder}: {o.error}"))
        return out

    def add(self, code: str, message: str) -> None:
        self.cross_violations.append(Violation(code, message))

    def render(self) -> str:
        head = (
            f"differential check: n={self.n} dim={self.dim} "
            f"source={self.source} d_max={self.d_max}"
        )
        lines = [head]
        for o in self.outcomes:
            radius = "-" if o.radius is None else f"{o.radius:.6g}"
            status = "ok" if o.ok else "FAIL"
            lines.append(f"  {o.builder:<24} radius={radius:<12} {status}")
        for v in self.violations:
            lines.append(f"  {v}")
        lines.append("clean" if self.ok else "VIOLATIONS FOUND")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "n": self.n,
            "dim": self.dim,
            "source": self.source,
            "d_max": self.d_max,
            "optimum": self.optimum,
            "radii": {
                o.builder: o.radius for o in self.outcomes if o.radius is not None
            },
            "violations": [
                {"code": v.code, "message": v.message, "nodes": list(v.nodes)}
                for v in self.violations
            ],
        }


# ----------------------------------------------------------------------
# metamorphic transforms
# ----------------------------------------------------------------------


def _translate(points, source, rng):
    shift = rng.normal(scale=2.0, size=points.shape[1])
    return points + shift, source, 1.0


def _scale(points, source, rng):
    factor = float(rng.uniform(0.3, 4.0))
    return points * factor, source, factor


def _permute(points, source, rng):
    perm = rng.permutation(points.shape[0])
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    return points[perm], int(inverse[source]), 1.0


def _rotate_pi(points, source, rng):
    # A half-turn in the plane of the last two axes: the one rotation
    # that maps every dyadic angular bin of the polar grid onto a bin.
    rotated = points.copy()
    rotated[:, -2:] *= -1.0
    return rotated, source, 1.0


def _grid_is_full_mode(dim: int, d_max: int) -> bool:
    return d_max >= (1 << dim) + 2


#: ``name -> (transform, radius_equal_for_grid, radius_equal_for_bisection)``
#: where the predicates take ``(dim, d_max)``. When a predicate is false
#: the transform still runs, but only the oracle and the bounds are
#: asserted — not radius equality (see the module docstring's table).
METAMORPHIC_TRANSFORMS = {
    "translate": (_translate, lambda dim, d: True, lambda dim, d: True),
    "scale": (_scale, lambda dim, d: True, lambda dim, d: True),
    "permute": (
        _permute,
        lambda dim, d: True,
        lambda dim, d: not (dim == 2 and d < 4),
    ),
    "rotate-pi": (
        _rotate_pi,
        _grid_is_full_mode,
        lambda dim, d: dim >= 3,
    ),
}


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------


def _lower_bound(points: np.ndarray, source: int) -> float:
    return float(np.sqrt(((points - points[source]) ** 2).sum(axis=1)).max())


def _error_text(exc: BaseException) -> str:
    return "".join(format_exception_only(type(exc), exc)).strip()


def run_differential(
    points,
    source: int = 0,
    d_max: int = 6,
    *,
    metamorphic: bool = True,
    exact_limit: int | None = None,
    seed: int = 0,
) -> DifferentialReport:
    """Build one instance with every algorithm and cross-check the lot.

    :param points: ``(n, d)`` coordinates, ``d >= 2``.
    :param source: root index.
    :param d_max: fan-out budget handed to every builder (>= 2).
    :param metamorphic: also rebuild under the
        :data:`METAMORPHIC_TRANSFORMS` and check radius equivariance.
    :param exact_limit: run the exhaustive optimum for ``n`` up to this
        (default :data:`DEFAULT_EXACT_LIMIT`, capped at
        :data:`~repro.baselines.exact.MAX_EXACT_NODES`).
    :param seed: seed for the transform parameters (shift vector, scale
        factor, permutation) — the harness itself is deterministic.
    :returns: a :class:`DifferentialReport`; ``report.ok`` means every
        builder produced an oracle-clean tree and every cross-check held.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] < 2:
        raise ValueError("differential harness needs (n, d) points, d >= 2")
    if d_max < 2:
        raise ValueError("d_max must be at least 2")
    n, dim = points.shape
    source = int(source)
    report = DifferentialReport(n=n, dim=dim, source=source, d_max=d_max)
    lower = _lower_bound(points, source)

    # --- base builds, each through the oracle --------------------------
    radii: dict[str, float] = {}
    grid_result = None

    def run_builder(name, oracle):
        """Build ``name`` through :func:`repro.build` and oracle-check it."""
        nonlocal grid_result
        try:
            built = build(points, source, name, max_out_degree=d_max)
        except Exception as exc:  # noqa: BLE001 - recorded, not swallowed
            report.outcomes.append(
                BuilderOutcome(builder=name, error=_error_text(exc))
            )
            return
        outcome = BuilderOutcome(
            builder=name,
            radius=float(built.tree.radius()),
            report=oracle(built),
        )
        report.outcomes.append(outcome)
        radii[name] = outcome.radius
        if name == "polar-grid":
            grid_result = built

    run_builder(
        "polar-grid",
        lambda built: check_build_result(
            built, occupancy="full", representative_rule="inner-anchor"
        ),
    )
    for name in ("bisection", "compact-tree", "capped-star"):
        run_builder(
            name,
            lambda built: check_tree(built.tree, d_max=d_max, root=source),
        )

    # --- cross-builder bounds ------------------------------------------
    slack = BOUND_SLACK * max(lower, 1.0)
    for name, radius in radii.items():
        if radius < lower - slack:
            report.add(
                "SANDWICH_LOWER",
                f"{name} radius {radius:.6g} is below the farthest-receiver "
                f"distance {lower:.6g} — delays are being under-reported",
            )

    limit = DEFAULT_EXACT_LIMIT if exact_limit is None else exact_limit
    limit = min(limit, MAX_EXACT_NODES)
    if n <= limit:
        opt = optimal_radius(points, source, d_max)
        report.optimum = opt
        opt_slack = BOUND_SLACK * max(opt, 1.0)
        for name, radius in radii.items():
            if radius < opt - opt_slack:
                report.add(
                    "SANDWICH_EXACT",
                    f"{name} radius {radius:.6g} beats the exhaustive "
                    f"optimum {opt:.6g} — one of the two is wrong",
                )
        if dim == 2 and "bisection" in radii and opt > 0:
            factor = bisection_constant_factor(d_max)
            if radii["bisection"] > factor * opt + opt_slack:
                report.add(
                    "THEOREM1_FACTOR",
                    f"2-D bisection radius {radii['bisection']:.6g} exceeds "
                    f"{factor} x optimum ({opt:.6g}) — Theorem 1 is broken",
                )

    if (
        grid_result is not None
        and grid_result.upper_bound is not None
        and "polar-grid" in radii
    ):
        bound = grid_result.upper_bound
        if radii["polar-grid"] > bound * (1.0 + BOUND_SLACK) + BOUND_SLACK:
            report.add(
                "SANDWICH_EQ7",
                f"polar-grid radius {radii['polar-grid']:.6g} exceeds its "
                f"own eq. (7) bound {bound:.6g}",
            )

    # --- metamorphic layer ---------------------------------------------
    if metamorphic:
        rng = np.random.default_rng(seed)
        for name, (transform, grid_eq, bisect_eq) in (
            METAMORPHIC_TRANSFORMS.items()
        ):
            t_points, t_source, factor = transform(points, source, rng)
            for builder, equal in (
                ("polar-grid", grid_eq(dim, d_max)),
                ("bisection", bisect_eq(dim, d_max)),
            ):
                if builder not in radii:
                    continue  # the base build already failed; reported above
                label = f"{builder}[{name}]"
                try:
                    variant = build(
                        t_points, t_source, builder, max_out_degree=d_max
                    )
                except Exception as exc:  # noqa: BLE001
                    report.outcomes.append(
                        BuilderOutcome(builder=label, error=_error_text(exc))
                    )
                    continue
                oracle = check_tree(variant.tree, d_max=d_max, root=t_source)
                outcome = BuilderOutcome(
                    builder=label,
                    radius=float(variant.tree.radius()),
                    report=oracle,
                )
                report.outcomes.append(outcome)
                expected = factor * radii[builder]
                if equal and not np.isclose(
                    outcome.radius, expected, rtol=METAMORPHIC_RTOL, atol=1e-12
                ):
                    report.add(
                        "METAMORPHIC_RADIUS",
                        f"{label}: radius {outcome.radius:.9g} != expected "
                        f"{expected:.9g} (base {radii[builder]:.9g}, "
                        f"scale {factor:g})",
                    )
                t_lower = factor * lower
                if outcome.radius < t_lower - BOUND_SLACK * max(t_lower, 1.0):
                    report.add(
                        "SANDWICH_LOWER",
                        f"{label}: radius {outcome.radius:.6g} below the "
                        f"transformed lower bound {t_lower:.6g}",
                    )
    return report
