"""Correctness tooling: differential verification and fuzzing.

This package is the mutation-visible safety net around the tree
builders. :mod:`repro.testing.differential` builds the same instance
with every algorithm and cross-checks them against the structural oracle
(:mod:`repro.analysis.oracle`), the exhaustive optimum (tiny ``n``), the
eq. (7) bound and a set of metamorphic transforms.
:mod:`repro.testing.fuzz` drives that harness from a deterministic seed
corpus (``python -m repro fuzz``), writing shrunk crash artifacts to
``results/fuzz/``. :mod:`repro.testing.faults` injects deterministic
crashes/hangs/OOMs into trials (via the ``REPRO_FAULTS`` env var) to
exercise the resilience layer. See ``docs/TESTING.md`` for the full
picture.
"""

from repro.testing import faults
from repro.testing.differential import (
    BuilderOutcome,
    DifferentialReport,
    run_differential,
)
from repro.testing.fuzz import (
    EXIT_CLEAN,
    EXIT_CRASH,
    instance_from_seed,
    run_fuzz,
    shrink_instance,
)

__all__ = [
    "BuilderOutcome",
    "DifferentialReport",
    "EXIT_CLEAN",
    "EXIT_CRASH",
    "faults",
    "instance_from_seed",
    "run_differential",
    "run_fuzz",
    "shrink_instance",
]
