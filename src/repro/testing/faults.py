"""Deterministic fault injection for resilience testing.

Real campaigns die in three ways the unit suite cannot produce on
demand: a worker crashes (OOM killer, segfault), a worker hangs
(swap thrash, deadlocked BLAS), or a trial raises. This module forges
all three, deterministically, from a plan carried in the
``REPRO_FAULTS`` environment variable — an env var because it crosses
the ``fork``/``spawn`` boundary for free, so the same plan reaches
process-pool workers and the in-process serial engine alike.

The hook itself lives at the top of
:func:`repro.experiments.execute_trial` and is completely inert (one
``os.environ`` lookup) unless the variable is set; nothing in
production code paths imports this module.

Plan format — a JSON object with a ``faults`` list::

    {"faults": [
        {"kind": "crash", "trial": 3, "attempt": 0},
        {"kind": "hang",  "trial": 5, "attempt": 0, "seconds": 3600},
        {"kind": "sleep", "seconds": 0.2}
    ]}

Each entry matches a :class:`~repro.experiments.parallel.TrialTask` by
``trial`` (its ``trial_index``; omitted or ``null`` = every trial),
``attempt`` (omitted or ``null`` = every attempt) and optionally
``seed``. The first matching entry fires. Kinds:

``error``
    raise ``RuntimeError`` — captured as a ``TrialFailure`` and retried.
``oom``
    raise ``MemoryError`` — the OOM simulation; same retry path.
``crash``
    ``os._exit(13)`` — kills the hosting process outright. Only inject
    this under a process engine: under the serial engine it kills the
    sweep (which is itself a useful drill for checkpoint resume).
``hang``
    sleep for ``seconds`` (default 3600) — long enough that only a
    per-trial timeout gets the trial back.
``sleep``
    sleep for ``seconds`` (default 0.1) and then run normally — not a
    fault, a brake: the kill-and-resume harness uses it to hold a sweep
    in flight long enough to SIGKILL it mid-campaign.

Use :func:`plan_json` to build the value and :func:`injected` to set it
for an in-process block of code::

    from repro.testing import faults

    with faults.injected(faults.FaultSpec(kind="error", trial=1)):
        run_trials(100, 6, trials=3, resilience=policy)
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from functools import lru_cache

__all__ = [
    "FAULTS_ENV",
    "FaultSpec",
    "maybe_inject",
    "plan_json",
    "injected",
]

#: The environment variable the trial runner checks for a fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Injectable fault kinds (see the module docstring for semantics).
KINDS = ("error", "oom", "crash", "hang", "sleep")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what to do and which trial attempt to hit."""

    kind: str
    trial: int | None = None
    attempt: int | None = None
    seed: int | None = None
    seconds: float | None = None

    def __post_init__(self):
        """Reject unknown kinds early, at plan-construction time."""
        if self.kind not in KINDS:
            raise ValueError(f"fault kind must be one of {KINDS}; got {self.kind!r}")

    def matches(self, task) -> bool:
        """Whether this fault fires for ``task`` (a ``TrialTask``)."""
        if self.trial is not None and self.trial != task.trial_index:
            return False
        if self.attempt is not None and self.attempt != task.attempt:
            return False
        if self.seed is not None and self.seed != task.seed:
            return False
        return True


def plan_json(*specs: FaultSpec) -> str:
    """Serialise fault specs into the ``REPRO_FAULTS`` value format."""
    return json.dumps(
        {"faults": [asdict(spec) for spec in specs]}, sort_keys=True
    )


@lru_cache(maxsize=8)
def _parse_plan(raw: str) -> tuple[FaultSpec, ...]:
    """Decode a plan string once per distinct value (cached per process)."""
    payload = json.loads(raw)
    return tuple(
        FaultSpec(
            kind=entry["kind"],
            trial=entry.get("trial"),
            attempt=entry.get("attempt"),
            seed=entry.get("seed"),
            seconds=entry.get("seconds"),
        )
        for entry in payload.get("faults", ())
    )


def maybe_inject(task) -> None:
    """Fire the first planned fault matching ``task``, if any.

    Called from ``execute_trial`` when ``REPRO_FAULTS`` is set. A
    malformed plan raises immediately (a typo must not silently disable
    a fault drill).
    """
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return
    for spec in _parse_plan(raw):
        if not spec.matches(task):
            continue
        if spec.kind == "error":
            raise RuntimeError(
                f"injected fault (trial={task.trial_index} "
                f"attempt={task.attempt} seed={task.seed})"
            )
        if spec.kind == "oom":
            raise MemoryError(
                f"injected OOM (trial={task.trial_index} "
                f"attempt={task.attempt})"
            )
        if spec.kind == "crash":
            os._exit(13)
        if spec.kind == "hang":
            time.sleep(spec.seconds if spec.seconds is not None else 3600.0)
            return
        if spec.kind == "sleep":
            time.sleep(spec.seconds if spec.seconds is not None else 0.1)
            return


@contextmanager
def injected(*specs: FaultSpec):
    """Set ``REPRO_FAULTS`` to the given plan for the ``with`` block.

    Restores (or removes) the previous value on exit. Affects the
    current process and any worker processes spawned inside the block.
    """
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = plan_json(*specs)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous
