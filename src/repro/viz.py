"""SVG rendering of 2-D multicast trees (zero dependencies).

Produces a standalone SVG: edges coloured by depth (core hops dark,
deep bisection hops light), receivers as dots, the source as a ring.
Useful for eyeballing the polar-grid structure — the binary core tree
and the in-cell bisections of the paper's Figure 1/2 become visible.

Only 2-D trees are rendered; project higher-dimensional trees first.
"""

from __future__ import annotations

from pathlib import Path


from repro.core.tree import MulticastTree

__all__ = ["tree_to_svg", "save_svg"]


def _depth_color(depth: int, max_depth: int) -> str:
    """Dark blue for shallow (core) edges fading to light for deep ones."""
    frac = depth / max_depth if max_depth else 0.0
    # Interpolate #1f3a93 (deep blue) -> #a8c6fa (pale blue).
    start = (0x1F, 0x3A, 0x93)
    end = (0xA8, 0xC6, 0xFA)
    rgb = tuple(round(s + (e - s) * frac) for s, e in zip(start, end))
    return f"#{rgb[0]:02x}{rgb[1]:02x}{rgb[2]:02x}"


def tree_to_svg(
    tree: MulticastTree,
    size: int = 800,
    margin: int = 20,
    max_nodes: int = 200_000,
) -> str:
    """Render a 2-D tree to an SVG string.

    :param size: canvas width/height in pixels.
    :param max_nodes: refuse beyond this (a 5M-line SVG helps nobody).
    :raises ValueError: for non-2-D trees or oversized inputs.
    """
    if tree.dim != 2:
        raise ValueError("only 2-D trees can be rendered; project first")
    if tree.n > max_nodes:
        raise ValueError(
            f"tree has {tree.n} nodes; rendering is capped at {max_nodes}"
        )

    pts = tree.points
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    extent = float(max(hi[0] - lo[0], hi[1] - lo[1], 1e-12))
    scale = (size - 2 * margin) / extent

    def xy(p):
        x = margin + (p[0] - lo[0]) * scale
        # SVG's y axis points down; flip so the plot reads like a graph.
        y = size - margin - (p[1] - lo[1]) * scale
        return f"{x:.2f}", f"{y:.2f}"

    depths = tree.depths()
    max_depth = int(depths.max()) if tree.n > 1 else 1
    parent = tree.parent

    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    for node in range(tree.n):
        if node == tree.root:
            continue
        x1, y1 = xy(pts[int(parent[node])])
        x2, y2 = xy(pts[node])
        color = _depth_color(int(depths[node]), max_depth)
        lines.append(
            f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
            f'stroke="{color}" stroke-width="1"/>'
        )
    # Receivers on top of edges, source on top of everything.
    radius = max(1.0, 3.0 - tree.n / 5000.0)
    for node in range(tree.n):
        if node == tree.root:
            continue
        cx, cy = xy(pts[node])
        lines.append(
            f'<circle cx="{cx}" cy="{cy}" r="{radius:.1f}" fill="#d35400"/>'
        )
    sx, sy = xy(pts[tree.root])
    lines.append(
        f'<circle cx="{sx}" cy="{sy}" r="7" fill="none" '
        'stroke="#c0392b" stroke-width="3"/>'
    )
    lines.append("</svg>")
    return "\n".join(lines)


def save_svg(tree: MulticastTree, path, **kwargs) -> Path:
    """Render and write; returns the path written."""
    path = Path(path)
    path.write_text(tree_to_svg(tree, **kwargs))
    return path
