"""Linear projections of higher-dimensional point sets.

Network-coordinate systems often use 3-8 dimensions (the GNP paper the
reproduction target cites evaluates up to 8); our SVG renderer and any
plotting is 2-D. :func:`pca_project` gives the distance-optimal linear
view — the principal 2-D subspace — plus the explained-variance split
so the caller knows how honest the picture is.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import validate_points

__all__ = ["pca_project", "project_tree"]


def pca_project(
    points: np.ndarray, dim: int = 2
) -> tuple[np.ndarray, np.ndarray]:
    """Project points onto their top principal components.

    :param points: ``(n, d)`` array with ``d >= dim``.
    :param dim: target dimensionality.
    :returns: ``(projected, explained)`` — the ``(n, dim)`` projection
        (centred) and the fraction of total variance carried by each of
        the ``dim`` kept components (sums to <= 1).
    """
    validate_points(points)
    n, d = points.shape
    if dim < 1:
        raise ValueError("target dim must be positive")
    if d < dim:
        raise ValueError(f"cannot project {d}-D points up to {dim}-D")
    centred = points - points.mean(axis=0)
    # SVD of the centred cloud: right singular vectors are the PCs.
    _u, singular, vt = np.linalg.svd(centred, full_matrices=False)
    projected = centred @ vt[:dim].T
    total = float(np.sum(singular**2))
    if total == 0.0:
        explained = np.zeros(dim)
    else:
        explained = (singular[:dim] ** 2) / total
    return projected, explained


def project_tree(tree, dim: int = 2):
    """A copy of ``tree`` with PCA-projected coordinates.

    Edge lengths change under projection (it is a view, not an
    isometry); the returned tree is for *rendering*, not for delay
    measurements — use the original for those.
    """
    from repro.core.tree import MulticastTree

    projected, _explained = pca_project(tree.points, dim=dim)
    return MulticastTree(
        points=projected, parent=tree.parent.copy(), root=tree.root
    )
