"""Polar and hyperspherical coordinate transforms.

The grid algorithms never work on raw angles. They work on
*measure-uniform* angular coordinates ``t in [0, 1)^(d-1)``: coordinates in
which the surface measure of the unit (d-1)-sphere is the plain Lebesgue
measure of the unit box. Splitting a cell in half along any ``t`` axis then
splits its volume exactly in half — which is the paper's "equal volume
split" (Section IV-B) with all the tedium factored into the transform.

For ``d = 2`` the transform is ``t = theta / (2*pi)``; for ``d = 3`` it is
``(theta / (2*pi), (1 - cos(phi)) / 2)``; for ``d >= 4`` the polar-angle
CDFs ``integral sin^m`` are tabulated once and inverted by interpolation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize_angle",
    "to_polar",
    "from_polar",
    "angles_to_unit_vectors",
    "SphericalTransform",
]

TWO_PI = 2.0 * np.pi

# Resolution of the tabulated sin^m CDFs used for d >= 4. 1 << 14 knots keep
# the interpolation error near 1e-9, far below any cell-boundary tolerance.
_CDF_TABLE_SIZE = (1 << 14) + 1


def normalize_angle(theta) -> np.ndarray:
    """Map angles into ``[0, 2*pi)`` elementwise.

    Values that land exactly on ``2*pi`` after the modulo (a floating-point
    artefact for tiny negative inputs) are folded back to ``0``.
    """
    theta = np.asarray(theta, dtype=np.float64)
    wrapped = np.mod(theta, TWO_PI)
    # mod can return 2*pi for inputs like -1e-17; fold that back to zero.
    return np.where(wrapped >= TWO_PI, 0.0, wrapped)


def to_polar(points: np.ndarray, center) -> tuple[np.ndarray, np.ndarray]:
    """2-D Cartesian to polar around ``center``.

    :returns: ``(radius, angle)`` arrays, with angles in ``[0, 2*pi)``.
    """
    center = np.asarray(center, dtype=np.float64)
    if points.shape[1] != 2:
        raise ValueError("to_polar expects 2-D points; use SphericalTransform")
    delta = points - center
    radius = np.hypot(delta[:, 0], delta[:, 1])
    angle = normalize_angle(np.arctan2(delta[:, 1], delta[:, 0]))
    return radius, angle


def from_polar(radius, angle, center=(0.0, 0.0)) -> np.ndarray:
    """2-D polar to Cartesian; inverse of :func:`to_polar`."""
    radius = np.asarray(radius, dtype=np.float64)
    angle = np.asarray(angle, dtype=np.float64)
    center = np.asarray(center, dtype=np.float64)
    return np.stack(
        [center[0] + radius * np.cos(angle), center[1] + radius * np.sin(angle)],
        axis=1,
    )


def angles_to_unit_vectors(angle) -> np.ndarray:
    """2-D unit vectors for an array of angles."""
    angle = np.asarray(angle, dtype=np.float64)
    return np.stack([np.cos(angle), np.sin(angle)], axis=1)


def _sin_power_cdf_table(power: int) -> tuple[np.ndarray, np.ndarray]:
    """Tabulate the normalised CDF of ``sin(phi)**power`` on ``[0, pi]``."""
    phi = np.linspace(0.0, np.pi, _CDF_TABLE_SIZE)
    density = np.sin(phi) ** power
    cdf = np.concatenate([[0.0], np.cumsum((density[1:] + density[:-1]) / 2.0)])
    cdf /= cdf[-1]
    return phi, cdf


class SphericalTransform:
    """Measure-uniform angular coordinates for directions in ``R^d``.

    ``transform`` maps offsets from a centre to ``(radius, t)`` where
    ``t`` has shape ``(n, d-1)``; each column is uniform on ``[0, 1)`` when
    directions are uniform on the sphere, and independent of the others.
    Axis ``0`` is the azimuth (it exists in every dimension); axes
    ``1 .. d-2`` come from the polar angles, innermost last.

    ``direction`` inverts the angular part, producing unit vectors — used
    by the workload generators and the test suite to check that dyadic
    ``t``-boxes really do carve the sphere into equal-measure cells.
    """

    def __init__(self, dim: int):
        if dim < 2:
            raise ValueError(f"SphericalTransform requires dim >= 2, got {dim}")
        self.dim = int(dim)
        # Polar angle j (0-based within the polar angles) carries weight
        # sin^(dim - 2 - j); tables are only needed for weights >= 2.
        self._cdf_tables = {}
        for weight in range(2, self.dim - 1):
            self._cdf_tables[weight] = _sin_power_cdf_table(weight)

    @property
    def angular_axes(self) -> int:
        """Number of ``t`` coordinates, ``d - 1``."""
        return self.dim - 1

    def _polar_angle_to_t(self, phi: np.ndarray, weight: int) -> np.ndarray:
        """CDF of ``sin**weight`` evaluated at ``phi`` (normalised)."""
        if weight == 0:
            return phi / np.pi
        if weight == 1:
            return (1.0 - np.cos(phi)) / 2.0
        knots, cdf = self._cdf_tables[weight]
        return np.interp(phi, knots, cdf)

    def _t_to_polar_angle(self, t: np.ndarray, weight: int) -> np.ndarray:
        """Inverse CDF of ``sin**weight``."""
        if weight == 0:
            return t * np.pi
        if weight == 1:
            return np.arccos(1.0 - 2.0 * t)
        knots, cdf = self._cdf_tables[weight]
        return np.interp(t, cdf, knots)

    def transform(self, points: np.ndarray, center) -> tuple[np.ndarray, np.ndarray]:
        """Map points to ``(radius, t)`` around ``center``.

        Points coincident with the centre get radius ``0`` and ``t = 0`` on
        every axis (an arbitrary but deterministic direction).

        :param points: ``(n, d)`` array with ``d == self.dim``.
        :returns: ``(radius, t)`` with shapes ``(n,)`` and ``(n, d-1)``.
        """
        center = np.asarray(center, dtype=np.float64)
        if points.shape[1] != self.dim:
            raise ValueError(
                f"expected {self.dim}-dimensional points, got {points.shape[1]}"
            )
        delta = points - center
        n = delta.shape[0]
        t = np.zeros((n, self.dim - 1), dtype=np.float64)

        if self.dim == 2:
            radius = np.hypot(delta[:, 0], delta[:, 1])
            t[:, 0] = normalize_angle(np.arctan2(delta[:, 1], delta[:, 0])) / TWO_PI
        else:
            # Tail norms: tail[j] = || delta[:, j:] ||. tail[0] is the radius.
            squares = delta * delta
            tail_sq = np.cumsum(squares[:, ::-1], axis=1)[:, ::-1]
            tail = np.sqrt(tail_sq)
            radius = tail[:, 0]
            # Azimuth from the last two coordinates.
            t[:, 0] = (
                normalize_angle(np.arctan2(delta[:, -1], delta[:, -2])) / TWO_PI
            )
            # Polar angles phi_j = atan2(||delta[j+1:]||, delta[j]) in [0, pi].
            for j in range(self.dim - 2):
                phi = np.arctan2(tail[:, j + 1], delta[:, j])
                weight = self.dim - 2 - j
                t[:, 1 + j] = self._polar_angle_to_t(phi, weight)

        # Clip the open end so downstream dyadic binning never sees t == 1.
        np.clip(t, 0.0, np.nextafter(1.0, 0.0), out=t)
        return radius, t

    def direction(self, t: np.ndarray) -> np.ndarray:
        """Unit vectors for measure-uniform coordinates ``t``.

        :param t: ``(n, d-1)`` array with entries in ``[0, 1)``.
        :returns: ``(n, d)`` array of unit vectors.
        """
        t = np.asarray(t, dtype=np.float64)
        if t.ndim != 2 or t.shape[1] != self.dim - 1:
            raise ValueError(
                f"expected t of shape (n, {self.dim - 1}), got {t.shape}"
            )
        n = t.shape[0]
        theta = t[:, 0] * TWO_PI
        if self.dim == 2:
            return np.stack([np.cos(theta), np.sin(theta)], axis=1)

        out = np.empty((n, self.dim), dtype=np.float64)
        sin_prod = np.ones(n, dtype=np.float64)
        for j in range(self.dim - 2):
            weight = self.dim - 2 - j
            phi = self._t_to_polar_angle(t[:, 1 + j], weight)
            out[:, j] = sin_prod * np.cos(phi)
            sin_prod = sin_prod * np.sin(phi)
        out[:, -2] = sin_prod * np.cos(theta)
        out[:, -1] = sin_prod * np.sin(theta)
        return out
