"""Geometric substrate: points, polar transforms, regions and ring segments.

Everything in :mod:`repro.core` consumes coordinates through this package,
so the conventions live here:

* point sets are ``(n, d)`` float64 arrays;
* 2-D polar angles are normalised to ``[0, 2*pi)``;
* d-dimensional directions are expressed in *measure-uniform* coordinates
  ``t in [0, 1)^(d-1)`` (see :mod:`repro.geometry.polar`), which makes
  equal-measure grid cells plain dyadic boxes.
"""

from repro.geometry.points import (
    as_points,
    distances_from,
    pairwise_distances,
    validate_points,
)
from repro.geometry.polar import (
    SphericalTransform,
    angles_to_unit_vectors,
    from_polar,
    normalize_angle,
    to_polar,
)
from repro.geometry.projection import pca_project, project_tree
from repro.geometry.regions import (
    Annulus,
    Ball,
    ConvexPolygon,
    Disk,
    Rectangle,
    smallest_enclosing_annulus,
)
from repro.geometry.rings import RingSegment

__all__ = [
    "Annulus",
    "Ball",
    "ConvexPolygon",
    "Disk",
    "Rectangle",
    "RingSegment",
    "SphericalTransform",
    "angles_to_unit_vectors",
    "as_points",
    "distances_from",
    "from_polar",
    "normalize_angle",
    "pairwise_distances",
    "pca_project",
    "project_tree",
    "smallest_enclosing_annulus",
    "to_polar",
    "validate_points",
]
