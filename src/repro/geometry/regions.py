"""Convex regions: membership tests and uniform sampling.

The paper's asymptotic-optimality result applies to points distributed in
any convex region (Section IV-C). These classes provide the regions the
experiments and workload generators use. Every region supports

* ``contains(points) -> bool array`` — elementwise membership, and
* ``sample(n, rng) -> (n, d) array`` — i.i.d. uniform samples,

with exact inverse-CDF sampling where cheap and rejection sampling from
the bounding box otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.points import distances_from, validate_points

__all__ = [
    "Region",
    "Disk",
    "Ball",
    "Annulus",
    "Rectangle",
    "ConvexPolygon",
    "smallest_enclosing_annulus",
]


def _cross2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Z component of the cross product for arrays of 2-D vectors
    (``numpy.cross`` dropped 2-D support in numpy 2.0)."""
    return a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]


class Region:
    """Interface shared by all regions. Subclasses set :attr:`dim`."""

    dim: int

    def contains(self, points: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def _rejection_sample(
        self,
        n: int,
        rng: np.random.Generator,
        lower: np.ndarray,
        upper: np.ndarray,
        acceptance_floor: float = 1e-3,
    ) -> np.ndarray:
        """Rejection-sample ``n`` points from the box ``[lower, upper]``.

        Batches adaptively on the observed acceptance rate. Raises if the
        region appears to occupy less than ``acceptance_floor`` of its box
        (that would mean the region definition is degenerate, not that we
        should spin forever).
        """
        accepted = []
        total = 0
        drawn = 0
        while total < n:
            # Draw enough that one more batch usually finishes the job.
            rate = max(total / drawn, acceptance_floor) if drawn else 0.5
            batch = int((n - total) / rate * 1.2) + 16
            candidates = rng.uniform(lower, upper, size=(batch, self.dim))
            keep = candidates[self.contains(candidates)]
            accepted.append(keep)
            total += keep.shape[0]
            drawn += batch
            if drawn > 64 and total < drawn * acceptance_floor:
                raise RuntimeError(
                    "rejection sampling acceptance rate below "
                    f"{acceptance_floor}; region is degenerate relative to "
                    "its bounding box"
                )
        return np.concatenate(accepted, axis=0)[:n]


@dataclass(frozen=True)
class Ball(Region):
    """Solid d-dimensional ball. ``Ball(dim=2)`` is the paper's unit disk."""

    dim: int = 2
    center: tuple = None
    radius: float = 1.0

    def __post_init__(self):
        if self.dim < 1:
            raise ValueError("Ball requires dim >= 1")
        if self.radius <= 0:
            raise ValueError("Ball requires a positive radius")
        center = self.center
        if center is None:
            center = (0.0,) * self.dim
        center = tuple(float(c) for c in center)
        if len(center) != self.dim:
            raise ValueError(
                f"center has {len(center)} coordinates, expected {self.dim}"
            )
        object.__setattr__(self, "center", center)

    def contains(self, points: np.ndarray) -> np.ndarray:
        validate_points(points, dim=self.dim)
        return distances_from(points, self.center) <= self.radius

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Exact uniform sampling: Gaussian direction times ``U^(1/d)``."""
        directions = rng.standard_normal((n, self.dim))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        # A standard normal vector is never exactly zero in practice, but
        # guard the division anyway.
        norms[norms == 0.0] = 1.0
        radii = self.radius * rng.random(n) ** (1.0 / self.dim)
        return np.asarray(self.center) + directions / norms * radii[:, None]


def Disk(center=(0.0, 0.0), radius: float = 1.0) -> Ball:
    """The unit-disk region of Sections III and V: a 2-D :class:`Ball`."""
    return Ball(dim=2, center=tuple(center), radius=radius)


@dataclass(frozen=True)
class Annulus(Region):
    """Points between two concentric spheres (``r_inner < |p - c| <= r_outer``)."""

    dim: int = 2
    center: tuple = None
    r_inner: float = 0.5
    r_outer: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.r_inner < self.r_outer:
            raise ValueError("Annulus requires 0 <= r_inner < r_outer")
        center = self.center
        if center is None:
            center = (0.0,) * self.dim
        center = tuple(float(c) for c in center)
        if len(center) != self.dim:
            raise ValueError(
                f"center has {len(center)} coordinates, expected {self.dim}"
            )
        object.__setattr__(self, "center", center)

    def contains(self, points: np.ndarray) -> np.ndarray:
        validate_points(points, dim=self.dim)
        rho = distances_from(points, self.center)
        return (rho > self.r_inner) & (rho <= self.r_outer)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Exact uniform sampling via the radial volume CDF."""
        directions = rng.standard_normal((n, self.dim))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        lo = self.r_inner**self.dim
        hi = self.r_outer**self.dim
        radii = (lo + (hi - lo) * rng.random(n)) ** (1.0 / self.dim)
        return np.asarray(self.center) + directions / norms * radii[:, None]


@dataclass(frozen=True)
class Rectangle(Region):
    """Axis-aligned box in any dimension."""

    lower: tuple = (0.0, 0.0)
    upper: tuple = (1.0, 1.0)
    dim: int = field(init=False, default=2)

    def __post_init__(self):
        lower = tuple(float(c) for c in self.lower)
        upper = tuple(float(c) for c in self.upper)
        if len(lower) != len(upper) or not lower:
            raise ValueError("lower and upper must have equal, positive length")
        if not all(lo < hi for lo, hi in zip(lower, upper)):
            raise ValueError("Rectangle requires lower < upper on every axis")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "dim", len(lower))

    def contains(self, points: np.ndarray) -> np.ndarray:
        validate_points(points, dim=self.dim)
        lower = np.asarray(self.lower)
        upper = np.asarray(self.upper)
        return np.all((points >= lower) & (points <= upper), axis=1)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.lower, self.upper, size=(n, self.dim))


@dataclass(frozen=True)
class ConvexPolygon(Region):
    """Convex polygon in the plane, given by counter-clockwise vertices."""

    vertices: tuple = ()
    dim: int = field(init=False, default=2)

    def __post_init__(self):
        vertices = np.asarray(self.vertices, dtype=np.float64)
        if vertices.ndim != 2 or vertices.shape[1] != 2 or vertices.shape[0] < 3:
            raise ValueError("ConvexPolygon needs >= 3 vertices of shape (m, 2)")
        # Verify convexity and counter-clockwise orientation via cross
        # products of consecutive edges.
        rolled = np.roll(vertices, -1, axis=0)
        rolled2 = np.roll(vertices, -2, axis=0)
        cross = _cross2(rolled - vertices, rolled2 - rolled)
        if np.any(cross < -1e-12):
            raise ValueError(
                "vertices must describe a convex polygon in counter-clockwise order"
            )
        object.__setattr__(self, "vertices", tuple(map(tuple, vertices.tolist())))

    def _vertex_array(self) -> np.ndarray:
        return np.asarray(self.vertices, dtype=np.float64)

    def contains(self, points: np.ndarray) -> np.ndarray:
        validate_points(points, dim=2)
        vertices = self._vertex_array()
        edges = np.roll(vertices, -1, axis=0) - vertices
        # Point is inside iff it is on the left of (or on) every edge.
        rel = points[:, None, :] - vertices[None, :, :]
        cross = edges[None, :, 0] * rel[:, :, 1] - edges[None, :, 1] * rel[:, :, 0]
        return np.all(cross >= -1e-12, axis=1)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Exact uniform sampling via fan triangulation."""
        vertices = self._vertex_array()
        anchor = vertices[0]
        tri_a = vertices[1:-1] - anchor
        tri_b = vertices[2:] - anchor
        areas = 0.5 * np.abs(_cross2(tri_a, tri_b))
        total = areas.sum()
        if total <= 0:
            raise ValueError("polygon has zero area")
        choice = rng.choice(len(areas), size=n, p=areas / total)
        u = rng.random(n)
        v = rng.random(n)
        flip = u + v > 1.0
        u[flip] = 1.0 - u[flip]
        v[flip] = 1.0 - v[flip]
        return anchor + u[:, None] * tri_a[choice] + v[:, None] * tri_b[choice]


def smallest_enclosing_annulus(
    points: np.ndarray, center
) -> tuple[float, float]:
    """Radii ``(r_min, r_max)`` of the smallest annulus centred at ``center``
    containing every point.

    This is the "smallest ring covering all points and centered at the
    source" of Section IV-C. ``r_min`` is zero when a point coincides with
    the centre.
    """
    if points.shape[0] == 0:
        raise ValueError("cannot enclose an empty point set")
    rho = distances_from(points, center)
    return float(rho.min()), float(rho.max())
