"""Ring segments — the cells of the 2-D polar grid and bisection.

A :class:`RingSegment` is the region between two circles around a common
centre, cut by two rays: ``{ (rho, theta) : r_inner < rho <= r_outer,
theta in [theta_start, theta_start + theta_span) }``. The radial interval
is half-open at the bottom so that the segments produced by a split
partition their parent exactly; the innermost region of a grid
(``r_inner == 0``) additionally contains the centre itself.

The angular interval may wrap around ``2*pi`` and may span the full circle
(the grid's inner region D0 does).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geometry.polar import TWO_PI

__all__ = ["RingSegment"]


@dataclass(frozen=True)
class RingSegment:
    """One cell of a polar grid, in polar coordinates around a fixed centre.

    :param r_inner: inner radius (exclusive, unless zero).
    :param r_outer: outer radius (inclusive).
    :param theta_start: start angle in ``[0, 2*pi)``.
    :param theta_span: angular width in ``(0, 2*pi]``.
    """

    r_inner: float
    r_outer: float
    theta_start: float
    theta_span: float

    def __post_init__(self):
        if not 0.0 <= self.r_inner < self.r_outer:
            raise ValueError(
                f"need 0 <= r_inner < r_outer; got [{self.r_inner}, {self.r_outer}]"
            )
        if not 0.0 < self.theta_span <= TWO_PI:
            raise ValueError(f"theta_span must be in (0, 2*pi]; got {self.theta_span}")

    # ------------------------------------------------------------------
    # membership and measurements
    # ------------------------------------------------------------------

    def angle_offset(self, theta) -> np.ndarray:
        """Angle measured from ``theta_start``, wrapped into ``[0, 2*pi)``."""
        return np.mod(np.asarray(theta, dtype=np.float64) - self.theta_start, TWO_PI)

    def contains(self, rho, theta) -> np.ndarray:
        """Elementwise membership test for polar coordinates.

        The centre itself (``rho == 0``) belongs only to segments with
        ``r_inner == 0``.
        """
        rho = np.asarray(rho, dtype=np.float64)
        if self.r_inner == 0.0:
            radial = rho <= self.r_outer
        else:
            radial = (rho > self.r_inner) & (rho <= self.r_outer)
        # A full-circle segment contains every angle.
        if self.theta_span >= TWO_PI:
            return radial
        return radial & (self.angle_offset(theta) < self.theta_span)

    def area(self) -> float:
        """Area of the segment."""
        return 0.5 * self.theta_span * (self.r_outer**2 - self.r_inner**2)

    def outer_arc_length(self) -> float:
        """Length of the outer bounding arc, the paper's ``R * a``."""
        return self.r_outer * self.theta_span

    def radial_extent(self) -> float:
        """``R - r``: the radial thickness of the segment."""
        return self.r_outer - self.r_inner

    def mid_radius(self) -> float:
        """The Euclidean mid radius ``(R + r) / 2`` used by the bisection."""
        return 0.5 * (self.r_inner + self.r_outer)

    def mid_angle_offset(self) -> float:
        """Half the angular span (an *offset* from ``theta_start``)."""
        return 0.5 * self.theta_span

    # ------------------------------------------------------------------
    # splitting (the bisection steps of Section II)
    # ------------------------------------------------------------------

    def split_radius(self) -> tuple["RingSegment", "RingSegment"]:
        """Split by the arc at ``(R + r) / 2`` into (inner, outer) halves."""
        mid = self.mid_radius()
        return (
            replace(self, r_outer=mid),
            replace(self, r_inner=mid),
        )

    def split_angle(self) -> tuple["RingSegment", "RingSegment"]:
        """Split by the bisecting ray into (low-angle, high-angle) halves."""
        half = self.theta_span / 2.0
        start_high = np.mod(self.theta_start + half, TWO_PI)
        return (
            replace(self, theta_span=half),
            replace(self, theta_start=float(start_high), theta_span=half),
        )

    def split4(self) -> tuple["RingSegment", ...]:
        """The four sub-segments of one bisection step.

        Order: (inner/low-angle, outer/low-angle, inner/high-angle,
        outer/high-angle). The two halves sharing an angular half are
        adjacent in the tuple, which the out-degree-2 bisection exploits
        when assigning sub-segments to its two relay points.
        """
        low, high = self.split_angle()
        low_in, low_out = low.split_radius()
        high_in, high_out = high.split_radius()
        return (low_in, low_out, high_in, high_out)

    def quadrant_of(self, rho, theta) -> np.ndarray:
        """Index into :meth:`split4` for points assumed inside the segment.

        Vectorised companion of :meth:`split4`: quadrant =
        ``2 * (angle half) + (radial half)``.
        """
        rho = np.asarray(rho, dtype=np.float64)
        radial_high = rho > self.mid_radius()
        angle_high = self.angle_offset(theta) >= self.mid_angle_offset()
        return 2 * angle_high.astype(np.int64) + radial_high.astype(np.int64)
