"""Point-set helpers shared across the package.

A *point set* is a ``(n, d)`` float64 :class:`numpy.ndarray`. These helpers
centralise validation and the distance computations the tree algorithms
rely on, so that dimension bugs surface with clear messages instead of
numpy broadcasting surprises deep inside a build.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "validate_points",
    "distances_from",
    "pairwise_distances",
    "bounding_box",
]


def as_points(points, dim: int | None = None) -> np.ndarray:
    """Coerce ``points`` into a validated ``(n, d)`` float64 array.

    Accepts anything :func:`numpy.asarray` accepts. A single point of shape
    ``(d,)`` is *not* promoted implicitly — pass ``[point]`` explicitly; the
    ambiguity between "one d-dimensional point" and "d one-dimensional
    points" has bitten enough callers that we refuse to guess.

    :param points: array-like of shape ``(n, d)``.
    :param dim: if given, require exactly this dimensionality.
    :raises ValueError: on wrong shape, non-finite values, or ``dim``
        mismatch.
    """
    array = np.asarray(points, dtype=np.float64)
    return validate_points(array, dim=dim)


def validate_points(points: np.ndarray, dim: int | None = None) -> np.ndarray:
    """Validate an already-numpy point set and return it unchanged.

    :raises ValueError: if ``points`` is not 2-D, has zero columns,
        contains NaN/inf, or does not match ``dim``.
    """
    if points.ndim != 2:
        raise ValueError(
            f"point set must have shape (n, d); got shape {points.shape}"
        )
    if points.shape[1] < 1:
        raise ValueError("point set must have at least one coordinate axis")
    if dim is not None and points.shape[1] != dim:
        raise ValueError(
            f"expected {dim}-dimensional points, got {points.shape[1]}-dimensional"
        )
    if not np.all(np.isfinite(points)):
        raise ValueError("point set contains NaN or infinite coordinates")
    return points


def distances_from(points: np.ndarray, origin) -> np.ndarray:
    """Euclidean distance from every point to a single ``origin``.

    :param points: ``(n, d)`` array.
    :param origin: length-``d`` array-like.
    :returns: ``(n,)`` float64 array.
    """
    origin = np.asarray(origin, dtype=np.float64)
    if origin.shape != (points.shape[1],):
        raise ValueError(
            f"origin has shape {origin.shape}, expected ({points.shape[1]},)"
        )
    return np.sqrt(np.sum((points - origin) ** 2, axis=1))


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` Euclidean distance matrix.

    Quadratic in memory — intended for the embedding substrate and for
    small-n baselines, not for the multi-million-node grid pipeline.
    """
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=2))


def bounding_box(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Axis-aligned bounding box as ``(lower, upper)`` corner arrays."""
    if points.shape[0] == 0:
        raise ValueError("cannot bound an empty point set")
    return points.min(axis=0), points.max(axis=0)
