"""Underlay-aware edge-cost models with congestion feedback.

The paper evaluates trees under *delay = Euclidean distance*. Real
overlays sit on an underlay whose links add fixed per-hop overheads
(switching, packet processing) and whose effective delay grows with
utilization: an M/M/1-shaped queueing penalty makes a link at 90%
utilization roughly 10x slower than an idle one. This module makes the
edge-cost function a pluggable layer so every consumer — builders, the
overlay's rebuild policy, the oracle, the congestion benchmarks — can
evaluate the *same tree* under the paper's model or under a loaded
underlay.

The cost model (following the SDN-controller formulation referenced in
the ROADMAP: cost = prop + switch + proc, scaled by ``1/(1 - U)``)::

    effective(e) = (prop(e) + switch + proc) / (1 - u(e))

where ``prop(e)`` is the Euclidean edge length, ``switch``/``proc`` are
fixed per-hop overheads, and ``u(e)`` is the utilization of the edge,
clipped to ``max_utilization`` so a saturated link stays finite.

Utilization comes from one of two places:

* the **static uplink model** — a member forwarding to ``d`` children
  at offered load ``L`` (stream rate as a fraction of one capacity
  unit) drives its uplink to ``u = d * L / capacity``; every child edge
  of that member sees its parent's uplink utilization
  (:func:`link_utilization`);
* the **measured feed** — :func:`repro.overlay.stream_sim.
  simulate_stream` counts the packets every edge actually carried and
  :meth:`~repro.overlay.stream_sim.StreamReport.uplink_utilization`
  converts those counts into the same per-edge array.

Either way the utilization array is indexed by *child node* (each node
has exactly one parent edge), which keeps the whole layer vectorised:
effective delays are one pointer-doubling pass over the re-weighted
edges (:meth:`~repro.core.tree.MulticastTree.accumulate_to_root`).

Cost models are frozen dataclasses with a canonical ``to_key()`` form,
so they participate in the service's content-addressed cache keys: two
requests for the same cloud under different cost models are different
cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import MulticastTree

__all__ = [
    "CostModel",
    "EuclideanCost",
    "CongestionCost",
    "COST_MODELS",
    "get_cost_model",
    "cost_model_key",
    "effective_delays",
    "effective_radius",
    "inflation_factor",
    "uplink_utilization",
    "edge_utilization",
    "link_utilization",
    "hottest_uplink",
]

#: Default fixed per-hop overheads, in the same unit as the coordinates
#: (the unit-disk experiments have radii near 1, so 0.01 + 0.005 per hop
#: is a small but visible per-hop tax, as on a real forwarding path).
DEFAULT_SWITCH_DELAY = 0.01
DEFAULT_PROC_DELAY = 0.005

#: Utilization ceiling: a saturated link is pinned just below 1 so the
#: ``1/(1-u)`` scaling stays finite (the SDN formulation does the same).
DEFAULT_MAX_UTILIZATION = 0.99


@dataclass(frozen=True)
class CostModel:
    """Base class: maps a tree's parent edges to effective delays.

    Subclasses override :meth:`edge_costs`; everything else (delay
    accumulation, radius, inflation) is generic. Instances are frozen
    and hashable so they can ride inside cache keys and dataclasses.
    """

    #: Registry name; subclasses set their own.
    name = "euclidean"

    def edge_costs(self, tree: MulticastTree, utilization=None) -> np.ndarray:
        """Effective cost of each node's parent edge (0 for the root).

        :param utilization: per-node utilization of each node's parent
            edge (``None`` = idle network). Models that ignore load
            (the base Euclidean model) may disregard it.
        """
        raise NotImplementedError

    def to_key(self) -> dict:
        """Canonical JSON-safe form — the cache-key representation."""
        return {"name": self.name}


@dataclass(frozen=True)
class EuclideanCost(CostModel):
    """The paper's model: delay equals Euclidean distance, load-blind."""

    name = "euclidean"

    def edge_costs(self, tree: MulticastTree, utilization=None) -> np.ndarray:
        """Parent-edge Euclidean lengths, regardless of utilization."""
        return tree.edge_lengths().copy()


@dataclass(frozen=True)
class CongestionCost(CostModel):
    """Propagation + switch + processing delay, scaled by ``1/(1-u)``.

    :param switch_delay: fixed switching overhead per hop.
    :param proc_delay: fixed processing overhead per hop.
    :param max_utilization: clip for the utilization input; keeps the
        queueing factor finite on saturated links.
    """

    switch_delay: float = DEFAULT_SWITCH_DELAY
    proc_delay: float = DEFAULT_PROC_DELAY
    max_utilization: float = DEFAULT_MAX_UTILIZATION

    name = "congestion"

    def __post_init__(self):
        """Reject overheads/ceilings outside their meaningful ranges."""
        if self.switch_delay < 0 or self.proc_delay < 0:
            raise ValueError("per-hop overheads must be non-negative")
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")

    def base_edge_costs(self, tree: MulticastTree) -> np.ndarray:
        """Static (idle-network) per-edge cost: length + fixed overheads."""
        costs = tree.edge_lengths() + (self.switch_delay + self.proc_delay)
        costs = np.asarray(costs, dtype=np.float64).copy()
        costs[tree.root] = 0.0  # the root has no parent edge
        return costs

    def edge_costs(self, tree: MulticastTree, utilization=None) -> np.ndarray:
        """``(prop + switch + proc) / (1 - u)`` per parent edge."""
        costs = self.base_edge_costs(tree)
        if utilization is None:
            return costs
        u = np.asarray(utilization, dtype=np.float64)
        if u.shape != (tree.n,):
            raise ValueError(
                f"utilization must have shape ({tree.n},); got {u.shape}"
            )
        u = np.clip(u, 0.0, self.max_utilization)
        costs /= 1.0 - u
        costs[tree.root] = 0.0
        return costs

    def to_key(self) -> dict:
        """Canonical JSON-safe form — the cache-key representation."""
        return {
            "name": self.name,
            "switch_delay": float(self.switch_delay),
            "proc_delay": float(self.proc_delay),
            "max_utilization": float(self.max_utilization),
        }


#: Registered cost-model names -> constructors (keyword params allowed).
COST_MODELS = {
    "euclidean": EuclideanCost,
    "congestion": CongestionCost,
}


def get_cost_model(spec) -> CostModel:
    """Resolve a cost-model spec into a :class:`CostModel` instance.

    Accepts an instance (returned as-is), a registered name
    (``"euclidean"``, ``"congestion"``), or a dict with a ``"name"``
    key plus constructor keywords — the form :func:`cost_model_key`
    emits, so keys round-trip: ``get_cost_model(cost_model_key(m))``
    reconstructs an equal model.
    """
    if isinstance(spec, CostModel):
        return spec
    if isinstance(spec, str):
        name, params = spec, {}
    elif isinstance(spec, dict):
        params = dict(spec)
        try:
            name = params.pop("name")
        except KeyError:
            raise ValueError(
                "cost-model dicts need a 'name' key; see repro.costmodel"
            ) from None
    else:
        raise TypeError(
            f"cannot resolve a cost model from {type(spec).__name__}; "
            "pass a CostModel, a registered name, or a to_key() dict"
        )
    try:
        factory = COST_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown cost model {name!r}; registered models: "
            + ", ".join(sorted(COST_MODELS))
        ) from None
    return factory(**params)


def cost_model_key(model) -> dict:
    """The canonical JSON-safe identity of a cost model (cache keys)."""
    return get_cost_model(model).to_key()


# ----------------------------------------------------------------------
# effective-delay evaluation
# ----------------------------------------------------------------------


def effective_delays(
    tree: MulticastTree, model=None, utilization=None
) -> np.ndarray:
    """Per-node source-to-receiver delay under a cost model.

    One pointer-doubling pass over the model's re-weighted edges —
    ``O(n log depth)``, same machinery as the Euclidean
    :meth:`~repro.core.tree.MulticastTree.root_delays`.
    """
    model = get_cost_model(model) if model is not None else EuclideanCost()
    return tree.accumulate_to_root(model.edge_costs(tree, utilization))


def effective_radius(tree: MulticastTree, model=None, utilization=None) -> float:
    """Maximum effective source-to-receiver delay (the loaded radius)."""
    if tree.n == 1:
        return 0.0
    return float(effective_delays(tree, model, utilization).max())


def inflation_factor(tree: MulticastTree, model, utilization) -> float:
    """Loaded over idle effective radius: how much congestion hurts.

    1.0 means the offered load costs nothing on the critical path; the
    overlay's congestion-rebuild policy triggers when this crosses its
    threshold. Trees with zero idle radius report 1.0.
    """
    idle = effective_radius(tree, model, None)
    if idle <= 0.0:
        return 1.0
    return effective_radius(tree, model, utilization) / idle


# ----------------------------------------------------------------------
# the static uplink-utilization model
# ----------------------------------------------------------------------


def uplink_utilization(
    tree: MulticastTree, offered_load: float, capacity: float = 8.0
) -> np.ndarray:
    """Per-node utilization of each member's uplink, *unclipped*.

    A member forwarding the stream to ``d`` children sends ``d`` copies:
    ``u = d * offered_load / capacity``. Values may exceed 1 (an
    overcommitted host); cost models clip when scaling. This raw number
    is also the benchmark's **stress** metric — the hottest value is
    :func:`hottest_uplink`.
    """
    if offered_load < 0:
        raise ValueError("offered_load must be non-negative")
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    degrees = tree.out_degrees().astype(np.float64)
    return degrees * (offered_load / capacity)


def edge_utilization(tree: MulticastTree, uplink: np.ndarray) -> np.ndarray:
    """Per-edge utilization from per-node uplink utilization.

    The edge into node ``v`` shares ``parent(v)``'s uplink, so
    ``u_edge[v] = uplink[parent[v]]`` (0 for the root's self-loop).
    """
    uplink = np.asarray(uplink, dtype=np.float64)
    if uplink.shape != (tree.n,):
        raise ValueError(f"uplink must have shape ({tree.n},)")
    u = uplink[tree.parent]
    u = u.copy()
    u[tree.root] = 0.0
    return u


def link_utilization(
    tree: MulticastTree, offered_load: float, capacity: float = 8.0
) -> np.ndarray:
    """Per-edge utilization under the static uplink model."""
    return edge_utilization(
        tree, uplink_utilization(tree, offered_load, capacity)
    )


def hottest_uplink(
    tree: MulticastTree, offered_load: float, capacity: float = 8.0
) -> float:
    """The maximum (unclipped) uplink utilization — the stress metric.

    Grows linearly with offered load at a slope set by the tree's
    largest fan-out; low-degree structures (the Steiner/MST baseline)
    stress their hosts less than budget-filling greedy trees.
    """
    if tree.n == 1:
        return 0.0
    return float(uplink_utilization(tree, offered_load, capacity).max())
