"""repro.obs — zero-dependency structured observability.

Three primitives, all off by default and free when off:

* **trace spans** — ``with obs.span("polar_grid.wire_cells", n=n):``
  nests hierarchically and records monotonic durations (never wall-clock
  timestamps, so recorded data stays deterministic-safe);
* **metrics** — process-wide counters / gauges / histograms
  (``obs.add("overlay.repairs.total")``), snapshot-mergeable across
  process-pool workers;
* **exporters** — a human-readable span tree, a JSON-lines trace file,
  and a flat Prometheus-style text dump (see :mod:`repro.obs.export`).

The module-level enabled flag is the only switch. Instrumented code
never checks it — the helpers here do, and degrade to no-ops costing one
flag test per call (see ``tools/bench_obs.py`` for the measured
disabled-mode overhead, < 2% on a full build).

>>> import repro.obs as obs
>>> obs.reset()
>>> obs.add("demo.events")          # disabled: silently dropped
>>> obs.enable()
>>> with obs.span("demo.phase", n=3):
...     obs.add("demo.events", 2)
>>> obs.snapshot()["demo.events"]["value"]
2.0
>>> [r.name for r in obs.current_records()]
['demo.phase']
>>> obs.reset()                     # back to disabled, state cleared
>>> obs.is_enabled()
False

Worker processes use :func:`capture` to record into a throwaway
registry/collector pair and ship the result home:

>>> obs.enable()
>>> with obs.capture() as cap:      # what run_task_observed does
...     obs.add("demo.trials")
>>> cap.metrics["demo.trials"]["value"]
1.0
>>> obs.absorb(cap.metrics, cap.spans)   # what the parent does
>>> obs.snapshot()["demo.trials"]["value"]
1.0
>>> obs.reset()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.export import (
    format_span_tree,
    prometheus_text,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import summarize_records, summarize_trace
from repro.obs.trace import NOOP_SPAN, SpanRecord, TraceCollector

__all__ = [
    "enable",
    "disable",
    "reset",
    "is_enabled",
    "span",
    "add",
    "observe",
    "set_gauge",
    "snapshot",
    "merge",
    "absorb",
    "current_records",
    "capture",
    "ObsCapture",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TraceCollector",
    "DEFAULT_BUCKETS",
    "format_span_tree",
    "prometheus_text",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "summarize_records",
    "summarize_trace",
]

_ENABLED = False
_registry = MetricsRegistry()
_collector = TraceCollector()


def enable() -> None:
    """Switch observability on (idempotent; state is kept)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Switch observability off; recorded state stays readable."""
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Disable and drop all recorded spans and metrics."""
    global _ENABLED, _registry, _collector
    _ENABLED = False
    _registry = MetricsRegistry()
    _collector = TraceCollector()


def is_enabled() -> bool:
    """Whether spans and metrics are currently being recorded."""
    return _ENABLED


# ----------------------------------------------------------------------
# recording


def span(name: str, **attrs):
    """A context manager timing one named region (no-op when disabled)."""
    if not _ENABLED:
        return NOOP_SPAN
    return _collector.start_span(name, attrs)


def add(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    if _ENABLED:
        _registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    if _ENABLED:
        _registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    if _ENABLED:
        _registry.gauge(name).set(value)


# ----------------------------------------------------------------------
# reading / merging


def snapshot() -> dict:
    """JSON-ready dump of the process-wide metrics registry."""
    return _registry.snapshot()


def merge(metrics_snapshot: dict) -> None:
    """Fold a foreign metrics snapshot into the process-wide registry."""
    _registry.merge(metrics_snapshot)


def current_records() -> list[SpanRecord]:
    """All finished spans recorded so far (collection order)."""
    return list(_collector.records)


def absorb(metrics_snapshot: dict | None, spans=None) -> None:
    """Merge a worker's capture: metrics into the registry, spans under
    the innermost currently-open span."""
    if metrics_snapshot:
        _registry.merge(metrics_snapshot)
    if spans:
        _collector.absorb(spans)


# ----------------------------------------------------------------------
# worker-side capture


@dataclass
class ObsCapture:
    """What one :func:`capture` block recorded, in picklable form."""

    metrics: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)


@contextmanager
def capture():
    """Record into a fresh registry/collector for the block's duration.

    Used by process-pool workers (and the serial engine, for symmetry)
    to isolate one trial's observations: the surrounding global state is
    untouched, and the yielded :class:`ObsCapture` is filled with the
    block's metrics snapshot and span dicts on exit — ready to pickle
    back to the parent, which folds it in with :func:`absorb`.
    Observability is force-enabled inside the block (workers spawned
    fresh have it disabled) and the previous state is restored after.
    """
    global _ENABLED, _registry, _collector
    prev = (_ENABLED, _registry, _collector)
    _ENABLED = True
    _registry = MetricsRegistry()
    _collector = TraceCollector()
    out = ObsCapture()
    try:
        yield out
    finally:
        out.metrics = _registry.snapshot()
        out.spans = [r.to_dict() for r in _collector.records]
        _ENABLED, _registry, _collector = prev
