"""Trace-file summarizer behind ``python -m repro trace-report FILE``.

Aggregates a JSONL trace (see :mod:`repro.obs.export`) into the view
you actually want after a run: where the time went per span name, the
shape of the slowest call trees, and the metrics snapshot if the file
carries one.

>>> from repro.obs.trace import SpanRecord
>>> spans = [
...     SpanRecord(1, None, "build", 0.0, 1.0, {"n": 100}),
...     SpanRecord(2, 1, "build.wire", 0.1, 0.6, {}),
... ]
>>> print(summarize_records(spans).splitlines()[0])
trace: 2 spans, 2 distinct names, root wall time 1.000s
"""

from __future__ import annotations

from repro.obs.export import format_span_tree, prometheus_text, read_trace_jsonl

__all__ = ["summarize_records", "summarize_trace"]


def summarize_records(records, metrics: dict | None = None, top: int = 3) -> str:
    """Render the summary for in-memory span records."""
    records = list(records)
    if not records and not metrics:
        return "trace: empty (no spans, no metrics)"

    by_id = {r.span_id for r in records}
    roots = [r for r in records if r.parent_id not in by_id]
    root_wall = sum(r.duration for r in roots)

    lines = [
        f"trace: {len(records)} spans, "
        f"{len({r.name for r in records})} distinct names, "
        f"root wall time {root_wall:.3f}s"
    ]

    if records:
        stats: dict[str, list[float]] = {}
        for r in records:
            stats.setdefault(r.name, []).append(r.duration)
        lines.append("")
        lines.append("per-name totals (slowest first):")
        header = f"  {'name':<40} {'count':>6} {'total':>10} {'mean':>10} {'max':>10}"
        lines.append(header)
        for name, durs in sorted(
            stats.items(), key=lambda kv: -sum(kv[1])
        ):
            total = sum(durs)
            lines.append(
                f"  {name:<40} {len(durs):>6} {total:>9.3f}s "
                f"{total / len(durs):>9.4f}s {max(durs):>9.4f}s"
            )

        slowest = sorted(roots, key=lambda r: -r.duration)[:top]
        if slowest:
            lines.append("")
            lines.append(f"slowest {len(slowest)} root span(s):")
            for root in slowest:
                subtree = _subtree(records, root)
                tree = format_span_tree(subtree)
                lines.extend("  " + ln for ln in tree.splitlines())

    if metrics:
        lines.append("")
        lines.append("metrics snapshot:")
        lines.extend("  " + ln for ln in prometheus_text(metrics).splitlines())
    return "\n".join(lines)


def _subtree(records, root):
    """``root`` and every descendant, in the original record order."""
    children: dict[int, list] = {}
    for r in records:
        if r.parent_id is not None:
            children.setdefault(r.parent_id, []).append(r)
    keep = []
    stack = [root]
    while stack:
        node = stack.pop()
        keep.append(node)
        stack.extend(children.get(node.span_id, ()))
    order = {id(r): i for i, r in enumerate(records)}
    keep.sort(key=lambda r: order[id(r)])
    return keep


def summarize_trace(path, top: int = 3) -> str:
    """Read a JSONL trace file and render its summary."""
    spans, metrics = read_trace_jsonl(path)
    return summarize_records(spans, metrics, top=top)
