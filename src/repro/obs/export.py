"""Exporters: span tree, JSON-lines trace file, Prometheus text dump.

Three formats, one source of truth (the :class:`~repro.obs.trace.SpanRecord`
list and the registry snapshot dict):

* :func:`format_span_tree` — indentation-rendered call tree for humans;
* :func:`write_trace_jsonl` / :func:`read_trace_jsonl` — one span per
  line plus an optional trailing ``{"type": "metrics", ...}`` line, the
  on-disk format behind ``--trace FILE`` and ``trace-report``;
* :func:`prometheus_text` — the flat ``# TYPE`` / sample-line text
  exposition format, behind ``--metrics``.

>>> from repro.obs.trace import SpanRecord
>>> spans = [SpanRecord(1, None, "build", 0.0, 0.5, {"n": 10})]
>>> print(format_span_tree(spans))
build  500.000ms  n=10
>>> print(prometheus_text({"builds.total": {"kind": "counter", "value": 2}}))
# TYPE repro_builds_total counter
repro_builds_total 2
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = [
    "format_span_tree",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "prometheus_text",
]


def _fmt_value(value) -> str:
    """Compact, deterministic number formatting for text dumps."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return format(value, ".9g")
    return str(value)


def _fmt_attrs(attrs: dict) -> str:
    return " ".join(f"{k}={_fmt_value(v)}" for k, v in attrs.items())


def format_span_tree(records) -> str:
    """Render spans as an indented tree, children in start order.

    Spans whose parent is missing from ``records`` are treated as roots,
    so partial traces (a single captured trial, say) still render.
    """
    records = list(records)
    by_id = {r.span_id: r for r in records}
    children: dict[int | None, list] = {}
    for r in records:
        parent = r.parent_id if r.parent_id in by_id else None
        children.setdefault(parent, []).append(r)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.start, r.span_id))

    lines: list[str] = []

    def walk(record, depth):
        attrs = _fmt_attrs(record.attrs)
        lines.append(
            "  " * depth
            + f"{record.name}  {record.duration * 1e3:.3f}ms"
            + (f"  {attrs}" if attrs else "")
        )
        for child in children.get(record.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


def write_trace_jsonl(records, path, metrics: dict | None = None) -> Path:
    """Write spans (and optionally a metrics snapshot) as JSON lines.

    Creates parent directories. Returns the written path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for r in records:
            payload = r.to_dict() if hasattr(r, "to_dict") else dict(r)
            fh.write(json.dumps(payload) + "\n")
        if metrics is not None:
            fh.write(json.dumps({"type": "metrics", "data": metrics}) + "\n")
    return path


def read_trace_jsonl(path):
    """Parse a trace file back into ``(span_records, metrics_or_None)``."""
    from repro.obs.trace import SpanRecord

    spans: list[SpanRecord] = []
    metrics: dict | None = None
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSON ({exc})"
                ) from exc
            kind = payload.get("type")
            if kind == "span":
                spans.append(SpanRecord.from_dict(payload))
            elif kind == "metrics":
                metrics = payload.get("data")
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown record type {kind!r}"
                )
    return spans, metrics


_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def prometheus_text(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text format.

    Metric names are prefixed ``repro_`` and non-alphanumerics become
    underscores (``engine.trials.completed`` →
    ``repro_engine_trials_completed``). Histograms expand into
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` / ``_min`` / ``_max``.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        payload = snapshot[name]
        kind = payload["kind"]
        prom = _prom_name(name)
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {prom} {kind}")
            lines.append(f"{prom} {_fmt_value(float(payload['value']))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(
                payload["buckets"], payload["bucket_counts"]
            ):
                cumulative += int(count)
                lines.append(
                    f'{prom}_bucket{{le="{_fmt_value(float(bound))}"}} '
                    f"{cumulative}"
                )
            cumulative += int(payload["bucket_counts"][-1])
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {_fmt_value(float(payload['sum']))}")
            lines.append(f"{prom}_count {int(payload['count'])}")
            if payload["count"]:
                lines.append(
                    f"{prom}_min {_fmt_value(float(payload['min']))}"
                )
                lines.append(
                    f"{prom}_max {_fmt_value(float(payload['max']))}"
                )
        else:
            raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
    return "\n".join(lines)
