"""Counters, gauges and histograms in a mergeable process-wide registry.

Three instrument kinds, all write-cheap and lock-free (the experiment
engine parallelises with *processes*, never threads, so plain Python
attribute updates are safe):

* :class:`Counter` — monotonically increasing totals
  (``engine.trials.completed``);
* :class:`Gauge` — last-written value (``fuzz.execs_per_sec``);
* :class:`Histogram` — count / sum / min / max plus cumulative
  ``le``-bucket counts (``engine.trial.seconds``).

A :class:`MetricsRegistry` owns one instrument per name. Registries
serialise to plain-dict *snapshots* and merge snapshots back in, which
is how per-worker observations cross the process boundary: each worker
runs its trial inside :func:`repro.obs.capture`, ships the snapshot home
with the result, and the parent merges it — counters and histograms add,
gauges keep the last value seen.

>>> from repro.obs.metrics import MetricsRegistry
>>> a, b = MetricsRegistry(), MetricsRegistry()
>>> a.counter("trials").inc(3)
>>> b.counter("trials").inc(2)
>>> b.histogram("seconds").observe(0.25)
>>> a.merge(b.snapshot())
>>> a.counter("trials").value
5.0
>>> a.histogram("seconds").count
1
"""

from __future__ import annotations

import bisect

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-flavoured; spans the
#: microsecond no-op to the multi-minute 5M-node build).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        """A zeroed counter called ``name``."""
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def to_dict(self) -> dict:
        """JSON-ready state."""
        return {"value": self.value}

    def merge(self, payload: dict) -> None:
        """Fold a foreign snapshot in: counters add."""
        self.value += float(payload["value"])


class Gauge:
    """A point-in-time value; merge keeps the last value written."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        """A zeroed gauge called ``name``."""
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = float(value)

    def to_dict(self) -> dict:
        """JSON-ready state."""
        return {"value": self.value}

    def merge(self, payload: dict) -> None:
        """Fold a foreign snapshot in: last write wins."""
        self.value = float(payload["value"])


class Histogram:
    """count / sum / min / max plus cumulative ``le`` buckets."""

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS):
        """An empty histogram over cumulative ``le`` bucket bounds."""
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        """Average of the recorded samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready state, bucket layout included."""
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def merge(self, payload: dict) -> None:
        """Fold a foreign snapshot in (bucket layouts must match)."""
        if tuple(payload["buckets"]) != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: bucket bounds differ; "
                "snapshots are only mergeable between identical layouts"
            )
        self.count += int(payload["count"])
        self.sum += float(payload["sum"])
        self.min = min(self.min, float(payload["min"]))
        self.max = max(self.max, float(payload["max"]))
        for i, c in enumerate(payload["bucket_counts"]):
            self.bucket_counts[i] += int(c)


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """One instrument per name; snapshots out, merges in.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create and raise
    if the name already exists with a different kind — a name means one
    thing for the whole process.
    """

    def __init__(self):
        """An empty registry."""
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        return self._get(name, Histogram, buckets=buckets)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def __len__(self) -> int:
        """How many instruments are registered."""
        return len(self._instruments)

    def items(self):
        """(name, instrument) pairs in sorted-name order."""
        return sorted(self._instruments.items())

    def snapshot(self) -> dict:
        """JSON-ready dump: ``{name: {"kind": ..., **state}}``."""
        return {
            name: {"kind": inst.kind, **inst.to_dict()}
            for name, inst in self._instruments.items()
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite."""
        for name, payload in snapshot.items():
            kind = payload.get("kind")
            cls = _KINDS.get(kind)
            if cls is None:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
            if cls is Histogram:
                inst = self._get(
                    name, cls, buckets=tuple(payload["buckets"])
                )
            else:
                inst = self._get(name, cls)
            inst.merge(payload)
