"""Hierarchical trace spans with monotonic timings.

A *span* is a named, timed region of code. Spans nest: entering a span
while another is open makes it a child, so a build shows up as a tree —
``polar_grid.build`` containing ``polar_grid.cell_layout``,
``polar_grid.wire_cells`` and so on. Each span carries free-form
attributes (``n=100_000``, ``rings=12``) and two numbers: ``start``
(seconds since the collector's epoch, a *monotonic* offset, never a wall
clock) and ``duration`` (seconds).

Everything is off by default. :func:`repro.obs.span` returns a shared
no-op object while observability is disabled, so instrumented hot paths
pay one flag check and nothing else.

>>> import repro.obs as obs
>>> obs.reset()
>>> obs.enable()
>>> with obs.span("outer", n=4):
...     with obs.span("inner"):
...         pass
>>> records = obs.current_records()   # end order: children close first
>>> [(r.name, r.parent_id is None) for r in records]
[('inner', False), ('outer', True)]
>>> records[0].parent_id == records[1].span_id
True
>>> obs.reset()
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "TraceCollector", "NoopSpan", "NOOP_SPAN"]


@dataclass
class SpanRecord:
    """One finished span, ready for export.

    ``start`` is measured from the owning collector's epoch with
    ``time.perf_counter`` — a duration, not a timestamp, so traces stay
    deterministic-safe (re-runs differ only in timings, never in
    identity or ordering semantics).
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form (the JSONL exporter writes exactly this)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        """Rebuild a record from its ``to_dict`` payload."""
        return cls(
            span_id=int(payload["id"]),
            parent_id=(
                None if payload.get("parent") is None else int(payload["parent"])
            ),
            name=str(payload["name"]),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            attrs=dict(payload.get("attrs") or {}),
        )


class ActiveSpan:
    """Context manager for one live span. Created by the collector."""

    __slots__ = ("_collector", "_record", "_t0")

    def __init__(self, collector: "TraceCollector", record: SpanRecord):
        """Bind the span to its collector; timing starts at entry."""
        self._collector = collector
        self._record = record
        self._t0 = 0.0

    def set(self, **attrs) -> "ActiveSpan":
        """Attach attributes to the span after entry (chainable)."""
        self._record.attrs.update(attrs)
        return self

    def __enter__(self) -> "ActiveSpan":
        """Start the clock and push the span onto the open stack."""
        self._t0 = time.perf_counter()
        self._record.start = self._t0 - self._collector.epoch
        self._collector._stack.append(self._record.span_id)
        return self

    def __exit__(self, *exc_info) -> bool:
        """Stop the clock and file the finished record."""
        self._record.duration = time.perf_counter() - self._t0
        stack = self._collector._stack
        if stack and stack[-1] == self._record.span_id:
            stack.pop()
        self._collector.records.append(self._record)
        return False


class NoopSpan:
    """The do-nothing span handed out while observability is disabled.

    A single shared instance (:data:`NOOP_SPAN`) keeps the disabled-mode
    cost of ``with obs.span(...)`` to one flag check and two trivial
    method calls — no allocation, no clock reads.
    """

    __slots__ = ()

    def set(self, **attrs) -> "NoopSpan":
        """Discard attributes (chainable, like the real span)."""
        return self

    def __enter__(self) -> "NoopSpan":
        """No-op entry."""
        return self

    def __exit__(self, *exc_info) -> bool:
        """No-op exit; never suppresses exceptions."""
        return False


NOOP_SPAN = NoopSpan()


class TraceCollector:
    """Accumulates finished :class:`SpanRecord` objects in end order.

    Children finish before their parents, so ``records`` lists subtrees
    bottom-up; exporters sort by ``start`` when rendering. The collector
    also tracks the open-span stack that gives new spans their parent.
    """

    def __init__(self):
        """Fresh collector: empty records, epoch pinned to now."""
        self.epoch = time.perf_counter()
        self.records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 1

    def start_span(self, name: str, attrs: dict) -> ActiveSpan:
        """A new live span parented to the innermost open span."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent,
            name=name,
            start=0.0,
            duration=0.0,
            attrs=dict(attrs),
        )
        return ActiveSpan(self, record)

    def current_parent(self) -> int | None:
        """Id of the innermost open span (for absorbing foreign spans)."""
        return self._stack[-1] if self._stack else None

    def absorb(self, spans, parent_id: int | None = None) -> None:
        """Graft externally captured spans (e.g. from a worker process).

        Ids are remapped into this collector's sequence; top-level
        foreign spans are parented under ``parent_id`` (or the innermost
        open span when ``None``), so a worker's trial spans appear under
        the sweep span that dispatched them. Start offsets are kept as
        the worker measured them — they are durations on the worker's
        own clock and are reported as such.
        """
        if parent_id is None:
            parent_id = self.current_parent()
        incoming = [
            span if isinstance(span, SpanRecord) else SpanRecord.from_dict(span)
            for span in spans
        ]
        # Two passes: records arrive in end order (children close before
        # parents), so every id must be remapped before parents resolve.
        remap: dict[int, int] = {}
        for record in incoming:
            remap[record.span_id] = self._next_id
            self._next_id += 1
        for record in incoming:
            self.records.append(
                SpanRecord(
                    span_id=remap[record.span_id],
                    parent_id=remap.get(record.parent_id, parent_id),
                    name=record.name,
                    start=record.start,
                    duration=record.duration,
                    attrs=dict(record.attrs),
                )
            )
