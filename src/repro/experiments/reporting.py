"""ASCII rendering of experiment results: tables and log-x line charts.

The paper's figures are log-x line plots; :func:`ascii_chart` renders the
same series in a terminal so `python -m repro fig5` visibly reproduces
Figure 5 without any plotting dependency.
"""

from __future__ import annotations

import math

__all__ = ["format_table", "ascii_chart"]


def format_table(headers, rows, precision: int = 3) -> str:
    """Render a list of rows as an aligned ASCII table.

    Floats are formatted to ``precision`` decimals; None becomes "-".
    """

    def fmt(value):
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in text_rows)) if text_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(
    xs,
    series: dict[str, list[float]],
    width: int = 72,
    height: int = 18,
    log_x: bool = True,
    y_label: str = "",
) -> str:
    """Plot one or more series against shared x values, ASCII style.

    :param xs: x coordinates (shared by all series).
    :param series: mapping of label -> y values (same length as ``xs``);
        each series gets its own marker character.
    :param log_x: plot against log10(x) (the paper's node-count axes).
    """
    xs = list(xs)
    if not xs or not series:
        raise ValueError("need at least one point and one series")
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {label!r} length mismatch")

    def x_of(value: float) -> float:
        if log_x:
            if value <= 0:
                raise ValueError("log_x requires positive x values")
            return math.log10(value)
        return float(value)

    tx = [x_of(x) for x in xs]
    x_lo, x_hi = min(tx), max(tx)
    all_y = [y for ys in series.values() for y in ys if y is not None]
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    for (label, ys), marker in zip(series.items(), markers):
        for x, y in zip(tx, ys):
            if y is None:
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y_hi - y) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        if i == 0:
            tag = f"{y_hi:8.3f} |"
        elif i == height - 1:
            tag = f"{y_lo:8.3f} |"
        else:
            tag = "         |"
        lines.append(tag + "".join(row))
    lines.append("         +" + "-" * width)
    left = f"{xs[0]:g}"
    right = f"{xs[-1]:g}"
    pad = " " * max(1, width - len(left) - len(right))
    lines.append("          " + left + pad + right)
    legend = "   ".join(
        f"{marker} {label}"
        for (label, _ys), marker in zip(series.items(), markers)
    )
    lines.append("          " + legend)
    return "\n".join(lines)
