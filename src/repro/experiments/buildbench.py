"""Single-build backend benchmark — the profile→optimize→gate loop's gate.

Runs :func:`~repro.core.builder.build_polar_grid_tree` once per backend
on the same point cloud, pulls the per-phase timings out of the
``polar_grid.*`` observability spans, cross-checks that every backend
produced the *identical* tree (parent array and radius), and reports the
wire+delay speedup of the vectorised path over the reference — the
number the acceptance gate in ``tools/bench_build.py`` enforces
(>= 5x at n >= 100,000).

The report is what ``BENCH_build_5m.json`` commits: an honest record of
single-process numbers on the box that ran it (CI runners are 1-CPU-ish;
the committed file's provenance is in its ``host`` block), plus optional
``scale`` entries that take the default backend up to the paper's
Table-I sizes. See docs/PERFORMANCE.md for the workflow around it.
"""

from __future__ import annotations

import os
import time

import numpy as np

import repro.obs as obs
from repro.core.backends import BACKENDS, numba_available, resolve_backend
from repro.core.builder import build_polar_grid_tree
from repro.workloads.generators import unit_ball, unit_disk

__all__ = ["PHASES", "run_build_bench", "speedup_gate_failures"]

PHASES = ("cell_layout", "representatives", "wire_cells", "delay_pass")

# The acceptance gate: vectorised wire_cells+delay_pass must beat the
# reference by this factor once n is large enough for asymptotics to
# show (below that, constant factors dominate and the gate is waived).
SPEEDUP_GATE = 5.0
SPEEDUP_GATE_MIN_N = 100_000


def _points(n: int, dim: int, seed: int) -> np.ndarray:
    if dim == 2:
        return unit_disk(n, seed=seed)
    return unit_ball(n, dim=dim, seed=seed)


def _timed_build(points, degree: int, backend: str):
    """One build under span capture; returns (phase dict, result)."""
    with obs.capture() as cap:
        started = time.perf_counter()
        result = build_polar_grid_tree(points, 0, degree, backend=backend)
        total = time.perf_counter() - started
    phases = dict.fromkeys(PHASES, 0.0)
    for span in cap.spans:
        leaf = span["name"].rsplit(".", 1)[-1]
        if span["name"].startswith("polar_grid.") and leaf in phases:
            phases[leaf] += float(span["duration"])
    return {
        "total_seconds": round(total, 6),
        "phases": {k: round(v, 6) for k, v in phases.items()},
        "radius": result.radius,
        "rings": result.rings,
        "effective_backend": resolve_backend(backend),
    }, result


def run_build_bench(
    n: int = 100_000,
    degree: int = 6,
    dim: int = 2,
    seed: int = 0,
    backends: tuple[str, ...] = BACKENDS,
    scale_sizes: tuple[int, ...] = (),
    log=None,
) -> dict:
    """Benchmark every backend on one cloud; cross-check identical trees.

    :param backends: backend names to time (each runs once, cold).
    :param scale_sizes: extra sizes to run on the default (numpy)
        backend only — the scaling table up to Table-I n.
    :param log: optional ``callable(str)`` for progress lines.
    :returns: the JSON-able report (see module docstring / the committed
        ``BENCH_build_5m.json`` for the schema).
    """
    say = log or (lambda msg: None)
    points = _points(n, dim, seed)
    report = {
        "schema": "bench-build/1",
        "n": int(n),
        "degree": int(degree),
        "dim": int(dim),
        "seed": int(seed),
        "host": {
            "cpus": os.cpu_count() or 1,
            "numba": numba_available(),
        },
        "backends": {},
        "scale": [],
    }
    parents = {}
    for backend in backends:
        say(f"build n={n} backend={backend} ...")
        entry, result = _timed_build(points, degree, backend)
        report["backends"][backend] = entry
        parents[backend] = result.tree.parent
    baseline = backends[0]
    report["identical_trees"] = all(
        np.array_equal(parents[baseline], parents[b]) for b in backends
    ) and len({report["backends"][b]["radius"] for b in backends}) == 1
    for b in backends:
        report["backends"][b]["radius"] = round(
            report["backends"][b]["radius"], 12
        )

    if "reference" in report["backends"]:
        ref = report["backends"]["reference"]
        best = min(
            (b for b in backends if b != "reference"),
            key=lambda b: report["backends"][b]["total_seconds"],
            default=None,
        )
        if best is not None:
            fast = report["backends"][best]
            wd_ref = (
                ref["phases"]["wire_cells"] + ref["phases"]["delay_pass"]
            )
            wd_fast = (
                fast["phases"]["wire_cells"] + fast["phases"]["delay_pass"]
            )
            report["speedup"] = {
                "vs": best,
                "wire_plus_delay": round(wd_ref / max(wd_fast, 1e-9), 3),
                "total": round(
                    ref["total_seconds"]
                    / max(fast["total_seconds"], 1e-9),
                    3,
                ),
            }

    for size in scale_sizes:
        say(f"scale build n={size} backend=numpy ...")
        entry, _ = _timed_build(_points(size, dim, seed), degree, "numpy")
        entry["n"] = int(size)
        report["scale"].append(entry)
    return report


def speedup_gate_failures(report: dict) -> list[str]:
    """The bench gates, as a list of human-readable violations.

    * every backend must have produced the identical tree;
    * at ``n >= 100_000`` (with a reference run present), the vectorised
      ``wire_cells + delay_pass`` must be >= 5x faster than the
      reference.
    """
    failures = []
    if not report.get("identical_trees", False):
        failures.append(
            "backends disagree on the built tree (parent array or radius)"
        )
    speedup = report.get("speedup")
    if report["n"] >= SPEEDUP_GATE_MIN_N and speedup is not None:
        if speedup["wire_plus_delay"] < SPEEDUP_GATE:
            failures.append(
                f"wire_cells+delay_pass speedup {speedup['wire_plus_delay']}x "
                f"< {SPEEDUP_GATE}x at n={report['n']}"
            )
    return failures
