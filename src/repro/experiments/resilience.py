"""Fault-tolerant trial execution: retries, timeouts, crash isolation,
and a crash-safe checkpoint journal.

The paper's Table I sweeps run to 5,000,000 nodes; at that scale a
single worker OOM, hang, or interrupted process must not discard hours
of finished trials. This layer wraps the execution engine of
:mod:`repro.experiments.parallel` with four guarantees:

* **per-trial timeouts** — an attempt that exceeds ``timeout`` seconds
  is abandoned (``SIGALRM`` under the serial backend; pool teardown and
  re-dispatch under the process backend) and counts as a failed attempt;
* **retry with exponential backoff** — a failed attempt is retried up
  to ``retries`` times. Retry seeds are derived as
  ``SeedSequence((base_seed, trial_index, attempt))``, so a retry draws
  a fresh but fully deterministic sample while the seeds of every
  *untouched* trial stay exactly ``base_seed + trial_index``;
* **worker-crash isolation** — when a process-pool worker dies, only
  the trials that were actually lost are re-dispatched (results already
  collected are kept), and repeat offenders are isolated one-at-a-time
  so the crashing trial can be identified and retired;
* **graceful degradation** — a trial that exhausts its retries becomes
  a structured :class:`~repro.experiments.parallel.TrialFailure` row in
  the outcome stream; the sweep continues instead of raising.

On top sits :class:`CheckpointJournal`: an append-only, fsync-per-record
JSON-lines file that lets any sweep be killed (``SIGKILL`` included) and
resumed with ``--resume FILE`` — completed records are replayed
byte-identically, only in-flight trials are recomputed. See
``docs/OPERATIONS.md`` for the operator's guide and the file format.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import os
import signal
import threading
import time
from concurrent import futures as _futures
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.experiments.parallel import (
    ENGINES,
    TrialExecutor,
    TrialFailure,
    TrialTask,
    process_unavailable_reason,
)
from repro.experiments.runner import TrialRecord

__all__ = [
    "ResiliencePolicy",
    "ResilientSerialExecutor",
    "ResilientProcessExecutor",
    "CheckpointJournal",
    "JournalMismatch",
    "make_resilient_executor",
    "retry_seed",
    "trial_key",
]

_MASK64 = (1 << 64) - 1


# ----------------------------------------------------------------------
# Policy and deterministic derivations


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard to fight for each trial before recording a failure.

    ``retries`` is the number of *extra* attempts after the first, so a
    trial runs at most ``retries + 1`` times. ``timeout`` bounds one
    attempt in seconds (``None`` = unbounded). Backoff before attempt
    ``k`` (k >= 1) is ``min(backoff_max, backoff_base *
    backoff_factor**(k-1))`` scaled by a deterministic jitter in
    ``[0.5, 1.5)`` derived from the trial identity — deterministic so a
    replayed campaign waits the same way it did the first time.
    """

    timeout: float | None = None
    retries: int = 0
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0

    def __post_init__(self):
        """Validate ranges at construction time."""
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_seconds(self, task: TrialTask, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (>= 1)."""
        raw = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        rng = np.random.default_rng(
            np.random.SeedSequence(_trial_entropy(task) + (attempt, 0xB0FF))
        )
        return raw * (0.5 + rng.random())


def _trial_entropy(task: TrialTask) -> tuple[int, int]:
    """``(base_seed, trial_index)`` entropy words for a task.

    When the sweep did not stamp a ``trial_index`` the task's own seed
    stands in for the base seed — still deterministic, just not aligned
    with the documented ``(base_seed, trial_index, attempt)`` triple.
    """
    if task.trial_index is not None:
        return ((task.seed - task.trial_index) & _MASK64, task.trial_index)
    return (task.seed & _MASK64, 0)


def retry_seed(task: TrialTask, attempt: int) -> int:
    """Seed for retry ``attempt`` (>= 1) of ``task``.

    Derived as ``SeedSequence((base_seed, trial_index, attempt))`` per
    the determinism contract: a retried trial re-samples with fresh,
    reproducible randomness, and no other trial's seed moves.
    """
    if attempt < 1:
        raise ValueError("attempt 0 runs the original seed; no derivation")
    ss = np.random.SeedSequence(_trial_entropy(task) + (attempt,))
    return int(ss.generate_state(1, dtype=np.uint64)[0])


def attempt_task(task: TrialTask, attempt: int) -> TrialTask:
    """The task to run for a given attempt number.

    Attempt 0 is the task itself (original seed — this is what keeps
    checkpoint replay byte-identical); attempt ``k >= 1`` swaps in the
    derived retry seed and stamps the attempt for observability and
    fault matching.
    """
    if attempt == 0:
        return task
    return dataclasses.replace(
        task, seed=retry_seed(task, attempt), attempt=attempt
    )


def trial_key(task: TrialTask) -> str:
    """The journal key identifying a trial across a whole campaign.

    Non-default builders get a ``:b<name>`` suffix; the default
    (``"polar-grid"``) is left unsuffixed so journals written before the
    builder field existed still replay.
    """
    index = task.trial_index if task.trial_index is not None else task.seed
    key = f"n{task.n}:d{task.max_out_degree}:dim{task.dim}:t{index}"
    if task.builder != "polar-grid":
        key += f":b{task.builder}"
    return key


# ----------------------------------------------------------------------
# Serial backend: SIGALRM timeouts, in-process retries


class _AttemptTimeout(BaseException):
    """Raised by the SIGALRM handler; BaseException so the worker-side
    ``except Exception`` in ``run_task`` cannot swallow it."""


@contextmanager
def _deadline(seconds: float | None):
    """Arm a SIGALRM-based deadline around a block (POSIX main thread).

    Yields ``True`` when the deadline is armed, ``False`` when it cannot
    be (no ``SIGALRM`` on the platform, or not the main thread) — the
    caller then runs unbounded, which is the honest fallback.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield False
        return

    def _on_alarm(signum, frame):
        raise _AttemptTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class ResilientSerialExecutor(TrialExecutor):
    """The serial backend with per-attempt deadlines and retries.

    Timeouts use ``SIGALRM`` (posix, main thread only; elsewhere they
    degrade to unbounded attempts). A crash of the process itself cannot
    be survived in-process — that is the checkpoint journal's job.
    """

    name = "serial-resilient"

    def __init__(
        self,
        policy: ResiliencePolicy,
        fallback_reason: str | None = None,
    ):
        """Wrap the serial loop with ``policy``; ``fallback_reason``
        records why a requested process backend degraded to this."""
        self.policy = policy
        self.fallback_reason = fallback_reason

    def imap(self, tasks, chunksize: int | None = None):
        """Yield one final outcome per task, in task order."""
        fn = self._task_fn()
        for task in tasks:
            yield self._run_one(task, fn)

    def _run_one(self, task: TrialTask, fn):
        """Run one trial to a final outcome (record or exhausted failure)."""
        policy = self.policy
        attempt = 0
        while True:
            current = attempt_task(task, attempt)
            try:
                with _deadline(policy.timeout):
                    outcome = self._unwrap(fn(current))
            except _AttemptTimeout:
                obs.add("resilience.timeouts.total")
                outcome = TrialFailure(
                    task=current,
                    error_type="TrialTimeout",
                    error=f"attempt exceeded {policy.timeout}s",
                )
            if not isinstance(outcome, TrialFailure):
                return outcome
            if outcome.error_type != "TrialTimeout":
                obs.add("resilience.errors.total")
            if attempt >= policy.retries:
                obs.add("resilience.trial_failures.total")
                return dataclasses.replace(outcome, attempts=attempt + 1)
            attempt += 1
            obs.add("resilience.retries.total")
            delay = policy.backoff_seconds(task, attempt)
            obs.observe("resilience.backoff_seconds", delay)
            time.sleep(delay)


# ----------------------------------------------------------------------
# Process backend: crash isolation, pool rebuilds, parallel retries


class ResilientProcessExecutor(TrialExecutor):
    """The process backend with timeouts, retries, and crash isolation.

    Differences from the plain :class:`ProcessExecutor`:

    * tasks are dispatched as individual futures (never chunked), so a
      lost worker loses exactly the trials it was running;
    * a broken pool is rebuilt and only the unfinished trials are
      re-dispatched — results already collected are kept;
    * because a pool break does not say *which* task killed the worker,
      the survivors are re-run one-at-a-time (window of 1) until the set
      drains; a break with a single task in flight is attributable, and
      that task's attempt is charged as a ``WorkerCrash`` failure.
      Innocent trials re-run with their original attempt number and
      seed, so crashes never perturb the results of bystanders;
    * an attempt past its deadline hard-kills the pool (a hung worker
      never returns on its own), charges a ``TrialTimeout`` to exactly
      the overdue trials, and re-dispatches the rest untouched.
    """

    name = "process-resilient"

    def __init__(
        self, policy: ResiliencePolicy, max_workers: int | None = None
    ):
        """Create the pool; ``max_workers`` defaults to all CPUs."""
        self.policy = policy
        self.max_workers = int(max_workers or os.cpu_count() or 1)
        if self.max_workers < 1:
            raise ValueError("max_workers must be positive")
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)

    # -- pool lifecycle ------------------------------------------------

    def _teardown_pool(self, kill: bool = False):
        """Shut the pool down; ``kill`` SIGKILLs workers first (hangs)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            try:  # private attr, guarded: absent => plain shutdown
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.kill()
            except Exception:  # pragma: no cover - platform specific
                pass
        try:
            pool.shutdown(wait=not kill, cancel_futures=True)
        except Exception:  # pragma: no cover - already broken
            pass

    def _rebuild_pool(self, kill: bool = False):
        """Replace a broken/hung pool with a fresh one."""
        self._teardown_pool(kill=kill)
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)

    def close(self):
        """Release the worker pool (idempotent)."""
        self._teardown_pool()

    # -- the dispatch loop ---------------------------------------------

    def imap(self, tasks, chunksize: int | None = None):
        """Yield one final outcome per task, in task order.

        ``chunksize`` is accepted for interface compatibility and
        ignored: resilient dispatch is always one future per trial.
        """
        tasks = list(tasks)
        fn = self._task_fn()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)

        policy = self.policy
        n_tasks = len(tasks)
        failed_attempts = [0] * n_tasks
        final: dict[int, object] = {}
        # (ready_at, index, attempt) — min-heap on the retry-ready time.
        ready: list[tuple[float, int, int]] = [
            (0.0, i, 0) for i in range(n_tasks)
        ]
        heapq.heapify(ready)
        inflight: dict = {}  # future -> (index, attempt, deadline)
        quarantine: set[int] = set()
        next_yield = 0

        def charge_failure(index: int, failure: TrialFailure, counter: str):
            """One attempt of ``index`` failed: retry or finalise."""
            obs.add(counter)
            failed_attempts[index] += 1
            quarantine.discard(index)
            if failed_attempts[index] <= policy.retries:
                obs.add("resilience.retries.total")
                delay = policy.backoff_seconds(
                    tasks[index], failed_attempts[index]
                )
                obs.observe("resilience.backoff_seconds", delay)
                heapq.heappush(
                    ready,
                    (
                        time.monotonic() + delay,
                        index,
                        failed_attempts[index],
                    ),
                )
            else:
                obs.add("resilience.trial_failures.total")
                final[index] = dataclasses.replace(
                    failure, attempts=failed_attempts[index]
                )

        def harvest():
            """Collect every completed future; report pool breakage."""
            victims: list[tuple[int, int]] = []
            for fut in [f for f in inflight if f.done()]:
                index, attempt, _ = inflight.pop(fut)
                try:
                    outcome = self._unwrap(fut.result())
                except BaseException:
                    # BrokenProcessPool / CancelledError: the pool died
                    # under this future. Attribution happens below.
                    victims.append((index, attempt))
                    continue
                if isinstance(outcome, TrialFailure):
                    charge_failure(
                        index, outcome, "resilience.errors.total"
                    )
                else:
                    final[index] = outcome
                    quarantine.discard(index)
            return victims

        while next_yield < n_tasks:
            now = time.monotonic()
            window = 1 if quarantine else self.max_workers

            while ready and len(inflight) < window and ready[0][0] <= now:
                _, index, attempt = heapq.heappop(ready)
                current = attempt_task(tasks[index], attempt)
                try:
                    fut = self._pool.submit(fn, current)
                except Exception:
                    self._rebuild_pool()
                    fut = self._pool.submit(fn, current)
                deadline = now + policy.timeout if policy.timeout else None
                inflight[fut] = (index, attempt, deadline)

            while next_yield < n_tasks and next_yield in final:
                yield final[next_yield]
                next_yield += 1
            if next_yield >= n_tasks:
                break

            if not inflight:
                if ready:
                    time.sleep(max(0.0, ready[0][0] - time.monotonic()))
                continue

            # Block until something completes, a deadline expires, or a
            # backoff timer would free a dispatch slot.
            wait_for = 0.5
            now = time.monotonic()
            deadlines = [dl for (_, _, dl) in inflight.values() if dl]
            if deadlines:
                wait_for = min(wait_for, max(0.0, min(deadlines) - now))
            if ready and len(inflight) < window:
                wait_for = min(wait_for, max(0.0, ready[0][0] - now))
            _futures.wait(
                list(inflight),
                timeout=wait_for,
                return_when=_futures.FIRST_COMPLETED,
            )

            victims = harvest()
            if victims:
                # The pool broke. Rebuild it; whatever else was in
                # flight is lost too and must re-run.
                obs.add("engine.pool_broken.total")
                victims += [
                    (index, attempt)
                    for (index, attempt, _) in inflight.values()
                ]
                inflight.clear()
                self._rebuild_pool()
                if len(victims) == 1:
                    # Sole task in flight: the crash is attributable.
                    index, attempt = victims[0]
                    charge_failure(
                        index,
                        TrialFailure(
                            task=attempt_task(tasks[index], attempt),
                            error_type="WorkerCrash",
                            error="worker process died during this trial",
                        ),
                        "resilience.crashes.total",
                    )
                else:
                    # Unknown culprit: re-run the survivors solo (same
                    # attempt numbers — bystanders keep their seeds).
                    now = time.monotonic()
                    for index, attempt in victims:
                        quarantine.add(index)
                        heapq.heappush(ready, (now, index, attempt))
                continue

            # Deadline sweep: a hung worker never completes on its own,
            # so an overdue attempt costs the whole pool.
            now = time.monotonic()
            overdue = [
                (fut, meta)
                for fut, meta in inflight.items()
                if meta[2] is not None and now >= meta[2] and not fut.done()
            ]
            if overdue:
                bystanders = [
                    (index, attempt)
                    for fut, (index, attempt, _) in inflight.items()
                    if fut not in {f for f, _ in overdue}
                ]
                inflight.clear()
                self._rebuild_pool(kill=True)
                for _, (index, attempt, _) in overdue:
                    charge_failure(
                        index,
                        TrialFailure(
                            task=attempt_task(tasks[index], attempt),
                            error_type="TrialTimeout",
                            error=f"attempt exceeded {policy.timeout}s",
                        ),
                        "resilience.timeouts.total",
                    )
                now = time.monotonic()
                for index, attempt in bystanders:
                    heapq.heappush(ready, (now, index, attempt))


# ----------------------------------------------------------------------
# Selection


def make_resilient_executor(
    engine: str = "auto",
    max_workers: int | None = None,
    policy: ResiliencePolicy | None = None,
) -> TrialExecutor:
    """Build the resilient executor for an ``engine`` knob value.

    Mirrors :func:`repro.experiments.parallel.make_executor`: the same
    engine names, the same graceful degradation to the serial backend
    (with the reason recorded) when a pool cannot help or cannot start.
    """
    policy = policy or ResiliencePolicy()
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}; got {engine!r}")
    if engine == "serial":
        return ResilientSerialExecutor(policy)
    reason = process_unavailable_reason()
    if reason is None:
        try:
            return ResilientProcessExecutor(policy, max_workers=max_workers)
        except (OSError, ImportError) as exc:
            reason = f"process pool failed to start: {exc}"
    obs.add("engine.fallback.total")
    return ResilientSerialExecutor(policy, fallback_reason=reason)


# ----------------------------------------------------------------------
# Checkpoint journal


class JournalMismatch(ValueError):
    """A journal's header does not match the sweep trying to resume it."""


class CheckpointJournal:
    """Append-only JSON-lines checkpoint for kill-and-resume sweeps.

    Layout — one JSON object per line::

        {"type": "header", "version": 1, "params": {...}}
        {"type": "record", "key": "n100:d6:dim2:t0", "record": {...},
         "attempts": 1}
        {"type": "failure", "key": "n100:d6:dim2:t3", "task": {...},
         "error_type": "WorkerCrash", "error": "...", "attempts": 3}

    Every appended line is flushed *and fsynced* before the outcome is
    reported upstream, so a ``SIGKILL`` can lose at most the in-flight
    trials — never a completed record. On load, a torn final line (the
    kill landed mid-write) is tolerated and dropped; corruption anywhere
    else raises. Completed records replay byte-identically: JSON float
    round-tripping is exact, so the reconstructed
    :class:`~repro.experiments.runner.TrialRecord` equals the original.

    ``params`` captures the sweep identity (command, seed, sizes,
    trials); resuming with different parameters raises
    :class:`JournalMismatch` instead of silently mixing campaigns.
    """

    VERSION = 1

    def __init__(self, path, params: dict | None = None):
        """Bind to ``path``; ``params`` is the sweep-identity header."""
        self.path = Path(path)
        self.params = _normalize_params(params)
        self._completed: dict[str, dict] = {}
        self._valid_bytes = 0
        self._fh = None

    # -- lifecycle -----------------------------------------------------

    def open(self) -> "CheckpointJournal":
        """Load any existing journal, validate it, open for append.

        A torn final line (kill landed mid-write) is truncated away
        before the append handle opens — appending after a partial line
        would weld two records onto one line and corrupt the journal
        for the *next* resume.
        """
        if self.path.exists():
            self._load()
            if self._valid_bytes < self.path.stat().st_size:
                with self.path.open("r+b") as fh:
                    fh.truncate(self._valid_bytes)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "type": "header",
                "version": self.VERSION,
                "params": self.params,
            }
            self.path.write_text(json.dumps(header) + "\n")
        self._fh = self.path.open("a")
        return self

    def close(self):
        """Close the append handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        """Open on entry so ``with CheckpointJournal(...) as j:`` works."""
        return self.open()

    def __exit__(self, *exc_info):
        """Close on exit; never suppresses exceptions."""
        self.close()
        return False

    def _load(self):
        """Read the journal, tolerating a torn (killed mid-write) tail.

        Sets ``_valid_bytes`` to the length of the longest prefix made
        of complete, parseable lines; anything past it is the torn tail
        the kill left behind. A final line that parses but has no
        newline is also treated as torn — the writer emits record and
        terminator in one write, so a missing terminator means the
        write never finished.
        """
        raw = self.path.read_bytes()
        if not raw:
            raise ValueError(f"{self.path}: empty checkpoint journal")
        entries = []
        self._valid_bytes = 0
        pos, lineno = 0, 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            terminated = newline != -1
            end = newline + 1 if terminated else len(raw)
            line = raw[pos : end - 1 if terminated else end]
            lineno += 1
            if line.strip():
                if not terminated:
                    break  # torn tail: the kill landed mid-write
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    if end >= len(raw):
                        break  # torn final line
                    raise ValueError(
                        f"{self.path}:{lineno}: corrupt journal line"
                    )
            self._valid_bytes = end
            pos = end
        if not entries or entries[0].get("type") != "header":
            raise JournalMismatch(f"{self.path}: missing journal header")
        header = entries[0]
        if header.get("version") != self.VERSION:
            raise JournalMismatch(
                f"{self.path}: journal version {header.get('version')} "
                f"!= supported {self.VERSION}"
            )
        if self.params is not None:
            recorded = header.get("params")
            if recorded is not None and recorded != self.params:
                raise JournalMismatch(
                    f"{self.path}: journal was written by a different "
                    f"sweep.\n  journal params: {recorded}\n  "
                    f"current params: {self.params}"
                )
        for entry in entries[1:]:
            if entry.get("type") in ("record", "failure"):
                self._completed[entry["key"]] = entry

    # -- reading -------------------------------------------------------

    @property
    def completed_count(self) -> int:
        """How many trials (records + permanent failures) are on disk."""
        return len(self._completed)

    def replay(self, key: str):
        """The stored outcome for ``key``, or ``None`` if not completed.

        Records come back as :class:`TrialRecord`, permanent failures as
        :class:`TrialFailure` — exactly what the executor would yield,
        so resumed and fresh outcomes are indistinguishable downstream.
        """
        entry = self._completed.get(key)
        if entry is None:
            return None
        if entry["type"] == "record":
            return TrialRecord(**entry["record"])
        return TrialFailure(
            task=TrialTask(**entry["task"]),
            error_type=entry["error_type"],
            error=entry["error"],
            attempts=entry.get("attempts", 1),
        )

    # -- writing -------------------------------------------------------

    def record(self, key: str, outcome) -> None:
        """Append one final outcome and force it to stable storage."""
        if self._fh is None:
            raise RuntimeError("journal is not open — call open() first")
        if isinstance(outcome, TrialFailure):
            entry = {
                "type": "failure",
                "key": key,
                "task": asdict(outcome.task),
                "error_type": outcome.error_type,
                "error": outcome.error,
                "attempts": outcome.attempts,
            }
        else:
            entry = {
                "type": "record",
                "key": key,
                "record": asdict(outcome),
                "attempts": 1,
            }
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._completed[key] = entry


def _normalize_params(params: dict | None) -> dict | None:
    """Round-trip params through JSON so tuple/list mismatches cannot
    cause spurious :class:`JournalMismatch` errors."""
    if params is None:
        return None
    return json.loads(json.dumps(params))
