"""Table I: the paper's headline experiment.

For each problem size, average over trials of: the ring count ``k``, the
core delay, the maximum delay, its standard deviation, the equation (7)
bound at ``j = 0``, and the build CPU time — for the out-degree-6 and
out-degree-2 trees on uniform unit-disk inputs with the source at the
centre.

:data:`PAPER_TABLE1` holds the published numbers so harness output can
print measured-vs-paper side by side. CPU seconds are *not* comparable
(Pentium II 400 MHz then, CPython + numpy now); every other column is.
"""

from __future__ import annotations

from repro.experiments.reporting import format_table
from repro.experiments.runner import AggregateRow, aggregate, run_trials

__all__ = ["PAPER_TABLE1", "PAPER_SIZES", "run_table1", "format_table1"]

# Published Table I, keyed by (n, out_degree):
# (rings, core, delay, dev, bound, cpu_seconds)
PAPER_TABLE1 = {
    (100, 6): (3.61, 1.53, 1.852, 0.20, 7.18, 0.002),
    (500, 6): (5.26, 1.22, 1.420, 0.08, 4.92, 0.01),
    (1_000, 6): (6.06, 1.13, 1.302, 0.05, 4.09, 0.02),
    (5_000, 6): (8.01, 1.00, 1.142, 0.02, 2.65, 0.08),
    (10_000, 6): (8.97, 0.99, 1.102, 0.02, 2.20, 0.17),
    (50_000, 6): (11.00, 0.94, 1.049, 0.01, 1.61, 0.96),
    (100_000, 6): (11.98, 0.95, 1.034, 0.00, 1.43, 2.01),
    (500_000, 6): (14.00, 0.92, 1.016, 0.00, 1.22, 11.06),
    (1_000_000, 6): (15.00, 0.93, 1.012, 0.00, 1.15, 22.99),
    (5_000_000, 6): (17.00, 0.91, 1.005, 0.00, 1.08, 132.34),
    (100, 2): (3.61, 2.21, 2.634, 0.31, 10.74, 0.0015),
    (500, 2): (5.26, 1.61, 1.876, 0.15, 6.96, 0.01),
    (1_000, 2): (6.06, 1.40, 1.622, 0.11, 5.66, 0.02),
    (5_000, 2): (8.01, 1.12, 1.285, 0.04, 3.44, 0.08),
    (10_000, 2): (8.97, 1.06, 1.202, 0.03, 2.76, 0.17),
    (50_000, 2): (11.00, 0.98, 1.095, 0.01, 1.88, 1.02),
    (100_000, 2): (11.98, 0.97, 1.067, 0.01, 1.63, 2.13),
    (500_000, 2): (14.00, 0.93, 1.031, 0.00, 1.32, 11.84),
    (1_000_000, 2): (15.00, 0.94, 1.022, 0.00, 1.22, 24.52),
    (5_000_000, 2): (17.00, 0.91, 1.009, 0.00, 1.11, 142.08),
}

PAPER_SIZES = (
    100,
    500,
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
)

# Defaults sized for a laptop run; the paper's full protocol is
# sizes=PAPER_SIZES, trials=200.
DEFAULT_SIZES = (100, 500, 1_000, 5_000, 10_000, 50_000)
DEFAULT_TRIALS = 20


def run_table1(
    sizes=DEFAULT_SIZES,
    trials: int = DEFAULT_TRIALS,
    degrees=(6, 2),
    seed: int = 0,
    engine: str = "serial",
    max_workers: int | None = None,
    resilience=None,
    journal=None,
    failures: list | None = None,
    builder: str = "polar-grid",
) -> list[AggregateRow]:
    """Regenerate Table I.

    :param sizes: problem sizes (the paper used :data:`PAPER_SIZES`).
    :param trials: trials per size (the paper used 200).
    :param degrees: out-degree variants to run (the paper ran 6 and 2).
    :param engine: trial execution backend, ``"serial"``/``"process"``/
        ``"auto"`` (see :mod:`repro.experiments.parallel`); results are
        identical either way.
    :param max_workers: worker-process count for the process engine.
    :param resilience: optional
        :class:`~repro.experiments.resilience.ResiliencePolicy` for
        per-trial timeouts/retries with graceful degradation — a
        configuration whose trials all fail permanently is skipped
        rather than aborting the sweep (its failures land on
        ``failures``).
    :param journal: optional open
        :class:`~repro.experiments.resilience.CheckpointJournal`;
        completed trials are replayed instead of recomputed, making the
        whole sweep kill-and-resume safe (see docs/OPERATIONS.md).
    :param failures: optional list collecting permanent ``TrialFailure``
        rows from a resilient run.
    :param builder: registry name of the tree builder (default
        ``"polar-grid"``); lets the sweep machinery benchmark any
        registered algorithm against the paper's numbers.
    :returns: one :class:`AggregateRow` per (size, degree), sizes outer.
    """
    rows = []
    for n in sizes:
        for degree in degrees:
            records = run_trials(
                n,
                degree,
                trials,
                seed=seed,
                engine=engine,
                max_workers=max_workers,
                resilience=resilience,
                journal=journal,
                failures=failures,
                builder=builder,
            )
            if not records:
                continue  # resilient mode: every trial failed; row skipped
            rows.append(aggregate(records))
    return rows


def format_table1(rows: list[AggregateRow], show_paper: bool = True) -> str:
    """Render measured rows (optionally with the paper's values inline)."""
    headers = [
        "Nodes",
        "Deg",
        "Rings",
        "Core",
        "Delay",
        "Dev",
        "Bound",
        "CPU Sec",
    ]
    if show_paper:
        headers += ["Paper Delay", "Paper Core", "Paper Rings"]
    table = []
    for row in rows:
        line = [
            row.n,
            row.max_out_degree,
            None if row.rings is None else round(row.rings, 2),
            None if row.core_delay is None else round(row.core_delay, 3),
            round(row.delay, 3),
            round(row.delay_std, 3),
            None if row.bound is None else round(row.bound, 3),
            round(row.seconds, 4),
        ]
        if show_paper:
            paper = PAPER_TABLE1.get((row.n, row.max_out_degree))
            if paper is None:
                line += [None, None, None]
            else:
                line += [paper[2], paper[1], paper[0]]
        table.append(line)
    return format_table(headers, table)
