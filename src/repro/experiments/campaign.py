"""Checkpointed experiment campaigns.

The paper-scale protocol (200 trials, sizes to 5,000,000) takes hours;
a crash at hour three must not cost the first two. A
:class:`Campaign` persists every finished trial to disk as it completes
(JSON-lines, one file per configuration) and resumes exactly where it
stopped — re-running a finished campaign is a no-op that just re-reads
the records.

Layout under the campaign directory::

    <dir>/<name>/n<3_size>_d<degree>_dim<dim>.jsonl   per-trial records
    <dir>/<name>/summary.json                         aggregates, rewritten
                                                      after every config

Trials are seeded ``seed + trial_index``, so a resumed campaign produces
bit-identical records to an uninterrupted one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.experiments.runner import (
    AggregateRow,
    TrialRecord,
    aggregate,
    run_trials,
)

__all__ = ["ExperimentSpec", "Campaign"]


@dataclass(frozen=True)
class ExperimentSpec:
    """What a campaign runs: the cross product of sizes and degrees."""

    name: str
    sizes: tuple = (100, 1_000, 10_000)
    degrees: tuple = (6, 2)
    dim: int = 2
    trials: int = 20
    seed: int = 0

    def __post_init__(self):
        if not self.name or "/" in self.name:
            raise ValueError("campaign name must be a non-empty path segment")
        if self.trials < 1:
            raise ValueError("trials must be positive")
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        object.__setattr__(
            self, "degrees", tuple(int(d) for d in self.degrees)
        )

    def configurations(self):
        for n in self.sizes:
            for degree in self.degrees:
                yield n, degree


class Campaign:
    """Run an :class:`ExperimentSpec` with per-trial checkpointing."""

    def __init__(self, spec: ExperimentSpec, directory):
        self.spec = spec
        self.directory = Path(directory) / spec.name
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def _config_path(self, n: int, degree: int) -> Path:
        return self.directory / f"n{n}_d{degree}_dim{self.spec.dim}.jsonl"

    def _load_records(self, n: int, degree: int) -> list[TrialRecord]:
        path = self._config_path(n, degree)
        if not path.exists():
            return []
        records = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            records.append(TrialRecord(**payload))
        return records

    def completed_trials(self, n: int, degree: int) -> int:
        return len(self._load_records(n, degree))

    def status(self) -> dict:
        """Completed/total trial counts per configuration."""
        return {
            f"n={n} degree={degree}": (
                self.completed_trials(n, degree),
                self.spec.trials,
            )
            for n, degree in self.spec.configurations()
        }

    @property
    def finished(self) -> bool:
        return all(
            done >= total for done, total in self.status().values()
        )

    # ------------------------------------------------------------------

    def run(self, progress=None) -> list[AggregateRow]:
        """Run (or resume) every configuration; returns the aggregates.

        :param progress: optional callable receiving one status string
            per completed configuration.
        """
        rows = []
        for n, degree in self.spec.configurations():
            records = self._load_records(n, degree)
            missing = self.spec.trials - len(records)
            if missing > 0:
                path = self._config_path(n, degree)
                with path.open("a") as sink:
                    for trial in range(len(records), self.spec.trials):
                        # One-trial batches keep the checkpoint granular.
                        (record,) = run_trials(
                            n,
                            degree,
                            trials=1,
                            dim=self.spec.dim,
                            seed=self.spec.seed + trial,
                        )
                        sink.write(json.dumps(asdict(record)) + "\n")
                        sink.flush()
                        records.append(record)
            row = aggregate(records[: self.spec.trials])
            rows.append(row)
            self._write_summary(rows)
            if progress is not None:
                progress(
                    f"{self.spec.name}: n={n} degree={degree} "
                    f"delay={row.delay:.4f} ({row.trials} trials)"
                )
        return rows

    def _write_summary(self, rows: list[AggregateRow]):
        payload = {
            "spec": asdict(self.spec),
            "rows": [asdict(row) for row in rows],
        }
        (self.directory / "summary.json").write_text(
            json.dumps(payload, indent=2)
        )

    def summary_rows(self) -> list[AggregateRow]:
        """Aggregates from the persisted summary (after :meth:`run`)."""
        path = self.directory / "summary.json"
        if not path.exists():
            raise FileNotFoundError(
                f"campaign {self.spec.name!r} has no summary yet — run() first"
            )
        payload = json.loads(path.read_text())
        return [AggregateRow(**row) for row in payload["rows"]]
