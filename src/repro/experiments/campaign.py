"""Checkpointed experiment campaigns.

The paper-scale protocol (200 trials, sizes to 5,000,000) takes hours;
a crash at hour three must not cost the first two. A
:class:`Campaign` persists every finished trial to disk as it completes
(JSON-lines, one file per configuration) and resumes exactly where it
stopped — re-running a finished campaign is a no-op that just re-reads
the records.

Layout under the campaign directory::

    <dir>/<name>/n<3_size>_d<degree>_dim<dim>.jsonl   per-trial records
    <dir>/<name>/summary.json                         aggregates, rewritten
                                                      after every config

Trials are seeded ``seed + trial_index``, so a resumed campaign produces
bit-identical records to an uninterrupted one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.experiments.parallel import (
    TrialError,
    TrialFailure,
    TrialTask,
    make_executor,
)
from repro.experiments.runner import AggregateRow, TrialRecord, aggregate

__all__ = ["ExperimentSpec", "Campaign"]


@dataclass(frozen=True)
class ExperimentSpec:
    """What a campaign runs: the cross product of sizes and degrees."""

    name: str
    sizes: tuple = (100, 1_000, 10_000)
    degrees: tuple = (6, 2)
    dim: int = 2
    trials: int = 20
    seed: int = 0

    def __post_init__(self):
        """Validate the spec and normalise sizes/degrees to int tuples."""
        if not self.name or "/" in self.name:
            raise ValueError("campaign name must be a non-empty path segment")
        if self.trials < 1:
            raise ValueError("trials must be positive")
        object.__setattr__(self, "sizes", tuple(int(s) for s in self.sizes))
        object.__setattr__(
            self, "degrees", tuple(int(d) for d in self.degrees)
        )

    def configurations(self):
        """Yield every ``(n, degree)`` cell of the sweep grid."""
        for n in self.sizes:
            for degree in self.degrees:
                yield n, degree


class Campaign:
    """Run an :class:`ExperimentSpec` with per-trial checkpointing."""

    def __init__(self, spec: ExperimentSpec, directory):
        """Bind ``spec`` to its checkpoint directory (created if absent)."""
        self.spec = spec
        self.directory = Path(directory) / spec.name
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def _config_path(self, n: int, degree: int) -> Path:
        return self.directory / f"n{n}_d{degree}_dim{self.spec.dim}.jsonl"

    def _load_records(self, n: int, degree: int) -> list[TrialRecord]:
        path = self._config_path(n, degree)
        if not path.exists():
            return []
        records = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            records.append(TrialRecord(**payload))
        return records

    def completed_trials(self, n: int, degree: int) -> int:
        """How many trials of one configuration are already on disk."""
        return len(self._load_records(n, degree))

    def status(self) -> dict:
        """Completed/total trial counts per configuration."""
        return {
            f"n={n} degree={degree}": (
                self.completed_trials(n, degree),
                self.spec.trials,
            )
            for n, degree in self.spec.configurations()
        }

    @property
    def finished(self) -> bool:
        """Whether every configuration has all its trials checkpointed."""
        return all(
            done >= total for done, total in self.status().values()
        )

    # ------------------------------------------------------------------

    def run(
        self,
        progress=None,
        engine: str = "serial",
        max_workers: int | None = None,
        resilience=None,
    ) -> list[AggregateRow]:
        """Run (or resume) every configuration; returns the aggregates.

        :param progress: optional callable receiving one status string
            per completed configuration.
        :param engine: ``"serial"``, ``"process"``, or ``"auto"`` — how
            trials are executed (see
            :func:`repro.experiments.parallel.make_executor`).
        :param max_workers: worker-process count for the process engine.
        :param resilience: optional
            :class:`~repro.experiments.resilience.ResiliencePolicy`;
            when given, trials run through the resilient executor
            (per-attempt timeouts, deterministic retries, worker-crash
            isolation). A trial that still fails after its retries stops
            that configuration's checkpoint — exactly like a plain
            failure would — so the per-config prefix invariant holds.
        :raises TrialError: if any trial failed. Raised only after every
            configuration was attempted, so one degenerate draw does not
            cost the rest of the campaign; the checkpoint files keep
            every trial completed before the failing one.
        """
        if resilience is not None:
            from repro.experiments.resilience import make_resilient_executor

            executor_cm = make_resilient_executor(
                engine, max_workers, policy=resilience
            )
        else:
            executor_cm = make_executor(engine, max_workers)
        rows = []
        failures: list[TrialFailure] = []
        with executor_cm as executor:
            for n, degree in self.spec.configurations():
                records = self._run_config(executor, n, degree, failures)
                if len(records) < self.spec.trials:
                    continue  # failed mid-config; reported at the end
                row = aggregate(records[: self.spec.trials])
                rows.append(row)
                self._write_summary(rows)
                if progress is not None:
                    progress(
                        f"{self.spec.name}: n={n} degree={degree} "
                        f"delay={row.delay:.4f} ({row.trials} trials)"
                    )
        if failures:
            raise TrialError(failures, completed=rows)
        return rows

    def _run_config(
        self, executor, n: int, degree: int, failures: list
    ) -> list[TrialRecord]:
        """Run one configuration's missing trials, checkpointing each.

        Workers may finish out of order; the executor hands results back
        in *trial* order, and the checkpoint file is appended in that
        order, so the on-disk prefix invariant (line ``i`` holds the
        trial seeded ``seed + i``) survives interrupts and parallelism
        alike. On the first failed trial the config stops checkpointing
        (a gap would corrupt the prefix); a later resume recomputes the
        tail deterministically.
        """
        records = self._load_records(n, degree)
        if len(records) >= self.spec.trials:
            return records
        tasks = [
            TrialTask(
                n=n,
                max_out_degree=degree,
                dim=self.spec.dim,
                seed=self.spec.seed + trial,
                trial_index=trial,
            )
            for trial in range(len(records), self.spec.trials)
        ]
        with self._config_path(n, degree).open("a") as sink:
            # chunksize=1 keeps the checkpoint granular: each record is
            # persisted as soon as its trial (and its predecessors) end.
            for outcome in executor.imap(tasks, chunksize=1):
                if isinstance(outcome, TrialFailure):
                    failures.append(outcome)
                    break
                sink.write(json.dumps(asdict(outcome)) + "\n")
                sink.flush()
                records.append(outcome)
        return records

    def _write_summary(self, rows: list[AggregateRow]):
        payload = {
            "spec": asdict(self.spec),
            "rows": [asdict(row) for row in rows],
        }
        (self.directory / "summary.json").write_text(
            json.dumps(payload, indent=2)
        )

    def summary_rows(self) -> list[AggregateRow]:
        """Aggregates from the persisted summary (after :meth:`run`)."""
        path = self.directory / "summary.json"
        if not path.exists():
            raise FileNotFoundError(
                f"campaign {self.spec.name!r} has no summary yet — run() first"
            )
        payload = json.loads(path.read_text())
        return [AggregateRow(**row) for row in payload["rows"]]
