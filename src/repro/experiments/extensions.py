"""Extension studies beyond the paper's Section V.

Three studies the paper motivates but does not run:

* :func:`degree_sweep` — delay as a function of the fan-out budget
  (the paper only contrasts 2 against 6/10; the sweep shows where the
  extra fan-out stops paying);
* :func:`region_study` — the Section IV-C generality claims measured:
  annuli, rectangles, corner sources, clustered and density-tilted
  populations, each against its own lower bound;
* :func:`algorithm_showdown` — every tree builder in the package on one
  workload: radius, depth and build time side by side.

All return row dictionaries; ``format_rows`` renders them. The
``python -m repro compare`` command and ``benchmarks/test_extensions.py``
drive them.
"""

from __future__ import annotations

import time
from statistics import mean

import numpy as np

from repro.core.registry import build
from repro.experiments.reporting import format_table
from repro.workloads.generators import (
    annulus_points,
    clustered_disk,
    nonuniform_disk,
    rectangle_points,
    unit_disk,
)

__all__ = [
    "degree_sweep",
    "region_study",
    "algorithm_showdown",
    "format_rows",
]


def _lower_bound(points: np.ndarray) -> float:
    """Farthest receiver from the source: unbeatable radius floor."""
    return float(np.linalg.norm(points - points[0], axis=1).max())


def degree_sweep(
    n: int = 10_000,
    degrees=(2, 3, 4, 6, 8, 12, 20),
    trials: int = 5,
    seed: int = 0,
) -> list[dict]:
    """Average radius and depth per fan-out budget on the unit disk.

    Budgets in ``[2, 6)`` run the binary construction (the grid needs
    ``2^d + 2``), so the sweep also shows the construction switch.
    """
    rows = []
    for degree in degrees:
        delays, depths = [], []
        for trial in range(trials):
            points = unit_disk(n, seed=seed + trial)
            result = build(points, 0, "polar-grid", max_out_degree=degree)
            delays.append(result.radius)
            depths.append(int(result.tree.depths().max()))
        rows.append(
            {
                "degree": degree,
                "construction": "full" if degree >= 6 else "binary",
                "delay": mean(delays),
                "max_depth": mean(depths),
            }
        )
    return rows


REGION_WORKLOADS = {
    "disk / centre": lambda n, s: (unit_disk(n, seed=s), {}),
    "annulus (non-convex!)": lambda n, s: (
        annulus_points(n, r_inner=0.6, seed=s),
        {"fit_annulus": True, "occupancy": "connected"},
    ),
    "rectangle / centre": lambda n, s: (
        rectangle_points(n, seed=s),
        {"occupancy": "connected"},
    ),
    "rectangle / corner": lambda n, s: (
        rectangle_points(n, upper=(3.0, 1.0), source=(0.05, 0.05), seed=s),
        {"fit_annulus": True, "occupancy": "connected"},
    ),
    "clustered disk": lambda n, s: (clustered_disk(n, seed=s), {}),
    "tilted density": lambda n, s: (nonuniform_disk(n, tilt=0.8, seed=s), {}),
}


def region_study(
    n: int = 10_000, trials: int = 5, seed: int = 0
) -> list[dict]:
    """The Section IV-C generality claims, measured.

    Each workload reports the average ratio of the built radius to the
    naive lower bound (the farthest receiver) — the number Theorem 2
    says tends to 1 for any *convex* region. The annulus row is a
    deliberate counterpoint: a hole around the source is non-convex, the
    theorem does not apply, and the ratio stays near 2 no matter the
    options — reaching all angular directions at the hole's radius
    genuinely costs chord hops that the naive bound ignores.
    """
    rows = []
    for name, make in REGION_WORKLOADS.items():
        ratios, rings = [], []
        for trial in range(trials):
            points, kwargs = make(n, seed + trial)
            result = build(
                points, 0, "polar-grid", max_out_degree=6, **kwargs
            )
            ratios.append(result.radius / _lower_bound(points))
            rings.append(result.rings)
        rows.append(
            {
                "workload": name,
                "delay_over_bound": mean(ratios),
                "rings": mean(rings),
            }
        )
    return rows


#: ``label -> (registry name, extra params)`` — every row dispatches
#: through :func:`repro.build`, so a newly registered builder only needs
#: one entry here to join the showdown.
ALGORITHMS = {
    "polar-grid deg6": ("polar-grid", {"max_out_degree": 6}),
    "polar-grid deg2": ("polar-grid", {"max_out_degree": 2}),
    "quadtree deg4": ("quadtree", {"max_out_degree": 4}),
    "bisection deg4": ("bisection", {"max_out_degree": 4}),
    "compact-tree deg6": ("compact-tree", {"max_out_degree": 6}),
    "bw-latency deg6": (
        "bandwidth-latency",
        {"max_out_degree": 6, "seed": 0},
    ),
    "capped-star deg6": ("capped-star", {"max_out_degree": 6}),
    "random deg6": ("random", {"max_out_degree": 6, "seed": 0}),
}


def algorithm_showdown(n: int = 5_000, seed: int = 0) -> list[dict]:
    """Every builder on the same disk: radius, depth, seconds."""
    points = unit_disk(n, seed=seed)
    bound = _lower_bound(points)
    rows = []
    for name, (builder, params) in ALGORITHMS.items():
        start = time.perf_counter()
        tree = build(points, 0, builder, **params).tree
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "algorithm": name,
                "radius": tree.radius(),
                "vs_bound": tree.radius() / bound,
                "max_depth": int(tree.depths().max()),
                "seconds": elapsed,
            }
        )
    return rows


def format_rows(rows: list[dict], precision: int = 3) -> str:
    """Render a list of uniform row dicts as an aligned table."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0])
    table = [[row[h] for h in headers] for row in rows]
    return format_table(headers, table, precision=precision)
