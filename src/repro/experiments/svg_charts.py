"""SVG line charts for the reproduced figures (no plotting deps).

The paper's Figures 4-8 are log-x line plots. :mod:`repro.experiments.
reporting` renders them as ASCII for terminals; this module renders the
same :class:`~repro.experiments.figures.FigureData` as standalone SVG —
files you can drop into a paper or a README. Pure string assembly, same
spirit as :mod:`repro.viz`.
"""

from __future__ import annotations

import math
from pathlib import Path

__all__ = ["figure_to_svg", "save_figure_svg"]

# A small colour cycle, ordered for contrast on white.
SERIES_COLORS = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
)
MARKERS = "osd^v*"


def _nice_ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    """Round-number axis ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            raw = step * magnitude
            break
    # Start at or below lo and end at or above hi so the ticks *cover*
    # the data range (the chart's y extent is taken from the ticks).
    first = math.floor(lo / raw) * raw
    ticks = [round(first, 10)]
    t = first
    while t < hi - raw * 1e-9:
        t += raw
        ticks.append(round(t, 10))
    return ticks


def figure_to_svg(
    figure,
    width: int = 640,
    height: int = 420,
) -> str:
    """Render a :class:`FigureData` as an SVG line chart.

    X is log10 when ``figure.log_x``; every series gets a colour, a
    marker and a legend entry. Missing values (None) break the line.
    """
    margin_l, margin_r, margin_t, margin_b = 64, 16, 36, 46
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    xs = list(figure.xs)
    if not xs or not figure.series:
        raise ValueError("figure has no data")

    def tx(value: float) -> float:
        if figure.log_x:
            if value <= 0:
                raise ValueError("log x-axis requires positive x values")
            return math.log10(value)
        return float(value)

    x_vals = [tx(x) for x in xs]
    x_lo, x_hi = min(x_vals), max(x_vals)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    all_y = [
        y
        for ys in figure.series.values()
        for y in ys
        if y is not None
    ]
    y_ticks = _nice_ticks(min(all_y), max(all_y))
    y_lo, y_hi = y_ticks[0], y_ticks[-1]
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def px(value: float) -> float:
        return margin_l + (tx(value) - x_lo) / (x_hi - x_lo) * plot_w

    def py(value: float) -> float:
        return margin_t + (y_hi - value) / (y_hi - y_lo) * plot_h

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-size="14">{figure.name}: {figure.title}</text>',
    ]

    # Gridlines + y labels.
    for tick in y_ticks:
        y = py(tick)
        out.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{width - margin_r}" '
            f'y2="{y:.1f}" stroke="#dddddd"/>'
        )
        out.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{tick:g}</text>'
        )
    # X ticks at the data points (log axes label the decades instead).
    if figure.log_x:
        decade = math.ceil(x_lo)
        while decade <= x_hi:
            x = margin_l + (decade - x_lo) / (x_hi - x_lo) * plot_w
            out.append(
                f'<line x1="{x:.1f}" y1="{margin_t}" x2="{x:.1f}" '
                f'y2="{height - margin_b}" stroke="#eeeeee"/>'
            )
            out.append(
                f'<text x="{x:.1f}" y="{height - margin_b + 16}" '
                f'text-anchor="middle">1e{decade}</text>'
            )
            decade += 1
    else:
        for x_val in xs:
            x = px(x_val)
            out.append(
                f'<text x="{x:.1f}" y="{height - margin_b + 16}" '
                f'text-anchor="middle">{x_val:g}</text>'
            )

    # Axes.
    out.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333333"/>'
    )
    if figure.y_label:
        out.append(
            f'<text x="14" y="{margin_t + plot_h / 2:.0f}" '
            'text-anchor="middle" transform="rotate(-90 14 '
            f'{margin_t + plot_h / 2:.0f})">{figure.y_label}</text>'
        )

    # Series.
    for idx, (label, ys) in enumerate(figure.series.items()):
        color = SERIES_COLORS[idx % len(SERIES_COLORS)]
        segments = []
        current = []
        for x_val, y_val in zip(xs, ys):
            if y_val is None:
                if current:
                    segments.append(current)
                current = []
                continue
            current.append((px(x_val), py(y_val)))
        if current:
            segments.append(current)
        for seg in segments:
            path = " ".join(
                f"{'M' if i == 0 else 'L'}{x:.1f},{y:.1f}"
                for i, (x, y) in enumerate(seg)
            )
            out.append(
                f'<path d="{path}" fill="none" stroke="{color}" '
                'stroke-width="2"/>'
            )
            for x, y in seg:
                out.append(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" '
                    f'fill="{color}"/>'
                )
        # Legend entry.
        ly = margin_t + 14 + idx * 18
        lx = margin_l + 12
        out.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 22}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        out.append(f'<text x="{lx + 28}" y="{ly}">{label}</text>')

    out.append("</svg>")
    return "\n".join(out)


def save_figure_svg(figure, path, **kwargs) -> Path:
    """Render and write a figure; returns the path written."""
    path = Path(path)
    path.write_text(figure_to_svg(figure, **kwargs))
    return path
