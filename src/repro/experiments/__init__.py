"""Experiment harnesses reproducing the paper's evaluation (Section V).

Each table/figure of the paper has a function here that regenerates it:

* :func:`repro.experiments.table1.run_table1` — Table I;
* :func:`repro.experiments.figures.figure4` ... :func:`figure8` — the
  delay/bound, degree-comparison, ring-count, runtime and 3-D plots.

All of them run on reduced sizes/trials by default (the paper used 200
trials up to 5,000,000 nodes on a machine we do not have); pass the
paper's parameters explicitly to reproduce at full scale. See
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments import extensions, figures
from repro.experiments.campaign import Campaign, ExperimentSpec
from repro.experiments.parallel import (
    TrialError,
    TrialFailure,
    TrialTask,
    make_executor,
)
from repro.experiments.resilience import (
    CheckpointJournal,
    ResiliencePolicy,
    make_resilient_executor,
    retry_seed,
    trial_key,
)
from repro.experiments.runner import (
    AggregateRow,
    TrialRecord,
    aggregate,
    run_trials,
)
from repro.experiments.scorecard import Scorecard, run_scorecard
from repro.experiments.table1 import (
    PAPER_TABLE1,
    format_table1,
    run_table1,
)

__all__ = [
    "AggregateRow",
    "Campaign",
    "CheckpointJournal",
    "ExperimentSpec",
    "PAPER_TABLE1",
    "ResiliencePolicy",
    "Scorecard",
    "TrialError",
    "TrialFailure",
    "TrialRecord",
    "TrialTask",
    "extensions",
    "make_executor",
    "make_resilient_executor",
    "retry_seed",
    "run_scorecard",
    "aggregate",
    "figures",
    "format_table1",
    "run_table1",
    "run_trials",
    "trial_key",
]
