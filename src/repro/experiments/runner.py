"""Replicated experiment runner.

One *trial* = sample a point set, build a tree, record the Table I
metrics. One *aggregate row* = the mean/std of those metrics over the
trials of one configuration — exactly what each line of Table I reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, pstdev

__all__ = ["TrialRecord", "AggregateRow", "run_trials", "aggregate"]


@dataclass(frozen=True)
class TrialRecord:
    """Metrics of a single build, mirroring Table I's columns.

    ``rings``, ``core_delay`` and ``bound`` are grid-specific: builders
    without a polar-grid phase (``"compact-tree"``, ``"random"``, ...)
    report ``None`` for them. ``builder`` names the registry entry the
    tree came from.
    """

    n: int
    max_out_degree: int
    dim: int
    rings: int | None
    core_delay: float | None
    delay: float
    bound: float | None
    seconds: float
    builder: str = "polar-grid"


@dataclass(frozen=True)
class AggregateRow:
    """Mean/std over the trials of one (n, degree, dim) configuration.

    The grid-specific columns (``rings``, ``core_delay``, ``bound``)
    are ``None`` when no trial in the configuration reported them.
    """

    n: int
    max_out_degree: int
    dim: int
    trials: int
    rings: float | None
    core_delay: float | None
    delay: float
    delay_std: float
    bound: float | None
    seconds: float
    builder: str = "polar-grid"


def run_trials(
    n: int,
    max_out_degree: int,
    trials: int,
    dim: int = 2,
    seed: int = 0,
    engine: str = "serial",
    max_workers: int | None = None,
    resilience=None,
    journal=None,
    failures: list | None = None,
    builder: str = "polar-grid",
) -> list[TrialRecord]:
    """Run ``trials`` independent builds on fresh uniform samples.

    The workload matches Section V: uniform unit disk for ``dim == 2``
    (Table I, Figures 4-7), uniform unit ball otherwise (Figure 8), with
    the source at the centre. Seeds are ``seed + trial index`` so runs
    are reproducible and trials independent; serial and process engines
    return identical records, in trial order (except the wall-clock
    ``seconds`` field — see :mod:`repro.experiments.parallel`).

    :param engine: ``"serial"``, ``"process"``, or ``"auto"`` — how
        trials are executed (see :func:`make_executor`).
    :param max_workers: worker-process count for the process engine
        (default: ``os.cpu_count()``).
    :param resilience: optional
        :class:`~repro.experiments.resilience.ResiliencePolicy`. When
        given (or when ``journal`` is), trials run through the resilient
        executor: per-attempt timeouts, deterministic retries, and
        **graceful degradation** — a trial that exhausts its retries is
        reported on ``failures`` instead of raising ``TrialError``.
    :param journal: optional open
        :class:`~repro.experiments.resilience.CheckpointJournal`.
        Completed trials found in it are replayed byte-identically
        instead of recomputed; new outcomes are appended as they finish.
    :param failures: optional list that collects the permanent
        :class:`TrialFailure` rows of a resilient run (ignored in the
        classic mode, which raises instead).
    :param builder: registry name of the tree builder (default
        ``"polar-grid"``); see :func:`repro.builder_names`.
    :raises TrialError: only in the classic (non-resilient) mode, if any
        trial raised. Every trial is attempted first; the error lists
        each failing seed and carries the successful records on
        ``.completed``.
    """
    # Imported here: parallel.py needs TrialRecord from this module.
    from repro.experiments.parallel import (
        TrialError,
        TrialFailure,
        TrialTask,
        make_executor,
    )

    if trials < 1:
        raise ValueError("need at least one trial")
    tasks = [
        TrialTask(
            n=n,
            max_out_degree=max_out_degree,
            dim=dim,
            seed=seed + t,
            trial_index=t,
            builder=builder,
        )
        for t in range(trials)
    ]

    if resilience is None and journal is None:
        with make_executor(engine, max_workers) as executor:
            outcomes = executor.map(tasks)
        errors = [o for o in outcomes if isinstance(o, TrialFailure)]
        records = [o for o in outcomes if not isinstance(o, TrialFailure)]
        if errors:
            raise TrialError(errors, completed=records)
        return records

    from repro.experiments.resilience import (
        make_resilient_executor,
        trial_key,
    )

    import repro.obs as obs

    replayed: dict[int, object] = {}
    todo: list[TrialTask] = []
    for task in tasks:
        previous = journal.replay(trial_key(task)) if journal else None
        if previous is not None:
            replayed[task.trial_index] = previous
            obs.add("resilience.resumed.total")
        else:
            todo.append(task)

    fresh: dict[int, object] = {}
    if todo:
        with make_resilient_executor(
            engine, max_workers, policy=resilience
        ) as executor:
            for task, outcome in zip(todo, executor.imap(todo)):
                if journal is not None:
                    journal.record(trial_key(task), outcome)
                fresh[task.trial_index] = outcome

    records = []
    for t in range(trials):
        outcome = replayed.get(t, fresh.get(t))
        if isinstance(outcome, TrialFailure):
            if failures is not None:
                failures.append(outcome)
        else:
            records.append(outcome)
    return records


def aggregate(records: list[TrialRecord]) -> AggregateRow:
    """Collapse one configuration's trials into a Table I row."""
    if not records:
        raise ValueError("cannot aggregate zero records")
    head = records[0]
    for r in records:
        if (r.n, r.max_out_degree, r.dim) != (
            head.n,
            head.max_out_degree,
            head.dim,
        ):
            raise ValueError("records mix configurations")
    delays = [r.delay for r in records]
    rings = [r.rings for r in records if r.rings is not None]
    core_delays = [r.core_delay for r in records if r.core_delay is not None]
    bounds = [r.bound for r in records if r.bound is not None]
    return AggregateRow(
        n=head.n,
        max_out_degree=head.max_out_degree,
        dim=head.dim,
        trials=len(records),
        rings=mean(rings) if rings else None,
        core_delay=mean(core_delays) if core_delays else None,
        delay=mean(delays),
        delay_std=pstdev(delays) if len(delays) > 1 else 0.0,
        bound=mean(bounds) if bounds else None,
        seconds=mean(r.seconds for r in records),
        builder=head.builder,
    )
