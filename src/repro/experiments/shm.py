"""Shared-memory point arrays for the parallel engine.

The classic :class:`~repro.experiments.parallel.TrialTask` protocol
ships only integers — workers regenerate their points from the seed. For
explicit point clouds (externally supplied coordinates, or one cloud
shared by many trials) that protocol would have to pickle the full
``(n, d)`` float64 block to every worker: 80 MB per task at the paper's
n=5,000,000. This module keeps one copy of the block in
:mod:`multiprocessing.shared_memory` instead and ships a
:class:`SharedPointsRef` — a ~100-byte picklable name+shape+dtype
descriptor; workers attach to the segment read-only-by-convention and
build straight from the mapped memory, no copy, no re-pickling.

Usage (publisher side)::

    with shared_points(points) as ref:
        tasks = [TrialTask(..., points_ref=ref) for ...]
        for record in executor.imap(tasks):
            ...

Workers call :func:`attach` (done for them by
:func:`~repro.experiments.parallel.execute_trial`); attachments are
cached per process so a worker pool maps each segment once, however many
trials it runs. The publisher owns the segment's lifetime — exiting the
``shared_points`` block unlinks it, so keep the executor inside.
"""

from __future__ import annotations

import atexit
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

import repro.obs as obs

__all__ = [
    "SharedPointsRef",
    "SharedPoints",
    "shared_points",
    "attach",
    "detach_all",
]


@dataclass(frozen=True)
class SharedPointsRef:
    """Picklable descriptor of a published point block.

    ``name`` keys the OS shared-memory segment; ``shape``/``dtype_str``
    reconstruct the array view. The descriptor is a few hundred bytes
    however large the block is — that is the whole point.
    """

    name: str
    shape: tuple[int, ...]
    dtype_str: str = "float64"

    @property
    def nbytes(self) -> int:
        """Size of the described block in bytes."""
        return int(np.prod(self.shape)) * np.dtype(self.dtype_str).itemsize


class SharedPoints:
    """Publisher handle: owns a shared-memory copy of a point array."""

    def __init__(self, points: np.ndarray):
        """Copy ``points`` into a fresh shared-memory segment."""
        points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        self._shm = shared_memory.SharedMemory(
            create=True, size=points.nbytes
        )
        view = np.ndarray(
            points.shape, dtype=points.dtype, buffer=self._shm.buf
        )
        view[...] = points
        self.ref = SharedPointsRef(
            name=self._shm.name,
            shape=tuple(points.shape),
            dtype_str=str(points.dtype),
        )
        obs.add("engine.shm.published.total")
        obs.observe("engine.shm.published.bytes", points.nbytes)

    def close(self):
        """Release and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass
        self._shm = None

    def __enter__(self):
        """Context-manage the segment's lifetime."""
        return self

    def __exit__(self, *exc_info):
        """Unlink on exit; never suppresses exceptions."""
        self.close()
        return False


@contextmanager
def shared_points(points: np.ndarray):
    """Publish ``points`` for the duration of a ``with`` block.

    Yields the :class:`SharedPointsRef` to stamp onto tasks. The segment
    is unlinked when the block exits, so executors consuming the ref
    must finish inside it.
    """
    holder = SharedPoints(points)
    try:
        yield holder.ref
    finally:
        holder.close()


# Worker-side cache: segment name -> (SharedMemory, ndarray view). One
# mapping per process regardless of how many trials reference it.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def attach(ref: SharedPointsRef) -> np.ndarray:
    """Map a published block into this process and return the view.

    The returned array aliases the shared segment — treat it as
    read-only (builders never mutate their input points). Repeated
    attaches to the same segment are free.
    """
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=ref.name)
    view = np.ndarray(
        tuple(ref.shape), dtype=np.dtype(ref.dtype_str), buffer=shm.buf
    )
    _ATTACHED[ref.name] = (shm, view)
    obs.add("engine.shm.attached.total")
    return view


def detach_all():
    """Drop every cached attachment (worker shutdown / test isolation)."""
    for shm, _view in _ATTACHED.values():
        try:
            shm.close()
        except OSError:  # pragma: no cover - platform-specific teardown
            pass
    _ATTACHED.clear()


atexit.register(detach_all)
