"""Parallel trial execution engine.

The paper's evaluation (Table I, Figures 4-8) is a large grid of
independent trials — every trial rebuilds its point set and tree from
nothing but ``(n, degree, dim, seed)``, so the workload is embarrassingly
parallel. This module supplies the machinery:

* :class:`TrialTask` — the picklable description of one trial;
* :func:`execute_trial` — a **top-level** worker function that rebuilds
  points and tree from the task (top-level so it pickles under both the
  ``fork`` and ``spawn`` start methods);
* :class:`TrialExecutor` with :class:`SerialExecutor` and
  :class:`ProcessExecutor` backends, created through
  :func:`make_executor`;
* :class:`TrialError` — raised *after* every trial has been attempted,
  carrying each failure together with the seed that reproduces it.

Determinism guarantee
---------------------

Trial ``i`` of a run is always seeded ``seed + i`` and always rebuilds
its inputs inside the worker, so serial and process backends produce
identical :class:`~repro.experiments.runner.TrialRecord` streams — same
values, same order (results are yielded in *task* order regardless of
completion order) — for every field except ``seconds``, which is
wall-clock time measured per worker. Tasks carrying a ``points_ref``
build from a :mod:`repro.experiments.shm` shared-memory block instead
of sampling — one copy of the coordinates machine-wide, a ~100-byte
descriptor per task — and stay just as deterministic (the block's
contents are the input).

Fallback policy
---------------

``engine="process"`` degrades gracefully to the serial backend when a
process pool cannot help or cannot start: a single-CPU host
(``os.cpu_count() == 1``), no usable multiprocessing start method, or a
pool that breaks mid-run (the unfinished tasks are recomputed serially —
determinism makes the recomputation exact). :class:`ProcessExecutor` can
still be instantiated directly to force real subprocesses, e.g. to test
picklability on a single-CPU box.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import repro.obs as obs
from repro.core.registry import build
from repro.experiments.runner import TrialRecord
from repro.experiments.shm import SharedPointsRef, attach
from repro.workloads.generators import unit_ball, unit_disk

__all__ = [
    "ENGINES",
    "TrialTask",
    "TrialFailure",
    "TrialError",
    "TrialExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "ObservedOutcome",
    "execute_trial",
    "run_task",
    "run_task_observed",
    "make_executor",
    "process_unavailable_reason",
]

ENGINES = ("auto", "serial", "process")


@dataclass(frozen=True)
class TrialTask:
    """Everything needed to reproduce one trial, and nothing else.

    Workers rebuild the point set and tree from these integers, so the
    task pickles in a few bytes and the result does not depend on which
    worker (or which backend) ran it. ``trial_index`` and ``attempt``
    are bookkeeping for the resilience layer
    (:mod:`repro.experiments.resilience`): they identify the trial's
    position in its sweep and which retry attempt this is. Neither
    influences :func:`execute_trial` — only ``seed`` feeds the RNG.

    ``points_ref`` opts a task out of seed-regeneration: it names a
    block published via :mod:`repro.experiments.shm`, and workers build
    from the shared mapping instead of sampling. The task still pickles
    in a few bytes — the descriptor replaces the coordinates, not the
    other way round. ``n`` and ``dim`` must match the block's shape
    (validated in the worker), and ``seed`` becomes bookkeeping only.
    """

    n: int
    max_out_degree: int
    dim: int
    seed: int
    trial_index: int | None = None
    attempt: int = 0
    builder: str = "polar-grid"
    points_ref: "SharedPointsRef | None" = None


@dataclass(frozen=True)
class TrialFailure:
    """A trial that raised, captured picklably (exceptions may not be).

    ``task.seed`` is the exact seed that reproduces the failure:
    ``execute_trial(task)`` re-raises it deterministically. ``attempts``
    counts how many times the resilience layer tried the trial before
    giving up (1 when resilience is off — there is only the one try).
    """

    task: TrialTask
    error_type: str
    error: str
    attempts: int = 1

    def describe(self) -> str:
        """One-line human-readable account of the failed trial."""
        t = self.task
        return (
            f"trial seed={t.seed} (n={t.n}, degree={t.max_out_degree}, "
            f"dim={t.dim}): {self.error_type}: {self.error}"
        )


class TrialError(RuntimeError):
    """One or more trials failed; raised after every trial was attempted.

    :ivar failures: the :class:`TrialFailure` of each failed trial.
    :ivar completed: the :class:`TrialRecord` of each trial that did
        succeed (in task order), so partial results are not lost.
    """

    def __init__(self, failures, completed=()):
        """Summarise ``failures`` (keeping ``completed`` records)."""
        self.failures = list(failures)
        self.completed = list(completed)
        shown = [f.describe() for f in self.failures[:5]]
        if len(self.failures) > 5:
            shown.append(f"... and {len(self.failures) - 5} more")
        super().__init__(
            f"{len(self.failures)} trial(s) failed "
            f"({len(self.completed)} succeeded):\n  " + "\n  ".join(shown)
        )


def execute_trial(task: TrialTask) -> TrialRecord:
    """Run one trial: sample points, build the tree, record metrics.

    Top-level (module-scope) so :class:`ProcessExecutor` can pickle it.
    The workload matches Section V: uniform unit disk for ``dim == 2``,
    uniform unit ball otherwise, source at the centre. The tree builder
    is resolved by ``task.builder`` through :func:`repro.build`
    (default ``"polar-grid"``); timing (``seconds``) is measured inside
    the build, i.e. per worker. Non-grid builders report ``None`` for
    the grid-specific columns (``rings``, ``core_delay``, ``bound``).
    """
    if os.environ.get("REPRO_FAULTS"):
        # Test-only hook, inert unless the env var is set: the lazy
        # import keeps repro.testing out of the production import graph
        # (the layering exception is documented in ARCHITECTURE.md).
        from repro.testing.faults import maybe_inject

        maybe_inject(task)
    if task.points_ref is not None:
        points = attach(task.points_ref)
        if points.shape != (task.n, task.dim):
            raise ValueError(
                f"shared points block {task.points_ref.name!r} has shape "
                f"{points.shape}, but the task says (n={task.n}, "
                f"dim={task.dim})"
            )
    elif task.dim == 2:
        points = unit_disk(task.n, seed=task.seed)
    else:
        points = unit_ball(task.n, dim=task.dim, seed=task.seed)
    result = build(
        points, 0, task.builder, max_out_degree=task.max_out_degree
    )
    return TrialRecord(
        n=task.n,
        max_out_degree=task.max_out_degree,
        dim=task.dim,
        rings=result.rings,
        core_delay=result.core_delay,
        delay=result.radius,
        bound=result.upper_bound,
        seconds=result.build_seconds,
        builder=task.builder,
    )


def run_task(task: TrialTask) -> TrialRecord | TrialFailure:
    """:func:`execute_trial`, with the failure captured instead of raised.

    Capturing keeps one degenerate draw from aborting a whole campaign:
    the remaining trials still run, and the caller raises a single
    :class:`TrialError` at the end naming every failing seed.
    """
    try:
        return execute_trial(task)
    except Exception as exc:  # noqa: BLE001 — reported via TrialError
        return TrialFailure(
            task=task, error_type=type(exc).__name__, error=str(exc)
        )


@dataclass(frozen=True)
class ObservedOutcome:
    """A trial outcome bundled with the worker's observability capture.

    ``metrics`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    dict and ``spans`` a list of span dicts — both plain JSON-able data,
    so the bundle pickles across the process boundary exactly like the
    bare outcome does. The parent unwraps it in
    :meth:`TrialExecutor.imap`, folding the capture into the
    process-wide registry/trace via :func:`repro.obs.absorb`.
    """

    outcome: TrialRecord | TrialFailure
    metrics: dict
    spans: list


def run_task_observed(task: TrialTask) -> ObservedOutcome:
    """:func:`run_task` inside an isolated observability capture.

    Top-level so it pickles. Used (by both backends, for symmetry) when
    the parent process has observability enabled: the worker records the
    trial's spans and metrics into a throwaway registry — workers
    spawned fresh have observability *disabled* globally, and
    :func:`repro.obs.capture` force-enables it only for the trial — and
    ships the serialized capture home with the result.
    """
    with obs.capture() as cap:
        with obs.span(
            "engine.trial",
            n=task.n,
            degree=task.max_out_degree,
            dim=task.dim,
            seed=task.seed,
        ):
            outcome = run_task(task)
        obs.add("engine.trials.total")
        if isinstance(outcome, TrialFailure):
            obs.add("engine.trials.failed")
        else:
            obs.observe("engine.trial.seconds", outcome.seconds)
    return ObservedOutcome(
        outcome=outcome, metrics=cap.metrics, spans=cap.spans
    )


# ----------------------------------------------------------------------
# Executors


class TrialExecutor:
    """Runs :class:`TrialTask` batches; results come back in task order."""

    name = "abstract"

    @staticmethod
    def _task_fn():
        """The worker function for this batch.

        Checked at ``imap`` time: with observability enabled the
        observed wrapper runs instead, so every worker's trial spans and
        metric increments come home with its results.
        """
        return run_task_observed if obs.is_enabled() else run_task

    @staticmethod
    def _unwrap(outcome):
        """Fold an observed outcome's capture in; pass others through."""
        if isinstance(outcome, ObservedOutcome):
            obs.absorb(outcome.metrics, outcome.spans)
            return outcome.outcome
        return outcome

    def imap(self, tasks, chunksize: int | None = None):
        """Yield one outcome per task, in task order, as they finish."""
        raise NotImplementedError

    def map(self, tasks, chunksize: int | None = None) -> list:
        """All outcomes at once, in task order."""
        return list(self.imap(tasks, chunksize=chunksize))

    def close(self):
        """Release worker resources (idempotent)."""

    def __enter__(self):
        """Support ``with make_executor(...) as ex:`` usage."""
        return self

    def __exit__(self, *exc_info):
        """Close on exit; never suppresses exceptions."""
        self.close()
        return False


class SerialExecutor(TrialExecutor):
    """The in-process backend: a plain loop, no pickling, no workers."""

    name = "serial"

    def __init__(self, fallback_reason: str | None = None):
        """Record why a requested process backend degraded (or None)."""
        self.fallback_reason = fallback_reason

    def imap(self, tasks, chunksize: int | None = None):
        """Yield one outcome per task, in order (``chunksize`` unused)."""
        fn = self._task_fn()
        for task in tasks:
            yield self._unwrap(fn(task))


class ProcessExecutor(TrialExecutor):
    """The multi-core backend, on :class:`ProcessPoolExecutor`.

    Tasks are distributed over ``max_workers`` subprocesses; results are
    yielded in task order regardless of completion order (that is what
    ``ProcessPoolExecutor.map`` guarantees). If the pool breaks mid-run
    the unfinished tail is recomputed serially — trials are pure
    functions of their task, so the recomputation is byte-identical.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None):
        """Start the pool; ``max_workers`` defaults to all CPUs."""
        self.max_workers = int(max_workers or os.cpu_count() or 1)
        if self.max_workers < 1:
            raise ValueError("max_workers must be positive")
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)

    def imap(self, tasks, chunksize: int | None = None):
        """Yield outcomes in task order, fanning out over the pool."""
        tasks = list(tasks)
        if chunksize is None:
            # A few chunks per worker amortises pickling at small n
            # while keeping the pool load-balanced at large n.
            chunksize = max(1, len(tasks) // (self.max_workers * 4))
        fn = self._task_fn()
        observing = fn is run_task_observed
        done = 0
        waited = time.perf_counter()
        try:
            for outcome in self._pool.map(fn, tasks, chunksize=chunksize):
                done += 1
                if observing:
                    # Parent-side stall per result: how long the main
                    # process sat blocked before this record arrived.
                    now = time.perf_counter()
                    obs.observe("engine.result.wait_seconds", now - waited)
                    waited = now
                yield self._unwrap(outcome)
        except Exception:
            # Pool infrastructure failure (BrokenProcessPool, a worker
            # killed by the OOM killer, ...) — task-level exceptions
            # never escape run_task. Finish the tail in-process.
            obs.add("engine.pool_broken.total")
            for task in tasks[done:]:
                yield self._unwrap(fn(task))

    def close(self):
        """Shut the worker pool down, waiting for stragglers."""
        self._pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Selection


def process_unavailable_reason() -> str | None:
    """Why a process pool would not help here, or ``None`` if it would.

    Mirrors the fallback policy in the module docstring: a single CPU
    makes worker processes pure overhead, and a platform without any
    multiprocessing start method cannot host a pool at all. Setting the
    ``REPRO_FORCE_PROCESS_ENGINE`` environment variable bypasses the
    single-CPU check — used by the interruption-smoke harness so real
    worker processes exist to crash and kill even on one-core boxes.
    """
    if os.environ.get("REPRO_FORCE_PROCESS_ENGINE"):
        return None
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        return "single CPU (os.cpu_count() <= 1)"
    try:
        if not multiprocessing.get_all_start_methods():
            return "no multiprocessing start method available"
    except Exception as exc:  # pragma: no cover - exotic platforms
        return f"multiprocessing unavailable: {exc}"
    return None


def make_executor(
    engine: str = "auto", max_workers: int | None = None
) -> TrialExecutor:
    """Build the executor for an ``engine`` knob value.

    * ``"serial"`` — always the in-process loop.
    * ``"process"`` — a process pool, degrading to serial (with the
      reason recorded on :attr:`SerialExecutor.fallback_reason`) when a
      pool cannot help or cannot start.
    * ``"auto"`` — ``"process"`` when it would help, else ``"serial"``.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}; got {engine!r}")
    if engine == "serial":
        return SerialExecutor()
    reason = process_unavailable_reason()
    if reason is None:
        try:
            return ProcessExecutor(max_workers=max_workers)
        except (OSError, ImportError) as exc:
            reason = f"process pool failed to start: {exc}"
    obs.add("engine.fallback.total")
    return SerialExecutor(fallback_reason=reason)
