"""Offered-load sweeps and the congestion-rebuild gate (BENCH_congestion).

The congestion scenario family: evaluate the same trees under the
utilization-scaled cost model of :mod:`repro.costmodel` across a range
of offered loads, compare builders with opposite degree profiles
(budget-filling polar-grid and compact-tree vs the low-fan-out Steiner
baseline), and exercise the :class:`~repro.overlay.dynamic.
DynamicOverlay` congestion-rebuild trigger on seeded churn + load
traces. Everything here is deterministic — seeded clouds, closed-form
utilization, no timings — so the committed ``BENCH_congestion.json``
re-gates bit-for-bit (within float tolerance) on any machine.

Three deliverables:

* :func:`run_congestion_sweep` — the report behind
  ``python -m repro bench-congestion`` / ``tools/bench_congestion.py``;
* :func:`congestion_figures` — radius-vs-load and stress-vs-load
  figures (``FIG_congestion_radius.svg``, ``FIG_congestion_stress.svg``);
* :func:`congestion_gate_failures` — the CI gate over the report.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis.oracle import check_tree
from repro.costmodel import (
    cost_model_key,
    effective_radius,
    get_cost_model,
    hottest_uplink,
    link_utilization,
)
from repro.experiments.figures import FigureData
from repro.overlay.dynamic import DynamicOverlay
from repro.workloads import LOAD_PROFILES, generate_load_trace, unit_disk

__all__ = [
    "DEFAULT_BUILDERS",
    "DEFAULT_LOADS",
    "run_congestion_sweep",
    "congestion_rebuild_demo",
    "replay_load_profile",
    "congestion_figures",
    "congestion_gate_failures",
]

SCHEMA = "bench-congestion/1"

#: Offered loads swept (fraction of one uplink capacity unit per copy).
DEFAULT_LOADS = (0.0, 0.2, 0.4, 0.6, 0.8)

#: Builders compared: the paper's algorithm, the greedy min-delay
#: heuristic, and the low-fan-out Steiner/MST baseline.
DEFAULT_BUILDERS = ("polar-grid", "compact-tree", "steiner")

#: Inflation threshold used by the rebuild demo and profile replays —
#: comfortably above what light load causes on a churned tree, and
#: comfortably below what heavy load causes (verified by the gate).
DEMO_THRESHOLD = 1.4


def _churned_overlay(
    seed: int, degree: int, congestion_threshold: float | None, cost_model
) -> DynamicOverlay:
    """A deterministically churn-degraded overlay (no auto rebuilds).

    120 joins, then three waves of 25 leaves + 25 joins — enough greedy
    maintenance that the loaded effective radius visibly inflates.
    """
    rng = np.random.default_rng(seed)
    overlay = DynamicOverlay(
        np.zeros(2),
        max_out_degree=degree,
        rebuild_threshold=None,
        congestion_threshold=congestion_threshold,
        cost_model=cost_model,
    )
    for i in range(120):
        overlay.join(f"m{i}", rng.normal(size=2))
    for wave in range(3):
        for i in range(wave * 30, wave * 30 + 25):
            overlay.leave(f"m{i}")
        for i in range(120 + wave * 25, 145 + wave * 25):
            overlay.join(f"m{i}", rng.normal(size=2))
    return overlay


def congestion_rebuild_demo(
    seed: int = 23,
    degree: int = 6,
    offered_load: float = 0.9,
    threshold: float = DEMO_THRESHOLD,
    cost_model="congestion",
) -> dict:
    """One end-to-end congestion-triggered rebuild, oracle-validated.

    Churn-degrade an overlay, observe a heavy load, and report what the
    trigger did. The default seed is chosen so the make-before-break
    rebuild actually adopts a better tree (the gate asserts it).
    """
    model = get_cost_model(cost_model)
    overlay = _churned_overlay(seed, degree, threshold, model)
    receipt = overlay.observe_load(offered_load)
    tree = overlay.tree()
    report = check_tree(
        tree,
        d_max=degree,
        cost_model=model,
        utilization=link_utilization(tree, offered_load, overlay.capacity),
    )
    return {
        "seed": seed,
        "degree": degree,
        "offered_load": offered_load,
        "threshold": threshold,
        "inflation": receipt.inflation,
        "triggered": receipt.triggered,
        "rebuilt": receipt.rebuilt,
        "radius_before": receipt.radius_before,
        "radius_after": receipt.radius_after,
        "oracle_ok": report.ok,
    }


def replay_load_profile(
    profile: str,
    seed: int = 23,
    degree: int = 6,
    threshold: float = DEMO_THRESHOLD,
    cost_model="congestion",
) -> dict:
    """Replay a named offered-load profile through the rebuild trigger.

    The overlay is churn-degraded once up front (static membership
    during the replay), then each window's load goes through
    :meth:`~repro.overlay.dynamic.DynamicOverlay.observe_load`. Every
    adopted rebuild is oracle-validated under the scaled cost model at
    that window's load.
    """
    if profile not in LOAD_PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; known: "
            + ", ".join(sorted(LOAD_PROFILES))
        )
    model = get_cost_model(cost_model)
    overlay = _churned_overlay(seed, degree, threshold, model)
    loads = generate_load_trace(**LOAD_PROFILES[profile])
    max_inflation = 0.0
    oracle_ok = True
    for load in loads:
        receipt = overlay.observe_load(float(load))
        max_inflation = max(max_inflation, receipt.inflation)
        if receipt.rebuilt:
            tree = overlay.tree()
            report = check_tree(
                tree,
                d_max=degree,
                cost_model=model,
                utilization=link_utilization(
                    tree, float(load), overlay.capacity
                ),
            )
            oracle_ok = oracle_ok and report.ok
    return {
        "profile": profile,
        "windows": int(loads.size),
        "triggers": overlay.congestion_triggers,
        "rebuilds": overlay.congestion_rebuilds,
        "max_inflation": max_inflation,
        "oracle_ok": oracle_ok,
    }


def run_congestion_sweep(
    n: int = 600,
    degree: int = 6,
    seed: int = 0,
    loads=DEFAULT_LOADS,
    builders=DEFAULT_BUILDERS,
    capacity: float = 8.0,
    cost_model="congestion",
    log=None,
) -> dict:
    """Sweep offered loads over one cloud for every builder.

    For each builder: one build (Table-I unit-disk cloud, source at the
    centre), then per load the effective radius under the scaled cost
    model (static uplink utilization) and the stress (hottest unclipped
    uplink). Each tree is oracle-validated under the heaviest load.
    """
    log = log or (lambda msg: None)
    if not loads:
        raise ValueError("need at least one load")
    loads = tuple(float(x) for x in loads)
    if any(x < 0 for x in loads) or list(loads) != sorted(loads):
        raise ValueError("loads must be non-negative and ascending")
    model = get_cost_model(cost_model)
    points = unit_disk(n, seed=seed)

    per_builder = {}
    for name in builders:
        result = repro.build(points, 0, name, max_out_degree=degree)
        tree = result.tree
        radii = [
            effective_radius(
                tree, model, link_utilization(tree, load, capacity)
            )
            for load in loads
        ]
        stresses = [hottest_uplink(tree, load, capacity) for load in loads]
        heaviest = link_utilization(tree, loads[-1], capacity)
        oracle = check_tree(
            tree, d_max=degree, cost_model=model, utilization=heaviest
        )
        per_builder[name] = {
            "radius": radii,
            "stress": stresses,
            "idle_radius": effective_radius(tree, model, None),
            "euclidean_radius": tree.radius(),
            "max_out_degree": tree.max_out_degree(),
            "oracle_ok": oracle.ok,
        }
        log(
            f"{name}: idle {per_builder[name]['idle_radius']:.3f}, "
            f"loaded({loads[-1]}) {radii[-1]:.3f}, "
            f"maxdeg {per_builder[name]['max_out_degree']}, "
            f"oracle {'ok' if oracle.ok else 'FAILED'}"
        )

    log("rebuild demo + profile replays...")
    return {
        "schema": SCHEMA,
        "n": n,
        "degree": degree,
        "seed": seed,
        "capacity": capacity,
        "cost_model": cost_model_key(model),
        "loads": list(loads),
        "builders": per_builder,
        "rebuild_demo": congestion_rebuild_demo(
            degree=degree, cost_model=model
        ),
        "profiles": {
            name: replay_load_profile(name, degree=degree, cost_model=model)
            for name in sorted(LOAD_PROFILES)
        },
    }


def congestion_figures(report: dict) -> list[FigureData]:
    """Radius-vs-load and stress-vs-load from a sweep report."""
    loads = report["loads"]
    return [
        FigureData(
            name="congestion_radius",
            title=(
                f"Effective radius vs offered load "
                f"(n = {report['n']}, degree {report['degree']})"
            ),
            xs=loads,
            series={
                name: entry["radius"]
                for name, entry in report["builders"].items()
            },
            y_label="effective radius",
            log_x=False,
        ),
        FigureData(
            name="congestion_stress",
            title=(
                f"Hottest uplink utilization vs offered load "
                f"(n = {report['n']}, capacity {report['capacity']})"
            ),
            xs=loads,
            series={
                name: entry["stress"]
                for name, entry in report["builders"].items()
            },
            y_label="max uplink utilization",
            log_x=False,
        ),
    ]


def congestion_gate_failures(report: dict) -> list[str]:
    """Every gate the committed BENCH_congestion.json must satisfy."""
    failures: list[str] = []
    if report.get("schema") != SCHEMA:
        failures.append(
            f"schema is {report.get('schema')!r}, expected {SCHEMA!r}"
        )
        return failures

    loads = report["loads"]
    builders = report["builders"]
    if "steiner" not in builders or len(builders) < 3:
        failures.append(
            "report must compare polar-grid against >= 2 baselines "
            "including 'steiner'"
        )
    for name, entry in builders.items():
        radii = entry["radius"]
        if any(b < a - 1e-9 for a, b in zip(radii, radii[1:])):
            failures.append(
                f"{name}: effective radius is not monotone in offered load"
            )
        if loads and loads[0] == 0.0:
            if abs(radii[0] - entry["idle_radius"]) > 1e-9:
                failures.append(
                    f"{name}: radius at load 0 differs from the idle radius"
                )
        if not entry["oracle_ok"]:
            failures.append(f"{name}: oracle validation failed")
        stress = entry["stress"]
        if any(b < a - 1e-12 for a, b in zip(stress, stress[1:])):
            failures.append(f"{name}: stress is not monotone in offered load")

    demo = report["rebuild_demo"]
    if not demo["triggered"]:
        failures.append("rebuild demo: heavy load did not trigger")
    if not demo["rebuilt"]:
        failures.append("rebuild demo: trigger did not adopt a rebuild")
    if demo["radius_after"] > demo["radius_before"] + 1e-12:
        failures.append(
            "rebuild demo: loaded radius did not drop after the rebuild"
        )
    if not demo["oracle_ok"]:
        failures.append("rebuild demo: oracle validation failed")

    profiles = report["profiles"]
    if profiles.get("light", {}).get("triggers", 1) != 0:
        failures.append("light profile must never trigger the rebuild")
    if profiles.get("heavy", {}).get("triggers", 0) < 1:
        failures.append("heavy profile must trigger the rebuild")
    for name, entry in profiles.items():
        if not entry.get("oracle_ok", False):
            failures.append(
                f"profile {name}: a rebuild failed oracle validation"
            )
    return failures
