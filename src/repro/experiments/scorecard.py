"""The reproduction scorecard: measured vs published, with a verdict.

Runs a (reduced) Table I sweep and grades every comparable column
against the published numbers: relative error for delays and cores,
absolute error for ring counts. CPU seconds are reported but ungraded
(different hardware). ``python -m repro scorecard`` prints the result;
the benchmark suite asserts the grade thresholds.

Grading thresholds (per cell):

* delay, core: within 15 % of the published mean *or* within three
  published standard deviations — Table I's "Dev" column is the paper's
  own statement of run-to-run spread;
* rings: within 1.0 of the published average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.experiments.runner import aggregate, run_trials
from repro.experiments.table1 import PAPER_TABLE1

__all__ = ["CellScore", "Scorecard", "run_scorecard"]

DELAY_REL_TOL = 0.15
RINGS_ABS_TOL = 1.0


@dataclass(frozen=True)
class CellScore:
    """One (n, degree) cell's comparison."""

    n: int
    degree: int
    measured_delay: float
    paper_delay: float
    measured_core: float
    paper_core: float
    measured_rings: float
    paper_rings: float
    paper_dev: float
    passed: bool

    def delay_error(self) -> float:
        """Relative error of the measured delay vs the paper's value."""
        return abs(self.measured_delay - self.paper_delay) / self.paper_delay

    def core_error(self) -> float:
        """Relative error of the measured core delay vs the paper's."""
        return abs(self.measured_core - self.paper_core) / self.paper_core


@dataclass
class Scorecard:
    """Graded paper-vs-measured comparison, one cell per Table I row."""

    cells: list

    @property
    def passed(self) -> bool:
        """Whether every cell is within its tolerance band."""
        return all(cell.passed for cell in self.cells)

    def worst_delay_error(self) -> float:
        """The largest relative delay error across all cells."""
        return max(cell.delay_error() for cell in self.cells)

    def render(self) -> str:
        """The scorecard as an aligned text table with verdicts."""
        headers = [
            "n",
            "deg",
            "delay",
            "paper",
            "err%",
            "core",
            "paper",
            "rings",
            "paper",
            "grade",
        ]
        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.n,
                    cell.degree,
                    round(cell.measured_delay, 3),
                    cell.paper_delay,
                    round(100 * cell.delay_error(), 1),
                    round(cell.measured_core, 3),
                    cell.paper_core,
                    round(cell.measured_rings, 2),
                    cell.paper_rings,
                    "PASS" if cell.passed else "FAIL",
                ]
            )
        verdict = (
            "REPRODUCED: every graded cell within tolerance"
            if self.passed
            else "NOT REPRODUCED: some cells out of tolerance"
        )
        return format_table(headers, rows) + "\n\n" + verdict


def _grade(measured, paper_delay, paper_core, paper_rings, paper_dev):
    delay_ok = (
        abs(measured.delay - paper_delay) / paper_delay <= DELAY_REL_TOL
        or abs(measured.delay - paper_delay) <= 3 * max(paper_dev, 1e-9)
    )
    core_ok = abs(measured.core_delay - paper_core) / paper_core <= max(
        DELAY_REL_TOL, 3 * paper_dev / paper_core if paper_core else 0.0
    )
    rings_ok = abs(measured.rings - paper_rings) <= RINGS_ABS_TOL
    return delay_ok and core_ok and rings_ok


def run_scorecard(
    sizes=(100, 1_000, 10_000),
    trials: int = 10,
    degrees=(6, 2),
    seed: int = 0,
) -> Scorecard:
    """Measure and grade the requested Table I cells.

    :raises KeyError: if a requested (size, degree) has no published row.
    """
    cells = []
    for n in sizes:
        for degree in degrees:
            paper = PAPER_TABLE1[(n, degree)]
            p_rings, p_core, p_delay, p_dev, _bound, _cpu = paper
            measured = aggregate(run_trials(n, degree, trials, seed=seed))
            cells.append(
                CellScore(
                    n=n,
                    degree=degree,
                    measured_delay=measured.delay,
                    paper_delay=p_delay,
                    measured_core=measured.core_delay,
                    paper_core=p_core,
                    measured_rings=measured.rings,
                    paper_rings=p_rings,
                    paper_dev=p_dev,
                    passed=_grade(measured, p_delay, p_core, p_rings, p_dev),
                )
            )
    return Scorecard(cells=cells)
