"""Figures 4-8 of the paper, as data series plus ASCII renderings.

Figures 4-7 are different projections of the Table I sweep (delay vs
bounds, degree comparison, ring counts, runtimes); Figure 8 repeats the
delay experiment in the three-dimensional unit sphere with out-degrees
10 and 2. Each ``figureN`` function returns a :class:`FigureData` whose
``render()`` draws the paper's plot as an ASCII chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import ascii_chart, format_table
from repro.experiments.runner import AggregateRow, aggregate, run_trials

__all__ = [
    "FigureData",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "save_all_figures",
    "sweep",
]

DEFAULT_SIZES = (100, 500, 1_000, 5_000, 10_000, 50_000)
DEFAULT_TRIALS = 10
DEFAULT_SIZES_3D = (100, 500, 1_000, 5_000, 10_000, 50_000)


@dataclass
class FigureData:
    """One reproduced figure: x values, named series, and labels."""

    name: str
    title: str
    xs: list
    series: dict = field(default_factory=dict)
    y_label: str = ""
    log_x: bool = True

    def render(self, width: int = 72, height: int = 18) -> str:
        """The figure as an ASCII chart with its caption line."""
        chart = ascii_chart(
            self.xs,
            self.series,
            width=width,
            height=height,
            log_x=self.log_x,
            y_label=self.y_label,
        )
        return f"{self.name}: {self.title}\n{chart}"

    def table(self) -> str:
        """The underlying series as an aligned text table."""
        headers = ["n"] + list(self.series)
        rows = [
            [x] + [self.series[label][i] for label in self.series]
            for i, x in enumerate(self.xs)
        ]
        return format_table(headers, rows)


def sweep(
    sizes=DEFAULT_SIZES,
    trials: int = DEFAULT_TRIALS,
    degrees=(6, 2),
    dim: int = 2,
    seed: int = 0,
    engine: str = "serial",
    max_workers: int | None = None,
    resilience=None,
    journal=None,
    failures: list | None = None,
    builder: str = "polar-grid",
) -> dict[tuple[int, int], AggregateRow]:
    """Run the Section V sweep once; figures 4-7 all read from it.

    :param engine: trial execution backend (``"serial"``/``"process"``/
        ``"auto"``, see :mod:`repro.experiments.parallel`).
    :param resilience: optional
        :class:`~repro.experiments.resilience.ResiliencePolicy`
        (timeouts/retries with graceful degradation); a configuration
        whose trials all fail permanently is omitted from the mapping.
    :param journal: optional open
        :class:`~repro.experiments.resilience.CheckpointJournal` for
        kill-and-resume sweeps (see docs/OPERATIONS.md).
    :param failures: optional list collecting permanent ``TrialFailure``
        rows from a resilient run.
    :param builder: registry name of the tree builder (default
        ``"polar-grid"``); see :func:`repro.builder_names`.
    :returns: mapping ``(n, degree) -> AggregateRow``.
    """
    out = {}
    for n in sizes:
        for degree in degrees:
            records = run_trials(
                n,
                degree,
                trials,
                dim=dim,
                seed=seed,
                engine=engine,
                max_workers=max_workers,
                resilience=resilience,
                journal=journal,
                failures=failures,
                builder=builder,
            )
            if not records:
                continue  # resilient mode: every trial failed permanently
            out[(n, degree)] = aggregate(records)
    return out


def _sizes_of(results, degree):
    return sorted(n for (n, d) in results if d == degree)


def figure4(
    results=None,
    sizes=DEFAULT_SIZES,
    trials=DEFAULT_TRIALS,
    seed=0,
    engine="serial",
    max_workers=None,
    resilience=None,
    journal=None,
    failures=None,
    builder="polar-grid",
):
    """Figure 4: average maximum delay vs the eq. (7) bound and the core
    delay, for the out-degree-6 tree."""
    if results is None:
        results = sweep(
            sizes,
            trials,
            degrees=(6,),
            seed=seed,
            engine=engine,
            max_workers=max_workers,
            resilience=resilience,
            journal=journal,
            failures=failures,
            builder=builder,
        )
    xs = _sizes_of(results, 6)
    rows = [results[(n, 6)] for n in xs]
    return FigureData(
        name="Figure 4",
        title="Average maximum delay compared to bounds (out-degree 6)",
        xs=xs,
        series={
            "bound eq.(7)": [r.bound for r in rows],
            "max delay": [r.delay for r in rows],
            "core delay": [r.core_delay for r in rows],
        },
        y_label="delay (unit-disk radii)",
    )


def figure5(
    results=None,
    sizes=DEFAULT_SIZES,
    trials=DEFAULT_TRIALS,
    seed=0,
    engine="serial",
    max_workers=None,
    resilience=None,
    journal=None,
    failures=None,
    builder="polar-grid",
):
    """Figure 5: average maximum delay, out-degree 2 vs out-degree 6."""
    if results is None:
        results = sweep(
            sizes,
            trials,
            degrees=(6, 2),
            seed=seed,
            engine=engine,
            max_workers=max_workers,
            resilience=resilience,
            journal=journal,
            failures=failures,
            builder=builder,
        )
    xs = _sizes_of(results, 6)
    return FigureData(
        name="Figure 5",
        title="Average maximum delay for out-degrees 2 and 6",
        xs=xs,
        series={
            "out-degree 2": [results[(n, 2)].delay for n in xs],
            "out-degree 6": [results[(n, 6)].delay for n in xs],
        },
        y_label="longest delay",
    )


def figure6(
    results=None,
    sizes=DEFAULT_SIZES,
    trials=DEFAULT_TRIALS,
    seed=0,
    engine="serial",
    max_workers=None,
    resilience=None,
    journal=None,
    failures=None,
    builder="polar-grid",
):
    """Figure 6: average number of rings k in the grid vs n.

    The paper reads the straight line on the log axis as the logarithmic
    growth implied by eq. (5), ``k >= (1/2) log2 n``.
    """
    if results is None:
        results = sweep(
            sizes,
            trials,
            degrees=(6,),
            seed=seed,
            engine=engine,
            max_workers=max_workers,
            resilience=resilience,
            journal=journal,
            failures=failures,
            builder=builder,
        )
    xs = _sizes_of(results, 6)
    return FigureData(
        name="Figure 6",
        title="Average number of rings in the polar grid",
        xs=xs,
        series={"rings k": [results[(n, 6)].rings for n in xs]},
        y_label="rings",
    )


def figure7(
    results=None,
    sizes=DEFAULT_SIZES,
    trials=DEFAULT_TRIALS,
    seed=0,
    engine="serial",
    max_workers=None,
    resilience=None,
    journal=None,
    failures=None,
    builder="polar-grid",
):
    """Figure 7: algorithm running time vs n (near-linear growth)."""
    if results is None:
        results = sweep(
            sizes,
            trials,
            degrees=(6, 2),
            seed=seed,
            engine=engine,
            max_workers=max_workers,
            resilience=resilience,
            journal=journal,
            failures=failures,
            builder=builder,
        )
    xs = _sizes_of(results, 6)
    return FigureData(
        name="Figure 7",
        title="Algorithm running time",
        xs=xs,
        series={
            "out-degree 6 (s)": [results[(n, 6)].seconds for n in xs],
            "out-degree 2 (s)": [results[(n, 2)].seconds for n in xs],
        },
        y_label="build seconds",
    )


def save_all_figures(
    directory,
    sizes=DEFAULT_SIZES,
    sizes_3d=DEFAULT_SIZES_3D,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
    progress=None,
    engine: str = "serial",
    max_workers: int | None = None,
    resilience=None,
    journal=None,
    failures: list | None = None,
    builder: str = "polar-grid",
) -> list:
    """Regenerate Figures 4-8 into ``directory`` as SVG + ASCII text.

    Runs the 2-D sweep once (figures 4-7 are projections of it) and the
    3-D sweep once (figure 8). Returns the list of written paths.

    :param progress: optional callable for status lines.
    :param resilience: optional
        :class:`~repro.experiments.resilience.ResiliencePolicy`
        threaded into both sweeps.
    :param journal: optional open
        :class:`~repro.experiments.resilience.CheckpointJournal` shared
        by both sweeps (keys embed ``dim``, so they cannot collide).
    :param failures: optional list collecting permanent ``TrialFailure``
        rows from a resilient run.
    """
    from pathlib import Path

    from repro.experiments.svg_charts import save_figure_svg

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    if progress:
        progress("running the 2-D sweep (figures 4-7)...")
    flat = sweep(
        sizes=sizes,
        trials=trials,
        degrees=(6, 2),
        seed=seed,
        engine=engine,
        max_workers=max_workers,
        resilience=resilience,
        journal=journal,
        failures=failures,
        builder=builder,
    )
    if progress:
        progress("running the 3-D sweep (figure 8)...")
    solid = sweep(
        sizes=sizes_3d,
        trials=trials,
        degrees=(10, 2),
        dim=3,
        seed=seed,
        engine=engine,
        max_workers=max_workers,
        resilience=resilience,
        journal=journal,
        failures=failures,
        builder=builder,
    )

    written = []
    produced = [
        ("fig4", figure4(results=flat)),
        ("fig5", figure5(results=flat)),
        ("fig6", figure6(results=flat)),
        ("fig7", figure7(results=flat)),
        ("fig8", figure8(results=solid)),
    ]
    for stem, fig in produced:
        svg_path = save_figure_svg(fig, directory / f"{stem}.svg")
        txt_path = directory / f"{stem}.txt"
        txt_path.write_text(fig.render() + "\n\n" + fig.table() + "\n")
        written.extend([svg_path, txt_path])
        if progress:
            progress(f"wrote {svg_path.name} and {txt_path.name}")
    return written


def figure8(
    results=None,
    sizes=DEFAULT_SIZES_3D,
    trials=DEFAULT_TRIALS,
    seed=0,
    engine="serial",
    max_workers=None,
    resilience=None,
    journal=None,
    failures=None,
    builder="polar-grid",
):
    """Figure 8: average maximum delay in the 3-D unit sphere.

    The full 3-D construction has out-degree 10 (2^3 bisection links + 2
    core links); the binary variant has out-degree 2. Both converge to
    the lower bound of 1, slower than in 2-D.
    """
    if results is None:
        results = sweep(
            sizes,
            trials,
            degrees=(10, 2),
            dim=3,
            seed=seed,
            engine=engine,
            max_workers=max_workers,
            resilience=resilience,
            journal=journal,
            failures=failures,
            builder=builder,
        )
    xs = _sizes_of(results, 10)
    return FigureData(
        name="Figure 8",
        title="Average maximum delay in the 3-D unit sphere",
        xs=xs,
        series={
            "out-degree 2": [results[(n, 2)].delay for n in xs],
            "out-degree 10": [results[(n, 10)].delay for n in xs],
        },
        y_label="longest delay",
    )
