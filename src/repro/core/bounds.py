"""Analytic quantities from the paper: arc lengths, path bounds, lemmas.

All of Section II's and Section III's closed-form machinery lives here so
the experiment harness can print the exact "Bound" column of Table I and
the test suite can check the theorems against built trees.

Conventions: the grid has rings ``0..k`` with outer radii

    r_i = sqrt(r_min^2 + (r_max^2 - r_min^2) * 2^(i - k)),

reducing to the paper's ``r_i = 1/sqrt(2)^(k-i)`` on the unit disk, and
ring ``i`` has ``2^i`` cells, so the arc length of a ring-``i`` cell is
``Delta_i = 2*pi*r_i / 2^i`` — the paper's ``Delta_i = 2*pi /
sqrt(2)^(k+i)`` when ``r_min = 0`` and ``r_max = 1``.
"""

from __future__ import annotations

import math

__all__ = [
    "arc_length",
    "sum_of_inner_arcs",
    "polar_grid_upper_bound",
    "bisection_path_bound",
    "bisection_constant_factor",
    "lemma1_probability",
    "lemma2_threshold",
    "rings_lower_bound",
    "ring_radius",
]

TWO_PI = 2.0 * math.pi


def ring_radius(i: int, k: int, r_max: float = 1.0, r_min: float = 0.0) -> float:
    """Outer radius of ring ``i`` in a ``k``-ring grid (2-D)."""
    if not 0 <= i <= k:
        raise ValueError(f"ring index {i} outside [0, {k}]")
    lo = r_min * r_min
    hi = r_max * r_max
    return math.sqrt(lo + (hi - lo) * 2.0 ** (i - k))


def arc_length(i: int, k: int, r_max: float = 1.0, r_min: float = 0.0) -> float:
    """``Delta_i``: arc length of one cell of ring ``i``.

    On the unit disk this is the paper's ``2*pi / sqrt(2)^(k+i)``.
    """
    return TWO_PI * ring_radius(i, k, r_max, r_min) / (1 << i)


def sum_of_inner_arcs(k: int, r_max: float = 1.0, r_min: float = 0.0) -> float:
    """``S_k``: sum of ``Delta_i`` over the inner rings ``i = 1 .. k-1``.

    Zero for ``k = 1`` (there are no inner rings to cross).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    return sum(arc_length(i, k, r_max, r_min) for i in range(1, k))


def polar_grid_upper_bound(
    k: int,
    max_out_degree: int,
    r_max: float = 1.0,
    r_min: float = 0.0,
    j: int = 0,
) -> float:
    """Equation (7): upper bound on any path built by Algorithm Polar_Grid.

        l_P  <=  r_max + 2*c*Delta_j + S_k,

    with ``c = 1`` for the full construction and ``c = 2`` for the
    out-degree-2 construction (the paper doubles the ``Delta_j``
    coefficient for degree-2 trees). Table I evaluates it at ``j = 0``
    because ``Delta_0 >= Delta_j`` for every ``j``.
    """
    if max_out_degree < 2:
        raise ValueError("max_out_degree must be at least 2")
    c = 2.0 if max_out_degree < 6 else 1.0
    return r_max + 2.0 * c * arc_length(j, k, r_max, r_min) + sum_of_inner_arcs(
        k, r_max, r_min
    )


def bisection_path_bound(
    r_inner: float,
    r_outer: float,
    angle: float,
    source_radius: float,
    max_out_degree: int,
    conservative: bool = False,
) -> float:
    """Upper bound on any path of the Section II bisection.

    With ``conservative=False`` this is the paper's equation (1)/(2):

        l_p <= max(R - q, q - r) + 2*R*a      (out-degree 4)
        l_p <= max(R - q, q - r) + 4*R*a      (out-degree 2)

    With ``conservative=True`` the radial term is replaced by
    ``2*(R - r)`` (out-degree 4) or ``4*(R - r)`` (out-degree 2) — a bound
    that holds unconditionally for our construction, including the corner
    cases where the paper's radial-monotonicity argument is informal (see
    DESIGN.md). Both keep the constant-factor guarantee of Theorem 1.
    """
    if not 0.0 <= r_inner < r_outer:
        raise ValueError("need 0 <= r_inner < r_outer")
    if not r_inner <= source_radius <= r_outer:
        raise ValueError("the source must lie inside the segment radially")
    hops = 2.0 if max_out_degree < 4 else 1.0
    arc = hops * 2.0 * r_outer * angle
    if conservative:
        radial = hops * 2.0 * (r_outer - r_inner)
    else:
        radial = max(r_outer - source_radius, source_radius - r_inner)
    return radial + arc


def bisection_constant_factor(max_out_degree: int) -> float:
    """Theorem 1's approximation factor: 5 (out-degree >= 4) or 9."""
    if max_out_degree >= 4:
        return 5.0
    if max_out_degree >= 2:
        return 9.0
    raise ValueError("max_out_degree must be at least 2")


def lemma1_probability(n: float, alpha: float) -> float:
    """Lemma 1's bound on the probability of an empty bucket.

    Throwing ``n`` balls into ``n^alpha`` buckets leaves some bucket empty
    with probability at most ``n^alpha * exp(-n^(1-alpha))``. The value is
    clipped to 1 (it is a probability bound, and the raw expression
    exceeds 1 for small ``n``).
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    raw = n**alpha * math.exp(-(n ** (1.0 - alpha)))
    return min(1.0, raw)


def lemma2_threshold() -> float:
    """Lemma 2: for ``alpha <= 1/2`` the Lemma 1 bound never exceeds
    ``exp(-1)`` — the constant that makes k ~ (1/2) log2 n safe."""
    return math.exp(-1.0)


def rings_lower_bound(n: float) -> float:
    """Equation (5): with high probability ``k >= (1/2) * log2 n``."""
    if n < 1:
        raise ValueError("n must be at least 1")
    return 0.5 * math.log2(n)
