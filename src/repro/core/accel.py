"""Optional numba JIT kernels behind a feature flag (graceful fallback).

The frontier engine of :mod:`repro.core.vectorized` spends most of its
time in segmented reductions — "first index achieving the minimum, per
contiguous segment". Pure numpy expresses that as a stable
``np.lexsort`` (``O(m log m)`` per round); with numba available the same
reduction is a single linear scan. The kernels here are the JIT-able
versions of those scans.

Feature flag and fallback rules
-------------------------------

* numba is **optional**: when it is not importable, ``NUMBA_AVAILABLE``
  is False, :func:`maybe_jit` is the identity, and the ``"numba"``
  backend silently resolves to the ``"numpy"`` path (see
  :func:`repro.core.backends.resolve_backend`). Nothing in the repo
  imports numba unconditionally.
* Setting ``REPRO_NUMBA=0`` (or ``off``/``false``) disables the JIT even
  when numba is installed — the escape hatch for debugging a suspected
  JIT miscompile, and the way CI pins the pure-numpy path.

The kernels replicate the reference tie-breaks *exactly*: a strict
``<`` comparison keeps the earliest index on ties, matching both
``bisection._pick_representative`` and the stable-``lexsort`` fallback,
so JIT on/off never changes a built tree (differentially tested in
``tests/test_backends.py``).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "maybe_jit",
    "segment_first_min",
    "segment_first_two_min",
]


def _load_njit():
    """The ``numba.njit`` decorator, or ``None`` when unavailable/off."""
    if os.environ.get("REPRO_NUMBA", "").strip().lower() in (
        "0",
        "off",
        "false",
    ):
        return None
    try:
        from numba import njit
    except ImportError:
        return None
    return njit


_njit = _load_njit()
NUMBA_AVAILABLE = _njit is not None


def maybe_jit(fn):
    """``numba.njit(cache=True)`` when available, identity otherwise.

    The un-jitted functions below are plain Python loops — correct but
    slow — so callers must branch on :data:`NUMBA_AVAILABLE` and use the
    vectorised numpy equivalent when the JIT is off. They stay callable
    regardless so the differential tests can exercise both forms.
    """
    if _njit is None:
        return fn
    return _njit(cache=True)(fn)


@maybe_jit
def segment_first_min(values, starts, ends):
    """Index of the first minimum of ``values`` within each segment.

    ``starts[s]:ends[s]`` delimits segment ``s`` (non-empty). Ties keep
    the earliest index (strict ``<``), exactly like the reference
    representative rule and ``np.lexsort``'s stable order.
    """
    out = np.empty(starts.shape[0], dtype=np.int64)
    for s in range(starts.shape[0]):
        lo = starts[s]
        best = lo
        best_val = values[lo]
        for i in range(lo + 1, ends[s]):
            if values[i] < best_val:
                best = i
                best_val = values[i]
        out[s] = best
    return out


@maybe_jit
def segment_first_two_min(values, starts, ends):
    """Indices of the two smallest ``values`` per segment (size >= 2).

    Replicates ``bisection._pick_two_relays``: the first return holds
    the earliest index achieving the minimum, the second the earliest
    index achieving the next-smallest value (the previous best demotes
    to second when beaten).
    """
    first = np.empty(starts.shape[0], dtype=np.int64)
    second = np.empty(starts.shape[0], dtype=np.int64)
    for s in range(starts.shape[0]):
        lo = starts[s]
        best = lo
        best_val = values[lo]
        runner = -1
        runner_val = np.inf
        for i in range(lo + 1, ends[s]):
            v = values[i]
            if v < best_val:
                runner = best
                runner_val = best_val
                best = i
                best_val = v
            elif v < runner_val:
                runner = i
                runner_val = v
        first[s] = best
        second[s] = runner
    return first, second
