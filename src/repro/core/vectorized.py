"""Frontier-vectorised build path — the ``"numpy"``/``"numba"`` backends.

The reference pipeline wires cells one at a time and bisects each cell
with an explicit work stack (:mod:`repro.core.core_network`,
:mod:`repro.core.bisection`); profiling at n=100k puts ~73% of the build
in that per-point Python (``polar_grid.wire_cells`` span). This module
replaces it with *level-synchronous* ("frontier") array passes: every
active bisection task across **all** cells is one row-group of a flat
array, and each round partitions, picks representatives, and wires an
entire level of every subtree at once. Python-level work per round is
O(1); rounds are O(log n) for the uniform workloads of Section V.

Exactness contract
------------------

The vectorised build is **bit-identical** to the reference — same
parent array, same radius — which the backend tests enforce
differentially. Three properties make that possible:

* **order independence** — the reference processes cells (dict/stack
  order) whose subtrees are disjoint, so any schedule yields the same
  tree; the frontier schedule is just another order;
* **stable tie-breaks** — every "closest point" rule in the reference
  takes the *earliest* strict minimum; segmented first-min here is a
  stable ``np.lexsort`` (or the equivalent linear-scan numba kernel in
  :mod:`repro.core.accel`), which preserves exactly that;
* **float parity** — midpoints, gaps, and distances use the same
  expressions in the same evaluation order as the reference (e.g. the
  forwarder score accumulates squared coordinate differences
  left-to-right before the ``** 0.5``), so no result differs even in
  the last ulp.

One deliberate divergence: the reference raises :class:`WiringError`
mid-wiring after mutating ``parent`` for earlier cells; the vectorised
path validates all cells up front and raises (the same message, for the
lowest-gid offender) before touching ``parent``. Callers discard the
half-built state on error either way.
"""

from __future__ import annotations

import numpy as np

from repro.core import accel
from repro.core.core_network import WiringError
from repro.core.grid_nd import PolarGridND

__all__ = [
    "wire_cells_vectorized",
    "bisection_vectorized_2d",
    "bisection_vectorized_nd",
]


# ----------------------------------------------------------------------
# segmented primitives
# ----------------------------------------------------------------------


def _segment_starts(key: np.ndarray) -> np.ndarray:
    """Start offsets of the runs of a sorted integer key array."""
    if key.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.zeros(1, dtype=np.int64), np.flatnonzero(np.diff(key)) + 1]
    )


def _first_min(values, key, starts, sizes, jit: bool) -> np.ndarray:
    """Index of the earliest minimum of ``values`` per run of ``key``.

    ``key`` must be sorted ascending with runs delimited by ``starts``/
    ``sizes``. Ties keep the earliest index — the reference
    ``_pick_representative`` rule.
    """
    if jit and accel.NUMBA_AVAILABLE:
        return accel.segment_first_min(values, starts, starts + sizes)
    return np.lexsort((values, key))[starts]


def _first_two_min(values, key, starts, sizes, jit: bool):
    """Earliest-two-minima indices per run (runs of size >= 2).

    Matches ``_pick_two_relays``: first return is the earliest strict
    minimum, second the earliest index of the next-smallest value.
    """
    if jit and accel.NUMBA_AVAILABLE:
        return accel.segment_first_two_min(values, starts, starts + sizes)
    perm = np.lexsort((values, key))
    return perm[starts], perm[starts + 1]


# ----------------------------------------------------------------------
# frontier engines — one per reference bisection variant
#
# Shared task representation: member node ids live in ``pt`` (with their
# cached coordinates ``rho_pt`` / ``t_pt``), grouped contiguously; group
# ``g`` holds ``sizes[g]`` members and carries its local source ``src``
# (with ``src_rho``) plus its cell bounds. Groups stay contiguous across
# rounds because every pass filters monotonically.
# ----------------------------------------------------------------------


def _frontier_full(
    pt, rho_pt, t_pt, sizes, src, src_rho, r_lo, r_hi, box_lo, box_hi,
    parent, jit,
):
    """``_run_full`` (out-degree ``2^d`` quartering) as frontier rounds."""
    axes = t_pt.shape[1]
    shift = 1 + axes
    while pt.shape[0]:
        num_groups = sizes.shape[0]
        seg_of = np.repeat(np.arange(num_groups, dtype=np.int64), sizes)

        # Terminal tasks: a single member hangs off the local source.
        single = sizes == 1
        if single.any():
            sm = single[seg_of]
            parent[pt[sm]] = src[seg_of[sm]]
            keep_g = ~single
            if not keep_g.any():
                return
            remap = np.cumsum(keep_g) - 1
            keep_p = ~sm
            pt, rho_pt, t_pt = pt[keep_p], rho_pt[keep_p], t_pt[keep_p]
            seg_of = remap[seg_of[keep_p]]
            sizes, src, src_rho = sizes[keep_g], src[keep_g], src_rho[keep_g]
            r_lo, r_hi = r_lo[keep_g], r_hi[keep_g]
            box_lo, box_hi = box_lo[keep_g], box_hi[keep_g]

        # One quartering: sub-cell code bit 0 = outer radial half, bit
        # 1+axis = upper angular half (reference ``_partition_full``).
        r_mid = 0.5 * (r_lo + r_hi)
        mids = 0.5 * (box_lo + box_hi)
        code = (rho_pt > r_mid[seg_of]).astype(np.int64)
        for a in range(axes):
            code |= (t_pt[:, a] >= mids[seg_of, a]).astype(np.int64) << (
                1 + a
            )
        key = (seg_of << shift) | code
        order = np.argsort(key, kind="stable")
        pt, rho_pt, t_pt = pt[order], rho_pt[order], t_pt[order]
        code, seg_of, key = code[order], seg_of[order], key[order]

        starts = _segment_starts(key)
        new_sizes = np.diff(np.append(starts, key.shape[0]))
        gap = np.abs(rho_pt - src_rho[seg_of])
        rep_pos = _first_min(gap, key, starts, new_sizes, jit)
        reps = pt[rep_pos]
        rep_rho = rho_pt[rep_pos]
        parent[reps] = src[seg_of[rep_pos]]

        # Sub-cell bounds for the groups the representatives now root.
        old = seg_of[rep_pos]
        c = code[rep_pos]
        outer = (c & 1).astype(bool)
        n_r_lo = np.where(outer, r_mid[old], r_lo[old])
        n_r_hi = np.where(outer, r_hi[old], r_mid[old])
        n_box_lo = box_lo[old].copy()
        n_box_hi = box_hi[old].copy()
        for a in range(axes):
            hi_half = ((c >> (1 + a)) & 1).astype(bool)
            n_box_lo[:, a] = np.where(
                hi_half, mids[old, a], box_lo[old, a]
            )
            n_box_hi[:, a] = np.where(
                hi_half, box_hi[old, a], mids[old, a]
            )

        seg_id = np.repeat(
            np.arange(starts.shape[0], dtype=np.int64), new_sizes
        )
        keep = np.ones(pt.shape[0], dtype=bool)
        keep[rep_pos] = False
        pt, rho_pt, t_pt = pt[keep], rho_pt[keep], t_pt[keep]
        seg_of = seg_id[keep]
        sizes = new_sizes - 1
        src, src_rho = reps, rep_rho
        r_lo, r_hi, box_lo, box_hi = n_r_lo, n_r_hi, n_box_lo, n_box_hi
        keep_g = sizes > 0
        if not keep_g.all():
            sizes, src, src_rho = sizes[keep_g], src[keep_g], src_rho[keep_g]
            r_lo, r_hi = r_lo[keep_g], r_hi[keep_g]
            box_lo, box_hi = box_lo[keep_g], box_hi[keep_g]


def _frontier_binary_nd(
    pt, rho_pt, t_pt, sizes, src, src_rho, r_lo, r_hi, box_lo, box_hi,
    axis, parent, jit,
):
    """``_run_binary_nd`` (axis-cycling out-degree 2) as frontier rounds."""
    axes = t_pt.shape[1]
    num_axes = axes + 1
    while pt.shape[0]:
        num_groups = sizes.shape[0]
        seg_of = np.repeat(np.arange(num_groups, dtype=np.int64), sizes)

        small = sizes <= 2
        if small.any():
            sm = small[seg_of]
            parent[pt[sm]] = src[seg_of[sm]]
            keep_g = ~small
            if not keep_g.any():
                return
            remap = np.cumsum(keep_g) - 1
            keep_p = ~sm
            pt, rho_pt, t_pt = pt[keep_p], rho_pt[keep_p], t_pt[keep_p]
            seg_of = remap[seg_of[keep_p]]
            sizes, src, src_rho = sizes[keep_g], src[keep_g], src_rho[keep_g]
            r_lo, r_hi = r_lo[keep_g], r_hi[keep_g]
            box_lo, box_hi = box_lo[keep_g], box_hi[keep_g]
            axis = axis[keep_g]
            num_groups = sizes.shape[0]

        # One halving along each group's current axis. Radial splits are
        # low-closed (``<= mid`` stays low); angular splits are
        # high-closed (``>= mid`` goes high) — reference comparisons.
        gidx = np.arange(num_groups, dtype=np.int64)
        is_rad = axis == 0
        ax_col = np.maximum(axis - 1, 0)
        mid = np.where(
            is_rad,
            0.5 * (r_lo + r_hi),
            0.5 * (box_lo[gidx, ax_col] + box_hi[gidx, ax_col]),
        )
        is_rad_pt = is_rad[seg_of]
        coord = np.where(
            is_rad_pt,
            rho_pt,
            t_pt[np.arange(pt.shape[0]), ax_col[seg_of]],
        )
        m = mid[seg_of]
        code = np.where(is_rad_pt, coord > m, coord >= m).astype(np.int64)
        key = (seg_of << 1) | code
        order = np.argsort(key, kind="stable")
        pt, rho_pt, t_pt = pt[order], rho_pt[order], t_pt[order]
        code, seg_of, key = code[order], seg_of[order], key[order]

        starts = _segment_starts(key)
        new_sizes = np.diff(np.append(starts, key.shape[0]))
        gap = np.abs(rho_pt - src_rho[seg_of])
        rep_pos = _first_min(gap, key, starts, new_sizes, jit)
        reps = pt[rep_pos]
        rep_rho = rho_pt[rep_pos]
        parent[reps] = src[seg_of[rep_pos]]

        old = seg_of[rep_pos]
        c = code[rep_pos].astype(bool)
        o_rad = is_rad[old]
        o_mid = mid[old]
        n_r_lo = np.where(o_rad & c, o_mid, r_lo[old])
        n_r_hi = np.where(o_rad & ~c, o_mid, r_hi[old])
        n_box_lo = box_lo[old].copy()
        n_box_hi = box_hi[old].copy()
        rows = np.flatnonzero(~o_rad & c)
        n_box_lo[rows, ax_col[old[rows]]] = o_mid[rows]
        rows = np.flatnonzero(~o_rad & ~c)
        n_box_hi[rows, ax_col[old[rows]]] = o_mid[rows]
        n_axis = (axis[old] + 1) % num_axes

        seg_id = np.repeat(
            np.arange(starts.shape[0], dtype=np.int64), new_sizes
        )
        keep = np.ones(pt.shape[0], dtype=bool)
        keep[rep_pos] = False
        pt, rho_pt, t_pt = pt[keep], rho_pt[keep], t_pt[keep]
        seg_of = seg_id[keep]
        sizes = new_sizes - 1
        src, src_rho = reps, rep_rho
        r_lo, r_hi, box_lo, box_hi = n_r_lo, n_r_hi, n_box_lo, n_box_hi
        axis = n_axis
        keep_g = sizes > 0
        if not keep_g.all():
            sizes, src, src_rho = sizes[keep_g], src[keep_g], src_rho[keep_g]
            r_lo, r_hi = r_lo[keep_g], r_hi[keep_g]
            box_lo, box_hi = box_lo[keep_g], box_hi[keep_g]
            axis = axis[keep_g]


def _frontier_relay2(
    pt, rho_pt, tt_pt, sizes, src, src_rho, r_lo, r_hi, t_lo, t_hi,
    parent, jit,
):
    """``_run_relay2`` (2-D out-degree 2 relay scheme) as frontier rounds.

    ``tt_pt`` is the single angular coordinate (flat, one per member).
    """
    while pt.shape[0]:
        num_groups = sizes.shape[0]
        seg_of = np.repeat(np.arange(num_groups, dtype=np.int64), sizes)

        small = sizes <= 2
        if small.any():
            sm = small[seg_of]
            parent[pt[sm]] = src[seg_of[sm]]
            keep_g = ~small
            if not keep_g.any():
                return
            remap = np.cumsum(keep_g) - 1
            keep_p = ~sm
            pt, rho_pt, tt_pt = pt[keep_p], rho_pt[keep_p], tt_pt[keep_p]
            seg_of = remap[seg_of[keep_p]]
            sizes, src, src_rho = sizes[keep_g], src[keep_g], src_rho[keep_g]
            r_lo, r_hi = r_lo[keep_g], r_hi[keep_g]
            t_lo, t_hi = t_lo[keep_g], t_hi[keep_g]
            num_groups = sizes.shape[0]

        # Two relays per group: radius closest to the local source's.
        starts0 = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes)[:-1]]
        )
        gap = np.abs(rho_pt - src_rho[seg_of])
        a_pos, b_pos = _first_two_min(gap, seg_of, starts0, sizes, jit)
        # ``relay_a`` is whichever of the two sits earlier in the member
        # list (the reference pops the later position first).
        lo_pos = np.minimum(a_pos, b_pos)
        hi_pos = np.maximum(a_pos, b_pos)
        relay_a, relay_b = pt[lo_pos], pt[hi_pos]
        relay_a_rho, relay_b_rho = rho_pt[lo_pos], rho_pt[hi_pos]
        parent[relay_a] = src
        parent[relay_b] = src

        keep = np.ones(pt.shape[0], dtype=bool)
        keep[lo_pos] = False
        keep[hi_pos] = False
        pt, rho_pt, tt_pt = pt[keep], rho_pt[keep], tt_pt[keep]
        seg_of = seg_of[keep]  # every group keeps >= 1 member (size >= 3)

        # Quadrants, ordered radial-fast within each angular half so the
        # first two non-empty ones belong to relay A (reference order).
        r_mid = 0.5 * (r_lo + r_hi)
        t_mid = 0.5 * (t_lo + t_hi)
        code = (
            (tt_pt >= t_mid[seg_of]).astype(np.int64) << 1
        ) | (rho_pt > r_mid[seg_of]).astype(np.int64)
        key = (seg_of << 2) | code
        order = np.argsort(key, kind="stable")
        pt, rho_pt, tt_pt = pt[order], rho_pt[order], tt_pt[order]
        code, seg_of, key = code[order], seg_of[order], key[order]

        starts = _segment_starts(key)
        new_sizes = np.diff(np.append(starts, key.shape[0]))
        old = seg_of[starts]
        # Rank of each non-empty quadrant within its group: the first
        # two go to relay A, the rest to relay B.
        run_starts = _segment_starts(old)
        run_sizes = np.diff(np.append(run_starts, starts.shape[0]))
        rank = np.arange(starts.shape[0], dtype=np.int64) - np.repeat(
            run_starts, run_sizes
        )
        relay_for = np.where(rank < 2, relay_a[old], relay_b[old])
        relay_rho = np.where(rank < 2, relay_a_rho[old], relay_b_rho[old])

        seg_id = np.repeat(
            np.arange(starts.shape[0], dtype=np.int64), new_sizes
        )
        gap2 = np.abs(rho_pt - relay_rho[seg_id])
        rep_pos = _first_min(gap2, key, starts, new_sizes, jit)
        reps = pt[rep_pos]
        rep_rho = rho_pt[rep_pos]
        parent[reps] = relay_for

        c = code[rep_pos]
        outer = (c & 1).astype(bool)
        upper = (c >> 1).astype(bool)
        n_r_lo = np.where(outer, r_mid[old], r_lo[old])
        n_r_hi = np.where(outer, r_hi[old], r_mid[old])
        n_t_lo = np.where(upper, t_mid[old], t_lo[old])
        n_t_hi = np.where(upper, t_hi[old], t_mid[old])

        keep = np.ones(pt.shape[0], dtype=bool)
        keep[rep_pos] = False
        pt, rho_pt, tt_pt = pt[keep], rho_pt[keep], tt_pt[keep]
        seg_of = seg_id[keep]
        sizes = new_sizes - 1
        src, src_rho = reps, rep_rho
        r_lo, r_hi, t_lo, t_hi = n_r_lo, n_r_hi, n_t_lo, n_t_hi
        keep_g = sizes > 0
        if not keep_g.all():
            sizes, src, src_rho = sizes[keep_g], src[keep_g], src_rho[keep_g]
            r_lo, r_hi = r_lo[keep_g], r_hi[keep_g]
            t_lo, t_hi = t_lo[keep_g], t_hi[keep_g]


def _run_engine(
    dim, binary, pt, sizes, src, rho, t, r_lo, r_hi, box_lo, box_hi,
    parent, jit,
):
    """Dispatch task groups to the matching frontier engine.

    Mirrors ``_bisect_in_cell``: 2-D binary builds use the paper's relay
    scheme, everything else the full/axis-cycling variants.
    """
    if pt.shape[0] == 0:
        return
    src_rho = rho[src]
    rho_pt = rho[pt]
    if not binary:
        _frontier_full(
            pt, rho_pt, t[pt], sizes, src, src_rho,
            r_lo, r_hi, box_lo, box_hi, parent, jit,
        )
    elif dim == 2:
        _frontier_relay2(
            pt, rho_pt, t[pt, 0], sizes, src, src_rho,
            r_lo, r_hi, box_lo[:, 0], box_hi[:, 0], parent, jit,
        )
    else:
        axis0 = np.zeros(sizes.shape[0], dtype=np.int64)
        _frontier_binary_nd(
            pt, rho_pt, t[pt], sizes, src, src_rho,
            r_lo, r_hi, box_lo, box_hi, axis0, parent, jit,
        )


# ----------------------------------------------------------------------
# cell wiring (the vectorised ``wire_cells``)
# ----------------------------------------------------------------------


def _cell_tables(grid: PolarGridND, gids: np.ndarray):
    """Per-occupied-cell decode: (ring, cell, bounds, parent gid)."""
    k = grid.k
    axes = grid.angular_axes
    count = gids.shape[0]
    offsets = (1 << np.arange(k + 2, dtype=np.int64)) - 1
    ring = np.searchsorted(offsets, gids, side="right") - 1
    cell = gids - offsets[ring]
    radii = np.array([grid.ring_radius(i) for i in range(k + 1)])
    cr_lo = np.where(ring == 0, grid.r_min, radii[np.maximum(ring - 1, 0)])
    cr_hi = radii[ring]
    cb_lo = np.zeros((count, axes))
    cb_hi = np.ones((count, axes))
    pgid = np.zeros(count, dtype=np.int64)
    for r in range(1, k + 1):
        rows = np.flatnonzero(ring == r)
        if rows.shape[0] == 0:
            continue
        remainder = cell[rows].copy()
        splits = grid.axis_splits(r)
        for a in range(axes - 1, -1, -1):
            width = splits[a]
            bins_count = 1 << width
            b = remainder & (bins_count - 1)
            remainder >>= width
            cb_lo[rows, a] = b / bins_count
            cb_hi[rows, a] = (b + 1) / bins_count
        pgid[rows] = offsets[r - 1] + grid.parent_cells(r, cell[rows])
    return ring, cell, cr_lo, cr_hi, cb_lo, cb_hi, pgid


def wire_cells_vectorized(
    grid: PolarGridND,
    source: int,
    sorted_nodes: np.ndarray,
    sorted_gid: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    rho: np.ndarray,
    t: np.ndarray,
    parent: np.ndarray,
    binary: bool,
    outer_anchor_dist: np.ndarray,
    points: np.ndarray,
    jit: bool = False,
) -> np.ndarray:
    """Array-native ``core_network.wire_cells``; fills ``parent`` in place.

    Inputs come straight from the builder's sorted layout — no Python
    lists are materialised anywhere on this path:

    :param sorted_nodes: receiver ids sorted by (cell gid, candidate
        rank), so each cell's first slot is its representative.
    :param sorted_gid: the matching gid per slot.
    :param starts: slice starts of each occupied cell (ascending gid).
    :param ends: matching slice ends.
    :param rho: per-node radii (full length ``n``).
    :param t: per-node angular coordinates, shape ``(n, d-1)``.
    :param outer_anchor_dist: per-node distance to the node's cell outer
        anchor (0 for the source), the binary forwarder score term.
    :param jit: route segmented reductions through the numba kernels.
    :returns: representatives of the subdivided cells, ascending gid —
        same contract as the reference.
    :raises WiringError: when an occupied interior cell's parent cell is
        empty (checked up front for all cells at once).
    """
    gids = sorted_gid[starts]
    csize = ends - starts
    cell_count = gids.shape[0]
    dim = grid.dim
    ring, cell, cr_lo, cr_hi, cb_lo, cb_hi, pgid = _cell_tables(grid, gids)

    total = grid.total_cells
    occupied = np.zeros(total, dtype=bool)
    occupied[gids] = True
    sub = gids > 0  # subdivided cells (everything but the inner region)

    bad = sub & (pgid > 0) & ~occupied[pgid]
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        p_ring, p_cell = grid.ring_of_global(int(pgid[i]))
        raise WiringError(
            f"cell (ring={int(ring[i])}, cell={int(cell[i])}) has an "
            f"empty parent cell (ring={p_ring}, cell={p_cell}); the "
            "grid does not satisfy the occupancy property — use "
            "a smaller k or let the builder choose it"
        )

    rep = sorted_nodes[starts].copy()
    if cell_count and gids[0] == 0:
        rep[0] = source  # the source represents the inner region
    representatives = sorted_nodes[starts][sub]

    # forward[gid] = node owning the links toward the next ring. Forward
    # choices never depend on upstream wiring, so the whole table is
    # computed first and the representative links drawn afterwards.
    forward = np.full(total, -1, dtype=np.int64)
    forward[0] = source
    rest_size = csize - sub.astype(np.int64)
    first_rest = starts + sub.astype(np.int64)

    if not binary:
        forward[gids] = rep
        parent[rep[sub]] = forward[pgid[sub]]
        drop = np.zeros(sorted_nodes.shape[0], dtype=bool)
        drop[starts[sub]] = True
        keep_g = rest_size > 0
        _run_engine(
            dim, binary, sorted_nodes[~drop], rest_size[keep_g],
            rep[keep_g], rho, t, cr_lo[keep_g], cr_hi[keep_g],
            cb_lo[keep_g], cb_hi[keep_g], parent, jit,
        )
        return representatives

    # --- out-degree-2 wiring (Section IV-A), all cells at once ---
    child_occ = np.zeros(total, dtype=bool)
    child_occ[pgid[sub]] = True
    has_children = child_occ[gids]

    case_fwd_self = rest_size == 0
    case_pair = rest_size == 1
    case_leaf = (rest_size >= 2) & ~has_children
    case_hub = (rest_size >= 2) & has_children

    forward[gids[case_fwd_self]] = rep[case_fwd_self]

    other = sorted_nodes[first_rest[case_pair]]
    parent[other] = rep[case_pair]
    forward[gids[case_pair]] = other

    forward[gids[case_leaf]] = rep[case_leaf]

    cell_of = np.repeat(np.arange(cell_count, dtype=np.int64), csize)
    is_rep_slot = np.zeros(sorted_nodes.shape[0], dtype=bool)
    is_rep_slot[starts[sub]] = True

    hub = fwd = hub_cells = None
    keep3 = None
    nodes3 = cell3 = None
    if case_hub.any():
        # Forwarder = rest member minimising dist(rep, m) + outer-anchor
        # dist; hub = the first remaining member (reference case 3).
        m3 = case_hub[cell_of] & ~is_rep_slot
        nodes3 = sorted_nodes[m3]
        cell3 = cell_of[m3]
        pa = points[rep[cell3]]
        pb = points[nodes3]
        acc = np.zeros(nodes3.shape[0])
        for j in range(points.shape[1]):
            acc = acc + (pa[:, j] - pb[:, j]) ** 2
        score = acc**0.5 + outer_anchor_dist[nodes3]
        starts3 = _segment_starts(cell3)
        sizes3 = np.diff(np.append(starts3, cell3.shape[0]))
        fwd_pos = _first_min(score, cell3, starts3, sizes3, jit)
        fwd = nodes3[fwd_pos]
        hub_pos = np.where(fwd_pos == starts3, starts3 + 1, starts3)
        hub = nodes3[hub_pos]
        hub_cells = cell3[starts3]
        parent[hub] = rep[hub_cells]
        parent[fwd] = rep[hub_cells]
        forward[gids[hub_cells]] = fwd
        keep3 = np.ones(nodes3.shape[0], dtype=bool)
        keep3[fwd_pos] = False
        keep3[hub_pos] = False

    parent[rep[sub]] = forward[pgid[sub]]

    # In-cell bisection tasks: leaf cells root at their representative,
    # hub cells at the hub with the forwarder and hub removed.
    task_pt = [sorted_nodes[case_leaf[cell_of] & ~is_rep_slot]]
    task_sizes = [rest_size[case_leaf]]
    task_src = [rep[case_leaf]]
    task_r_lo = [cr_lo[case_leaf]]
    task_r_hi = [cr_hi[case_leaf]]
    task_b_lo = [cb_lo[case_leaf]]
    task_b_hi = [cb_hi[case_leaf]]
    if case_hub.any():
        sizes_h = rest_size[case_hub] - 2
        keep_h = sizes_h > 0
        task_pt.append(nodes3[keep3])
        task_sizes.append(sizes_h[keep_h])
        task_src.append(hub[keep_h])
        task_r_lo.append(cr_lo[case_hub][keep_h])
        task_r_hi.append(cr_hi[case_hub][keep_h])
        task_b_lo.append(cb_lo[case_hub][keep_h])
        task_b_hi.append(cb_hi[case_hub][keep_h])
    _run_engine(
        dim, binary, np.concatenate(task_pt),
        np.concatenate(task_sizes), np.concatenate(task_src), rho, t,
        np.concatenate(task_r_lo), np.concatenate(task_r_hi),
        np.concatenate(task_b_lo), np.concatenate(task_b_hi),
        parent, jit,
    )
    return representatives


# ----------------------------------------------------------------------
# standalone bisection builds (one whole-cloud task)
# ----------------------------------------------------------------------


def bisection_vectorized_2d(
    rho, theta_t, receivers, source, r_range, t_range, parent,
    max_out_degree, jit=False,
):
    """Vectorised ``bisection_tree_2d`` over one covering ring segment."""
    receivers = np.asarray(receivers, dtype=np.int64)
    sizes = np.array([receivers.shape[0]], dtype=np.int64)
    src = np.array([source], dtype=np.int64)
    src_rho = rho[src]
    r_lo = np.array([r_range[0]])
    r_hi = np.array([r_range[1]])
    t_lo = np.array([t_range[0]])
    t_hi = np.array([t_range[1]])
    if max_out_degree >= 4:
        _frontier_full(
            receivers, rho[receivers], theta_t[receivers][:, None],
            sizes, src, src_rho, r_lo, r_hi, t_lo[:, None], t_hi[:, None],
            parent, jit,
        )
    else:
        _frontier_relay2(
            receivers, rho[receivers], theta_t[receivers], sizes, src,
            src_rho, r_lo, r_hi, t_lo, t_hi, parent, jit,
        )


def bisection_vectorized_nd(
    rho, t, receivers, source, r_range, parent, max_out_degree, jit=False
):
    """Vectorised ``bisection_tree_nd`` over the full angular box."""
    receivers = np.asarray(receivers, dtype=np.int64)
    axes = t.shape[1]
    dim = axes + 1
    sizes = np.array([receivers.shape[0]], dtype=np.int64)
    src = np.array([source], dtype=np.int64)
    src_rho = rho[src]
    r_lo = np.array([r_range[0]])
    r_hi = np.array([r_range[1]])
    box_lo = np.zeros((1, axes))
    box_hi = np.ones((1, axes))
    if max_out_degree >= (1 << dim):
        _frontier_full(
            receivers, rho[receivers], t[receivers], sizes, src, src_rho,
            r_lo, r_hi, box_lo, box_hi, parent, jit,
        )
    else:
        axis0 = np.zeros(1, dtype=np.int64)
        _frontier_binary_nd(
            receivers, rho[receivers], t[receivers], sizes, src, src_rho,
            r_lo, r_hi, box_lo, box_hi, axis0, parent, jit,
        )
