"""Polar-grid trees over hosts with *mixed* fan-out budgets.

The paper assumes a uniform degree bound. Real overlay populations are
mixed: servers that can forward to many peers, DSL hosts that can carry
one or two copies, and mobile/metered hosts that can forward nothing.

This builder splits the population by capability:

* **forwarders** — hosts whose budget covers the binary construction
  (budget >= 2); the out-degree-2 polar grid is built over them, so the
  asymptotic-optimality machinery applies to the backbone;
* **leaf-only hosts** — budget 0 or 1; they attach greedily (minimum
  resulting delay) to forwarders' *spare* capacity: a forwarder with
  budget ``b`` uses at most 2 slots in the binary backbone and offers
  the remaining ``b - used`` to leaves. (Budget-1 leaves still never
  forward: granting their single slot would complicate nothing today,
  but the role split keeps the backbone analysis intact.)

The result honours every individual budget and degrades gracefully: with
uniform budgets >= 2 and no leaf-only hosts it reduces to the ordinary
binary construction.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.builder import BuildResult, build_polar_grid_tree
from repro.core.registry import register_builder
from repro.core.tree import MulticastTree
from repro.geometry.points import validate_points

__all__ = ["build_heterogeneous_tree"]


@register_builder(
    "heterogeneous",
    summary="binary polar-grid backbone over forwarders, leaf-only "
    "hosts on spare capacity",
)
def _heterogeneous_builder(
    points,
    source: int = 0,
    *,
    budgets=None,
    max_out_degree: int | None = None,
    **grid_kwargs,
):
    """Registry adapter for :func:`build_heterogeneous_tree`.

    Accepts either per-host ``budgets`` (the native contract) or a
    scalar ``max_out_degree`` normalized into a uniform budget array;
    exactly one must be given.
    """
    if budgets is None:
        if max_out_degree is None:
            raise ValueError(
                "the heterogeneous builder needs per-host 'budgets' "
                "(or a uniform 'max_out_degree' to derive them from)"
            )
        n = np.asarray(points, dtype=np.float64).shape[0]
        budgets = np.full(n, int(max_out_degree), dtype=np.int64)
    elif max_out_degree is not None:
        raise ValueError("pass either 'budgets' or 'max_out_degree', not both")
    return build_heterogeneous_tree(points, budgets, source, **grid_kwargs)


def build_heterogeneous_tree(
    points,
    budgets,
    source: int = 0,
    **grid_kwargs,
) -> BuildResult:
    """Degree-respecting tree over a mixed-capability population.

    :param points: ``(n, d)`` coordinates.
    :param budgets: per-host fan-out budgets, shape ``(n,)``. The source
        needs budget >= 2 (it roots the backbone); hosts with budget
        >= 2 form the backbone; the rest are leaves.
    :param grid_kwargs: forwarded to the backbone's polar-grid build.
    :returns: a :class:`~repro.core.builder.BuildResult`; ``rings`` etc.
        describe the backbone build.
    :raises ValueError: if the source is leaf-only, or spare forwarder
        capacity cannot host all the leaves.
    """
    started = time.perf_counter()
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    validate_points(points)
    n = points.shape[0]
    budgets = np.asarray(budgets, dtype=np.int64)
    if budgets.shape != (n,):
        raise ValueError(f"budgets must have shape ({n},)")
    if np.any(budgets < 0):
        raise ValueError("budgets cannot be negative")
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if budgets[source] < 2:
        raise ValueError("the source needs fan-out >= 2 to root the backbone")

    forwarders = np.flatnonzero(budgets >= 2)
    leaves = np.flatnonzero(budgets < 2)

    # --- backbone: binary polar grid over the forwarders ---
    backbone_points = points[forwarders]
    backbone_source = int(np.flatnonzero(forwarders == source)[0])
    backbone = build_polar_grid_tree(
        backbone_points, backbone_source, 2, **grid_kwargs
    )

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    backbone_parent = backbone.tree.parent
    for local, global_idx in enumerate(forwarders.tolist()):
        if global_idx != source:
            parent[global_idx] = forwarders[backbone_parent[local]]

    # --- leaves: greedy min-delay attachment to spare capacity ---
    if leaves.size:
        used = np.zeros(n, dtype=np.int64)
        counts = np.bincount(
            backbone_parent, minlength=len(forwarders)
        )
        counts[backbone_source] -= 1  # the root's self-loop
        used[forwarders] = counts
        spare = budgets - used
        spare[leaves] = 0  # leaf-only hosts never forward

        backbone_delays = backbone.tree.root_delays()
        delay = np.zeros(n)
        delay[forwarders] = backbone_delays

        capacity = int(spare[forwarders].sum())
        if capacity < leaves.size:
            raise ValueError(
                f"forwarders offer {capacity} spare slots for "
                f"{leaves.size} leaf-only hosts; the population cannot "
                "be spanned under these budgets"
            )

        # Nearest-to-source leaves first, so early attachments do not
        # crowd out later ones unnecessarily.
        leaf_order = leaves[
            np.argsort(
                np.linalg.norm(points[leaves] - points[source], axis=1)
            )
        ]
        open_hosts = forwarders[spare[forwarders] > 0]
        for leaf in leaf_order.tolist():
            dist = np.linalg.norm(points[open_hosts] - points[leaf], axis=1)
            cost = delay[open_hosts] + dist
            pick = int(np.argmin(cost))
            adopter = int(open_hosts[pick])
            parent[leaf] = adopter
            delay[leaf] = float(cost[pick])
            spare[adopter] -= 1
            if spare[adopter] == 0:
                open_hosts = np.delete(open_hosts, pick)

    tree = MulticastTree(points=points, parent=parent, root=source)
    return BuildResult(
        tree=tree,
        max_out_degree=int(budgets.max()),
        rings=backbone.rings,
        core_delay=backbone.core_delay,
        upper_bound=None,
        build_seconds=time.perf_counter() - started,
        representative_count=backbone.representative_count,
        grid=backbone.grid,
        representatives=(
            forwarders[backbone.representatives]
            if backbone.representatives is not None
            and backbone.representatives.size
            else backbone.representatives
        ),
    )
