"""The minimum-*diameter* variant (paper's Conclusion, and the MDDL line).

The paper's objective is the tree *radius* (worst source-to-receiver
delay). Its conclusion notes the algorithm also applies to the
minimum-**diameter** degree-limited problem of Shi-Turner-Waldvogel
([15]-[17]): minimise the worst delay between *any pair* of
participants. Their recipe, implemented here:

* pick an **artificial root** among the nodes closest to the centre of
  the point cloud (for points uniform in a sphere this is asymptotically
  optimal; in a general convex region it is within a factor of 2);
* run Algorithm Polar_Grid from that root;
* the tree diameter is then at most twice the tree radius, and the
  radius converges to half the cloud's width.

Also provides exact tree-diameter computation (two-sweep, valid for any
positively-weighted tree) and an approximate 1-centre (Ritter's bounding
sphere) used to pick the artificial root.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import BuildResult, build_polar_grid_tree
from repro.core.registry import register_builder
from repro.core.tree import MulticastTree
from repro.geometry.points import distances_from, validate_points

__all__ = [
    "approximate_center",
    "tree_diameter",
    "build_min_diameter_tree",
]


def approximate_center(points: np.ndarray) -> np.ndarray:
    """Centre of an approximate minimum enclosing ball (Ritter, 1990).

    Within ~5% of the optimal 1-centre in practice, O(n), fully
    vectorised — good enough to pick the artificial root, whose exact
    position only perturbs the diameter by lower-order terms.
    """
    validate_points(points)
    if points.shape[0] == 0:
        raise ValueError("cannot centre an empty point set")
    # Start from the two roughly-farthest points.
    first = points[0]
    a = points[int(np.argmax(distances_from(points, first)))]
    b = points[int(np.argmax(distances_from(points, a)))]
    center = (a + b) / 2.0
    radius = float(np.linalg.norm(b - a)) / 2.0
    # Grow the ball over any stragglers.
    for _ in range(32):  # converges in a handful of passes
        dist = distances_from(points, center)
        worst = int(np.argmax(dist))
        overshoot = float(dist[worst])
        if overshoot <= radius * (1.0 + 1e-12) + 1e-15:
            break
        new_radius = (radius + overshoot) / 2.0
        center = center + (points[worst] - center) * (
            (overshoot - new_radius) / overshoot
        )
        radius = new_radius
    return center


def _farthest_from(tree: MulticastTree, start: int) -> tuple[int, float]:
    """Farthest node from ``start`` along tree edges, iteratively.

    One pass of the classic two-sweep diameter algorithm, O(n) with an
    explicit stack (million-node trees must not recurse).
    """
    children = tree.children_lists()
    parent = tree.parent
    edge = tree.edge_lengths()

    dist = np.full(tree.n, -1.0)
    dist[start] = 0.0
    stack = [start]
    while stack:
        node = stack.pop()
        base = dist[node]
        for child in children[node]:
            if dist[child] < 0:
                dist[child] = base + edge[child]
                stack.append(child)
        par = int(parent[node])
        if par != node and dist[par] < 0:
            dist[par] = base + edge[node]
            stack.append(par)
    far = int(np.argmax(dist))
    return far, float(dist[far])


def tree_diameter(tree: MulticastTree) -> float:
    """Exact weighted diameter of the tree (two-sweep).

    The two-sweep argument (farthest node from anywhere is an endpoint
    of some diameter) holds for any tree with non-negative edge weights.
    """
    if tree.n <= 1:
        return 0.0
    end_a, _ = _farthest_from(tree, tree.root)
    _, diameter = _farthest_from(tree, end_a)
    return diameter


def build_min_diameter_tree(
    points,
    max_out_degree: int = 6,
    **grid_kwargs,
) -> tuple[BuildResult, float]:
    """Minimum-diameter degree-limited tree via the artificial root.

    :param points: ``(n, d)`` coordinates; no designated source — the
        root is chosen as the node nearest the approximate 1-centre.
    :param max_out_degree: fan-out budget (same semantics as
        :func:`~repro.core.builder.build_polar_grid_tree`).
    :param grid_kwargs: forwarded to the grid builder (``fit_annulus``,
        ``occupancy``, ...).
    :returns: ``(build_result, diameter)``. ``build_result.tree.root``
        is the chosen artificial root.
    """
    points = np.asarray(points, dtype=np.float64)
    validate_points(points)
    if points.shape[0] == 0:
        raise ValueError("cannot build over an empty point set")
    center = approximate_center(points)
    root = int(np.argmin(distances_from(points, center)))
    result = build_polar_grid_tree(
        points, root, max_out_degree, **grid_kwargs
    )
    return result, tree_diameter(result.tree)


@register_builder(
    "min-diameter",
    summary="Conclusion's variant: artificial central root minimising "
    "the tree diameter",
)
def _min_diameter_builder(points, source: int = 0, max_out_degree: int = 6, **grid_kwargs):
    """Registry adapter for :func:`build_min_diameter_tree`.

    ``source`` is advisory only — the variant picks its own root near
    the approximate 1-centre (recorded on ``result.tree.root``). The
    measured diameter lands on ``result.extras["diameter"]``.
    """
    result, diameter = build_min_diameter_tree(
        points, max_out_degree, **grid_kwargs
    )
    result.extras["diameter"] = diameter
    return result
