"""Equal-volume polar grids in any dimension (Sections III-A and IV-B).

The grid partitions an annulus ``r_min < |p - c| <= r_max`` around the
source into ``k + 1`` *rings*; ring ``i >= 1`` holds ``2^i`` equal-volume
cells and ring ``0`` (the inner region, "D0") is kept whole. Ring radii
satisfy

    r_i^d  =  r_min^d + (r_max^d - r_min^d) * 2^(i - k),

which for the unit disk (``r_min = 0``, ``r_max = 1``, ``d = 2``) reduces
to the paper's ``r_i = 1 / sqrt(2)^(k - i)`` exactly, and doubles each
ring's volume over the one inside it in every dimension.

Within a ring, cells are dyadic boxes in the *measure-uniform* angular
coordinates of :class:`~repro.geometry.polar.SphericalTransform`: going
from ring ``i`` to ring ``i + 1`` splits every cell in half along one
angular axis, cycling through the axes (this is the paper's "splitting
axes are chosen to cycle through all the axes"). In 2-D there is a single
angular axis and the construction reduces to the paper's aligned ring
segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.polar import SphericalTransform

__all__ = ["PolarGridND", "choose_ring_count"]

# Guard against pathological ring counts: 2^61 cells would overflow int64
# cell ids long before any realistic point set fills them.
MAX_RINGS = 60


def _ring_offsets(k: int) -> np.ndarray:
    """Global id of the first cell of each ring: ring i starts at 2^i - 1."""
    return (1 << np.arange(k + 2, dtype=np.int64)) - 1


@dataclass(frozen=True)
class PolarGridND:
    """An equal-volume hyperspherical grid around a centre point.

    :param center: grid centre (the multicast source), shape ``(d,)``.
    :param r_min: inner radius of the covered annulus (0 for a ball).
    :param r_max: outer radius; every point must satisfy
        ``|p - c| <= r_max``.
    :param k: number of subdivided rings. Ring ``k`` is the outermost.
    """

    center: np.ndarray
    r_min: float
    r_max: float
    k: int
    transform: SphericalTransform = field(default=None, compare=False)

    def __post_init__(self):
        center = np.asarray(self.center, dtype=np.float64)
        if center.ndim != 1 or center.shape[0] < 2:
            raise ValueError("grid centre must be a (d,) vector with d >= 2")
        object.__setattr__(self, "center", center)
        if not 0.0 <= self.r_min < self.r_max:
            raise ValueError("need 0 <= r_min < r_max")
        if not 1 <= self.k <= MAX_RINGS:
            raise ValueError(f"ring count must be in [1, {MAX_RINGS}]; got {self.k}")
        if self.transform is None:
            object.__setattr__(
                self, "transform", SphericalTransform(center.shape[0])
            )
        elif self.transform.dim != center.shape[0]:
            raise ValueError("transform dimension does not match the centre")

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.center.shape[0]

    @property
    def angular_axes(self) -> int:
        return self.dim - 1

    @property
    def total_cells(self) -> int:
        """Cells in rings 0..k: ``2^(k+1) - 1`` (the paper's ~``2^(k+1)``)."""
        return (1 << (self.k + 1)) - 1

    def cells_in_ring(self, ring: int) -> int:
        """``2^ring`` cells for subdivided rings; the inner region is one."""
        self._check_ring(ring)
        return 1 << ring

    def _check_ring(self, ring: int):
        if not 0 <= ring <= self.k:
            raise ValueError(f"ring index {ring} outside [0, {self.k}]")

    def ring_radius(self, i: int) -> float:
        """Outer radius of ring ``i`` (``r_k == r_max``)."""
        self._check_ring(i)
        d = self.dim
        lo = self.r_min**d
        hi = self.r_max**d
        return float((lo + (hi - lo) * 2.0 ** (i - self.k)) ** (1.0 / d))

    def ring_radii(self) -> np.ndarray:
        """All ring outer radii ``r_0 .. r_k``."""
        return np.array([self.ring_radius(i) for i in range(self.k + 1)])

    def cell_volume(self) -> float:
        """Common volume of the subdivided cells (D0 has twice this)."""
        from math import gamma, pi

        d = self.dim
        unit_ball = pi ** (d / 2.0) / gamma(d / 2.0 + 1.0)
        return unit_ball * (self.r_max**d - self.r_min**d) / (1 << (self.k + 1))

    # ------------------------------------------------------------------
    # per-ring angular layout
    # ------------------------------------------------------------------

    def axis_splits(self, ring: int) -> tuple[int, ...]:
        """Number of dyadic splits each angular axis has received by
        ``ring`` (so ring ``ring`` has ``2^splits[j]`` bins on axis ``j``).

        Splits are handed out round-robin: split ``l`` (taking ring ``l``
        to ring ``l + 1`` cell counts) goes to axis ``l mod (d-1)``.
        """
        self._check_ring(ring)
        axes = self.angular_axes
        base, extra = divmod(ring, axes)
        return tuple(base + (1 if j < extra else 0) for j in range(axes))

    def cell_bins(self, ring: int, cell: int) -> tuple[int, ...]:
        """Decode a cell id into per-axis bin indices (axis 0 slowest)."""
        splits = self.axis_splits(ring)
        bins = []
        for width in reversed(splits):
            bins.append(cell & ((1 << width) - 1))
            cell >>= width
        if cell:
            raise ValueError("cell id out of range for this ring")
        return tuple(reversed(bins))

    def cell_from_bins(self, ring: int, bins) -> int:
        """Inverse of :meth:`cell_bins`."""
        splits = self.axis_splits(ring)
        if len(bins) != len(splits):
            raise ValueError("one bin index per angular axis is required")
        cell = 0
        for width, bin_index in zip(splits, bins):
            if not 0 <= bin_index < (1 << width):
                raise ValueError(f"bin index {bin_index} out of range")
            cell = (cell << width) | bin_index
        return cell

    def split_axis(self, ring: int) -> int:
        """Angular axis split when going from ring ``ring`` to ``ring+1``."""
        return ring % self.angular_axes

    def parent_cell(self, ring: int, cell: int) -> tuple[int, int]:
        """The aligned cell of ring ``ring - 1`` containing this cell's
        angular box (the paper's "aligned with 2 segments on level i+1")."""
        self._check_ring(ring)
        if ring == 0:
            raise ValueError("the inner region has no parent cell")
        if ring == 1:
            return 0, 0
        bins = list(self.cell_bins(ring, cell))
        axis = self.split_axis(ring - 1)
        bins[axis] //= 2
        return ring - 1, self.cell_from_bins(ring - 1, bins)

    def child_cells(self, ring: int, cell: int) -> tuple[tuple[int, int], ...]:
        """The two aligned cells of ring ``ring + 1`` (empty for ring k)."""
        self._check_ring(ring)
        if ring == self.k:
            return ()
        if ring == 0:
            return ((1, 0), (1, 1))
        bins = list(self.cell_bins(ring, cell))
        axis = self.split_axis(ring)
        children = []
        for half in (0, 1):
            child_bins = list(bins)
            child_bins[axis] = 2 * bins[axis] + half
            children.append((ring + 1, self.cell_from_bins(ring + 1, child_bins)))
        return tuple(children)

    def cell_t_box(self, ring: int, cell: int) -> tuple[tuple[float, float], ...]:
        """Angular bounds of the cell, per axis, in measure-uniform units."""
        splits = self.axis_splits(ring)
        bins = self.cell_bins(ring, cell)
        box = []
        for width, bin_index in zip(splits, bins):
            count = 1 << width
            box.append((bin_index / count, (bin_index + 1) / count))
        return tuple(box)

    def cell_radial_range(self, ring: int) -> tuple[float, float]:
        """Radial bounds ``(r_lo, r_hi]`` of cells in ``ring``."""
        self._check_ring(ring)
        lo = self.r_min if ring == 0 else self.ring_radius(ring - 1)
        return lo, self.ring_radius(ring)

    # ------------------------------------------------------------------
    # global ids
    # ------------------------------------------------------------------

    def global_id(self, ring, cell):
        """Flatten ``(ring, cell)`` to a single id: ring i starts at 2^i - 1."""
        ring = np.asarray(ring, dtype=np.int64)
        cell = np.asarray(cell, dtype=np.int64)
        return ((np.int64(1) << ring) - 1) + cell

    def ring_of_global(self, gid: int) -> tuple[int, int]:
        """Inverse of :meth:`global_id` for a scalar id."""
        gid = int(gid)
        ring = int(gid + 1).bit_length() - 1
        return ring, gid - ((1 << ring) - 1)

    # ------------------------------------------------------------------
    # point assignment (vectorised)
    # ------------------------------------------------------------------

    def assign_radial(self, rho: np.ndarray) -> np.ndarray:
        """Ring index per point from its radius.

        Points at ``r_min`` or below land in ring 0 (only the source
        should ever be below it); points within rounding of ``r_max``
        land in ring ``k``.
        """
        d = self.dim
        lo = self.r_min**d
        hi = self.r_max**d
        u = (rho.astype(np.float64) ** d - lo) / (hi - lo)
        np.clip(u, 0.0, 1.0, out=u)
        ring = np.zeros(rho.shape[0], dtype=np.int64)
        positive = u > 0.0
        with np.errstate(divide="ignore"):
            # The small epsilon keeps points sitting exactly on circle i
            # in ring i ("r_{i-1} < rho <= r_i") despite float rounding.
            ring[positive] = np.ceil(
                self.k + np.log2(u[positive]) - 1e-9
            ).astype(np.int64)
        np.clip(ring, 0, self.k, out=ring)
        return ring

    def assign(self, rho: np.ndarray, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised ``(ring, cell)`` assignment for transformed points.

        :param rho: ``(n,)`` radii around the grid centre.
        :param t: ``(n, d-1)`` measure-uniform angular coordinates.
        :returns: integer arrays ``(ring, cell)``.
        """
        if t.ndim != 2 or t.shape[1] != self.angular_axes:
            raise ValueError(
                f"expected t of shape (n, {self.angular_axes}), got {t.shape}"
            )
        ring = self.assign_radial(rho)
        cell = np.zeros(rho.shape[0], dtype=np.int64)
        for r in range(1, self.k + 1):
            mask = ring == r
            if not np.any(mask):
                continue
            code = np.zeros(int(mask.sum()), dtype=np.int64)
            for width, column in zip(self.axis_splits(r), t[mask].T):
                bins = np.minimum(
                    (column * (1 << width)).astype(np.int64), (1 << width) - 1
                )
                code = (code << width) | bins
            cell[mask] = code
        return ring, cell

    def assign_points(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: transform raw points and assign them."""
        rho, t = self.transform.transform(points, self.center)
        ring, cell = self.assign(rho, t)
        return ring, cell

    def assign_point(self, point) -> tuple[int, int, float, np.ndarray]:
        """Single-point assignment for incremental membership events.

        Shares :meth:`assign` exactly (one-row vectorised call), so a
        point joining a live grid lands in the same cell a full rebuild
        would put it in. Radii beyond ``r_max`` are clipped into ring
        ``k`` — the caller decides whether that counts as drift.

        :returns: ``(ring, cell, rho, t)`` with ``t`` of shape ``(d-1,)``.
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dim,):
            raise ValueError(
                f"expected a ({self.dim},) point, got shape {point.shape}"
            )
        rho, t = self.transform.transform(point[None, :], self.center)
        ring, cell = self.assign(rho, t)
        return int(ring[0]), int(cell[0]), float(rho[0]), t[0]

    def cell_anchor(self, ring: int, cell: int, face: str = "inner") -> np.ndarray:
        """Centre of the cell's inner or outer face in ambient coordinates.

        The inner anchor is the point the Section III-B representative
        rule minimises distance to; the definition matches the builder's
        per-receiver computation (the bin midpoint of the cell's angular
        box at radius ``r_lo``), so incremental re-picks agree with a
        from-scratch build.
        """
        if face not in ("inner", "outer"):
            raise ValueError(f"face must be 'inner' or 'outer', got {face!r}")
        r_lo, r_hi = self.cell_radial_range(ring)
        box = self.cell_t_box(ring, cell)
        t_mid = np.array([[(lo + hi) / 2.0 for lo, hi in box]])
        radius = r_lo if face == "inner" else r_hi
        return self.center + radius * self.transform.direction(t_mid)[0]

    def ancestor_cells(self, ring: int, cell: int):
        """Yield ``(ring, cell)`` ancestors from the parent down to D0."""
        self._check_ring(ring)
        while ring > 0:
            ring, cell = self.parent_cell(ring, cell)
            yield ring, cell

    def occupancy_ok(self, ring: np.ndarray, cell: np.ndarray) -> bool:
        """Property 3 of Section III-A: every cell of rings ``1..k-1``
        holds at least one point (the outermost ring may have holes)."""
        if self.k == 1:
            return True
        inner = (ring >= 1) & (ring <= self.k - 1)
        if not np.any(inner):
            return False
        gid = self.global_id(ring[inner], cell[inner])
        # Cells of rings 1..k-1 occupy global ids [1, 2^k - 2].
        required = (1 << self.k) - 2
        counts = np.bincount(gid, minlength=required + 1)
        return int(np.count_nonzero(counts[1:])) == required

    def parent_cells(self, ring: int, cells: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`parent_cell` for many cells of one ring."""
        self._check_ring(ring)
        if ring == 0:
            raise ValueError("the inner region has no parent cell")
        cells = np.asarray(cells, dtype=np.int64)
        if ring == 1:
            return np.zeros_like(cells)
        splits = self.axis_splits(ring)
        axis = self.split_axis(ring - 1)
        bins = []
        remainder = cells.copy()
        for width in reversed(splits):
            bins.append(remainder & ((1 << width) - 1))
            remainder >>= width
        bins.reverse()
        bins[axis] = bins[axis] >> 1
        out = np.zeros_like(cells)
        for width, column in zip(self.axis_splits(ring - 1), bins):
            out = (out << width) | column
        return out

    def connectivity_ok(self, ring: np.ndarray, cell: np.ndarray) -> bool:
        """Relaxed occupancy for general convex regions (Section IV-C).

        When the source is off-centre, whole angular sectors of the grid
        lie outside the region and can never be occupied, so property 3
        fails for any useful ``k``. For a *convex* region, however, the
        straight segment from the source to any point stays inside the
        region at a constant angular coordinate, so the radially-inward
        parent of a cell that intersects the region also intersects it.
        It therefore suffices that every occupied cell's parent cell is
        occupied — the core tree stays connected and the degree budget
        is untouched (each cell still has at most two child cells).
        """
        occupied = np.zeros(self.total_cells, dtype=bool)
        occupied[self.global_id(ring, cell)] = True
        for r in range(2, self.k + 1):
            mask = ring == r
            if not np.any(mask):
                continue
            parents = self.parent_cells(r, cell[mask])
            if not np.all(occupied[self.global_id(r - 1, parents)]):
                return False
        return True


def choose_ring_count(
    grid_factory,
    rho: np.ndarray,
    t: np.ndarray,
    n_points: int | None = None,
    occupancy: str = "full",
) -> int:
    """Largest ``k`` whose grid satisfies the occupancy property.

    :param grid_factory: callable ``k -> PolarGridND``.
    :param rho: radii of the points to cover.
    :param t: their angular coordinates.
    :param n_points: override for the count used to cap the search
        (defaults to ``len(rho)``).
    :param occupancy: ``"full"`` for the paper's property 3 (every inner
        cell non-empty — right for sources well inside the point cloud),
        ``"connected"`` for the relaxed parent-chain rule that handles
        off-centre sources in convex regions (see
        :meth:`PolarGridND.connectivity_ok`).
    :returns: the chosen ``k`` (at least 1 — a 1-ring grid is always
        valid because it has no interior rings to keep occupied).
    """
    if occupancy not in ("full", "connected"):
        raise ValueError(f"unknown occupancy rule {occupancy!r}")
    n = n_points if n_points is not None else rho.shape[0]
    # Rings 1..k-1 hold 2^k - 2 cells, so k can never exceed log2(n + 2)
    # under the full rule; the paper's eq. (5) says the achieved k is
    # about half that. The connected rule can afford a deeper grid, but
    # going past log2(n) + a margin only adds empty leaf cells.
    k_cap = min(MAX_RINGS, max(1, int(np.floor(np.log2(n + 2))) + 2))
    for k in range(k_cap, 1, -1):
        grid = grid_factory(k)
        ring, cell = grid.assign(rho, t)
        if occupancy == "full":
            ok = grid.occupancy_ok(ring, cell)
        else:
            ok = grid.connectivity_ok(ring, cell)
        if ok:
            return k
    return 1
