"""The square-grid bisection variant of Section II.

The paper remarks that the bisection algorithm "is easier to describe
for a square" before developing the polar version it actually needs.
This module implements that square version — a quadtree construction —
both because it is the natural tool when the point cloud is a box
rather than a disk, and as an ablation partner for the polar variant.

Construction: the bounding box is split at its centre into ``2^d``
equal sub-boxes; the local source connects the point *closest to
itself* in each non-empty sub-box; recursion continues inside each
sub-box with its representative as local source. Out-degree is ``2^d``
(4 in the plane); the binary variant halves one axis at a time,
cycling, for out-degree 2.

Path-length bound (the square analogue of equation (1)): each level's
hop stays inside a box whose diagonal halves every ``d`` splits, so

    l_p  <=  2 * sqrt(d) * side     (full variant)

for a top box of side ``side`` — within a constant factor of the
optimum, since any tree must span the box (OPT >= side / 2 when the box
is minimal).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.builder import BuildResult
from repro.core.registry import register_builder
from repro.core.tree import MulticastTree
from repro.geometry.points import validate_points

__all__ = ["build_quadtree_tree", "quadtree_path_bound"]


def quadtree_path_bound(side: float, dim: int, max_out_degree: int) -> float:
    """Upper bound on any path of the square bisection.

    ``2 * sqrt(d) * side`` for the full variant; the binary variant uses
    up to ``d`` hops per full halving cycle, multiplying the bound by
    ``d``.
    """
    if side < 0:
        raise ValueError("side must be non-negative")
    if dim < 1:
        raise ValueError("dim must be positive")
    hops = 1.0 if max_out_degree >= (1 << dim) else float(dim)
    return 2.0 * math.sqrt(dim) * side * hops


def _nearest(members, points, anchor):
    """Position in ``members`` of the point nearest ``anchor``."""
    best = 0
    best_d = math.inf
    for pos, idx in enumerate(members):
        d = 0.0
        p = points[idx]
        for a, b in zip(p, anchor):
            d += (a - b) * (a - b)
        if d < best_d:
            best_d = d
            best = pos
    return best


def _run_full(stack, points, parent, dim):
    """Full mode: one step splits every axis (2^d sub-boxes)."""
    while stack:
        source, members, (lower, upper) = stack.pop()
        if not members:
            continue
        if len(members) == 1:
            parent[members[0]] = source
            continue
        mid = [(lo + hi) / 2.0 for lo, hi in zip(lower, upper)]
        buckets = {}
        for idx in members:
            code = 0
            p = points[idx]
            for axis in range(dim):
                if p[axis] >= mid[axis]:
                    code |= 1 << axis
            buckets.setdefault(code, []).append(idx)
        source_point = points[source]
        for code, group in buckets.items():
            sub_lower = tuple(
                mid[a] if code & (1 << a) else lower[a] for a in range(dim)
            )
            sub_upper = tuple(
                upper[a] if code & (1 << a) else mid[a] for a in range(dim)
            )
            pos = _nearest(group, points, source_point)
            rep = group.pop(pos)
            parent[rep] = source
            if group:
                stack.append((rep, group, (sub_lower, sub_upper)))


def _run_binary(stack, points, parent, dim):
    """Binary mode: halve one axis per step, cycling through the axes."""
    while stack:
        source, members, (lower, upper), axis = stack.pop()
        if not members:
            continue
        if len(members) <= 2:
            for idx in members:
                parent[idx] = source
            continue
        mid = (lower[axis] + upper[axis]) / 2.0
        low = [i for i in members if points[i][axis] < mid]
        high = [i for i in members if points[i][axis] >= mid]
        low_box = (
            lower,
            tuple(mid if a == axis else upper[a] for a in range(dim)),
        )
        high_box = (
            tuple(mid if a == axis else lower[a] for a in range(dim)),
            upper,
        )
        next_axis = (axis + 1) % dim
        source_point = points[source]
        for group, box in ((low, low_box), (high, high_box)):
            if not group:
                continue
            pos = _nearest(group, points, source_point)
            rep = group.pop(pos)
            parent[rep] = source
            if group:
                stack.append((rep, group, box, next_axis))


@register_builder(
    "quadtree",
    summary="square-grid bisection over the bounding box (2^d / binary)",
)
def build_quadtree_tree(
    points,
    source: int = 0,
    max_out_degree: int = 4,
) -> BuildResult:
    """Square-grid bisection over the points' bounding box.

    :param max_out_degree: ``2^d`` or more selects the full quadtree
        (out-degree 4 in the plane); ``[2, 2^d)`` the axis-cycling
        binary variant.
    """
    started = time.perf_counter()
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    validate_points(points)
    n, dim = points.shape
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if max_out_degree < 2:
        raise ValueError("max_out_degree must be at least 2")

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    receivers = [i for i in range(n) if i != source]

    if receivers:
        lower = points.min(axis=0)
        upper = points.max(axis=0)
        # Make the box square (equal sides) and open the top boundary a
        # hair so max-coordinate points land inside their half.
        side = float((upper - lower).max())
        if side == 0.0:
            side = 1.0
        pad = side * 1e-12 + 1e-15
        box = (
            tuple(float(v) for v in lower),
            tuple(float(v) + side + pad for v in lower),
        )
        point_rows = points.tolist()
        if max_out_degree >= (1 << dim):
            _run_full(
                [(source, receivers, box)], point_rows, parent, dim
            )
        else:
            _run_binary(
                [(source, receivers, box, 0)], point_rows, parent, dim
            )

    tree = MulticastTree(points=points, parent=parent, root=source)
    return BuildResult(
        tree=tree,
        max_out_degree=max_out_degree,
        build_seconds=time.perf_counter() - started,
    )
