"""The Bisection algorithm of Section II — constant-factor trees in a cell.

Given points inside a ring segment (2-D) or its d-dimensional analogue (a
radial interval times a box in measure-uniform angular coordinates), the
algorithm recursively quarters the segment, connects the local source to a
*representative* of each non-empty sub-segment (the point whose radius is
closest to the source's radius), and recurses with the representative as
the sub-segment's source.

Three variants live here:

``full`` (2-D out-degree 4, d-dim out-degree ``2^d``)
    one split per axis per step — the paper's Section II algorithm and its
    Section IV-B extension;
``relay2`` (2-D out-degree 2)
    the paper's binary modification: the source connects two *relay*
    points of the segment (radius closest to its own), and each relay
    connects representatives of two of the four sub-segments;
``binary`` (d-dim out-degree 2)
    axis-cycling halving: each step splits the cell along one axis
    (radius, then each angular axis in turn) and connects the two
    sub-segment representatives directly — the natural d-dimensional
    binary form (the paper states the 3-D binary variant exists without
    spelling it out; see DESIGN.md).

All variants are iterative (explicit work stack): recursion depth on
degenerate inputs is linear in the number of points, which would overflow
CPython's stack long before the 5M-node experiments.

Everything here is deliberately plain Python over small index lists: the
polar-grid pipeline calls it once per grid cell, and cells hold O(1)
points on average, where list arithmetic beats numpy dispatch by an order
of magnitude.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.points import validate_points
from repro.geometry.polar import to_polar
from repro.geometry.rings import RingSegment

__all__ = [
    "bisection_tree_2d",
    "bisection_tree_nd",
    "bounding_segment_far_center",
]


# ----------------------------------------------------------------------
# d-dimensional cells
#
# A cell is (r_lo, r_hi, box) where box is a tuple of (lo, hi) pairs in
# measure-uniform angular coordinates. Radius splits at the Euclidean
# midpoint (as in the paper's Section II); angular axes split at the box
# midpoint, which is an exact equal-measure split by construction of the
# coordinates.
# ----------------------------------------------------------------------


def _pick_representative(candidates, rho, source_rho):
    """Index (into ``candidates``) of the point with radius closest to
    ``source_rho`` — the paper's representative rule."""
    best = 0
    best_gap = abs(rho[candidates[0]] - source_rho)
    for pos in range(1, len(candidates)):
        gap = abs(rho[candidates[pos]] - source_rho)
        if gap < best_gap:
            best = pos
            best_gap = gap
    return best


def _partition_full(indices, rho, t_axes, r_lo, r_hi, box):
    """Split ``indices`` into the ``2^d`` sub-cells of one full step.

    Returns parallel lists ``(groups, sub_cells)`` holding only non-empty
    sub-cells. Sub-cell bit layout: bit 0 is the radial half (1 = outer),
    bit ``1 + axis`` is the angular half of that axis.
    """
    r_mid = 0.5 * (r_lo + r_hi)
    axes = len(box)
    mids = [0.5 * (lo + hi) for lo, hi in box]
    buckets = {}
    for idx in indices:
        code = 1 if rho[idx] > r_mid else 0
        for axis in range(axes):
            if t_axes[axis][idx] >= mids[axis]:
                code |= 1 << (1 + axis)
        buckets.setdefault(code, []).append(idx)

    groups = []
    cells = []
    for code, members in buckets.items():
        lo_r, hi_r = (r_mid, r_hi) if code & 1 else (r_lo, r_mid)
        sub_box = tuple(
            (mids[axis], box[axis][1])
            if code & (1 << (1 + axis))
            else (box[axis][0], mids[axis])
            for axis in range(axes)
        )
        groups.append(members)
        cells.append((lo_r, hi_r, sub_box))
    return groups, cells


def _run_full(stack, rho, t_axes, parent):
    """Drain a work stack of ``(source, indices, cell)`` items, full mode."""
    while stack:
        source, indices, (r_lo, r_hi, box) = stack.pop()
        if not indices:
            continue
        if len(indices) == 1:
            parent[indices[0]] = source
            continue
        groups, cells = _partition_full(indices, rho, t_axes, r_lo, r_hi, box)
        source_rho = rho[source]
        for members, cell in zip(groups, cells):
            pos = _pick_representative(members, rho, source_rho)
            rep = members.pop(pos)
            parent[rep] = source
            if members:
                stack.append((rep, members, cell))


def _run_binary_nd(stack, rho, t_axes, parent):
    """Axis-cycling out-degree-2 mode: items carry the axis to split next.

    Stack items are ``(source, indices, cell, axis)`` with ``axis`` in
    ``0 .. d-1`` (0 = radius).
    """
    axes = len(t_axes)
    num_axes = axes + 1
    while stack:
        source, indices, (r_lo, r_hi, box), axis = stack.pop()
        if not indices:
            continue
        if len(indices) <= 2:
            for idx in indices:
                parent[idx] = source
            continue
        if axis == 0:
            mid = 0.5 * (r_lo + r_hi)
            low = [i for i in indices if rho[i] <= mid]
            high = [i for i in indices if rho[i] > mid]
            halves = [
                (low, (r_lo, mid, box)),
                (high, (mid, r_hi, box)),
            ]
        else:
            t = t_axes[axis - 1]
            lo, hi = box[axis - 1]
            mid = 0.5 * (lo + hi)
            low = [i for i in indices if t[i] < mid]
            high = [i for i in indices if t[i] >= mid]
            box_low = box[: axis - 1] + ((lo, mid),) + box[axis:]
            box_high = box[: axis - 1] + ((mid, hi),) + box[axis:]
            halves = [
                (low, (r_lo, r_hi, box_low)),
                (high, (r_lo, r_hi, box_high)),
            ]
        next_axis = (axis + 1) % num_axes
        source_rho = rho[source]
        for members, cell in halves:
            if not members:
                continue
            pos = _pick_representative(members, rho, source_rho)
            rep = members.pop(pos)
            parent[rep] = source
            if members:
                stack.append((rep, members, cell, next_axis))


def _pick_two_relays(indices, rho, source_rho):
    """Positions of the two points with radius closest to ``source_rho``."""
    best = None
    second = None
    best_gap = second_gap = math.inf
    for pos, idx in enumerate(indices):
        gap = abs(rho[idx] - source_rho)
        if gap < best_gap:
            second, second_gap = best, best_gap
            best, best_gap = pos, gap
        elif gap < second_gap:
            second, second_gap = pos, gap
    return best, second


def _run_relay2(stack, rho, t_axes, parent):
    """The paper's 2-D out-degree-2 bisection (relay scheme).

    Each step: source -> two relays (radius closest to the source's);
    relay 1 -> representatives of the first two non-empty sub-segments,
    relay 2 -> the remaining ones. Sub-segments are ordered so the two
    radial halves of the same angular half are adjacent, keeping each
    relay's work within one angular half whenever possible.
    """
    theta_t = t_axes[0]
    while stack:
        source, indices, (r_lo, r_hi, box) = stack.pop()
        if not indices:
            continue
        if len(indices) <= 2:
            for idx in indices:
                parent[idx] = source
            continue

        source_rho = rho[source]
        pos_a, pos_b = _pick_two_relays(indices, rho, source_rho)
        # Remove the later position first so the earlier stays valid.
        hi_pos, lo_pos = max(pos_a, pos_b), min(pos_a, pos_b)
        relay_b = indices.pop(hi_pos)
        relay_a = indices.pop(lo_pos)
        parent[relay_a] = source
        parent[relay_b] = source

        r_mid = 0.5 * (r_lo + r_hi)
        (t_lo, t_hi) = box[0]
        t_mid = 0.5 * (t_lo + t_hi)
        quadrants = [[], [], [], []]
        for idx in indices:
            code = (2 if theta_t[idx] >= t_mid else 0) | (
                1 if rho[idx] > r_mid else 0
            )
            quadrants[code].append(idx)
        sub_cells = [
            (r_lo, r_mid, ((t_lo, t_mid),)),
            (r_mid, r_hi, ((t_lo, t_mid),)),
            (r_lo, r_mid, ((t_mid, t_hi),)),
            (r_mid, r_hi, ((t_mid, t_hi),)),
        ]
        non_empty = [q for q in range(4) if quadrants[q]]
        for seq, quadrant in enumerate(non_empty):
            relay = relay_a if seq < 2 else relay_b
            members = quadrants[quadrant]
            pos = _pick_representative(members, rho, rho[relay])
            rep = members.pop(pos)
            parent[rep] = relay
            if members:
                stack.append((rep, members, sub_cells[quadrant]))


# ----------------------------------------------------------------------
# public in-cell entry points (used by the polar-grid builder)
# ----------------------------------------------------------------------


def bisection_tree_2d(
    rho,
    theta_t,
    indices,
    source,
    r_range,
    t_range,
    parent,
    max_out_degree: int,
):
    """Connect ``indices`` under ``source`` inside one 2-D ring segment.

    :param rho: indexable radii for *all* node ids (list for speed).
    :param theta_t: indexable angular coordinate ``theta / (2*pi)``,
        already shifted so the segment does not wrap around zero.
    :param indices: mutable list of node ids to connect (source excluded).
        Consumed by the call.
    :param source: node id acting as the local root.
    :param r_range: ``(r_lo, r_hi)`` of the segment.
    :param t_range: ``(t_lo, t_hi)`` of the segment (units of full turns).
    :param parent: writeable parent mapping (list or int array).
    :param max_out_degree: 4 or more selects the full variant; 2 or 3 the
        relay variant.
    :raises ValueError: if ``max_out_degree < 2``.
    """
    if max_out_degree < 2:
        raise ValueError("bisection requires out-degree at least 2")
    cell = (r_range[0], r_range[1], (tuple(t_range),))
    stack = [(source, list(indices), cell)]
    if max_out_degree >= 4:
        _run_full(stack, rho, (theta_t,), parent)
    else:
        _run_relay2(stack, rho, (theta_t,), parent)


def bisection_tree_nd(
    rho,
    t_axes,
    indices,
    source,
    r_range,
    t_box,
    parent,
    max_out_degree: int,
):
    """Connect ``indices`` under ``source`` inside one d-dimensional cell.

    :param rho: indexable radii for all node ids.
    :param t_axes: sequence of ``d - 1`` indexable angular coordinates.
    :param t_box: tuple of ``(lo, hi)`` per angular axis.
    :param max_out_degree: ``2^d`` or more selects the full variant
        (out-degree ``2^d``); anything in ``[2, 2^d)`` the binary variant.
    """
    if max_out_degree < 2:
        raise ValueError("bisection requires out-degree at least 2")
    dim = len(t_axes) + 1
    cell = (r_range[0], r_range[1], tuple(tuple(b) for b in t_box))
    if max_out_degree >= (1 << dim):
        stack = [(source, list(indices), cell)]
        _run_full(stack, rho, t_axes, parent)
    else:
        stack = [(source, list(indices), cell, 0)]
        _run_binary_nd(stack, rho, t_axes, parent)


# ----------------------------------------------------------------------
# standalone constant-factor construction (Section II, Theorem 1)
# ----------------------------------------------------------------------


def bounding_segment_far_center(
    points: np.ndarray,
) -> tuple[np.ndarray, RingSegment]:
    """Place a far ring centre under the point cloud, per Section II.

    The paper requires the covering segment to satisfy ``sin a > 5a/6``
    (small angle) and ``r > 0.6 R``. Putting the centre at distance
    ``1.5 * diag`` below the bounding box achieves both:
    ``R <= D + diag`` gives ``r/R >= D / (D + diag) = 0.6``, and the
    angular width is at most ``diag / D = 2/3 < 1.02`` radians.

    :returns: ``(center, segment)`` — the ring centre and the minimal
        covering :class:`~repro.geometry.rings.RingSegment` around it.
    """
    validate_points(points, dim=2)
    lower = points.min(axis=0)
    upper = points.max(axis=0)
    diag = float(np.linalg.norm(upper - lower))
    if diag == 0.0:
        diag = 1.0  # all points coincide; any well-formed segment works
    distance = 1.5 * diag
    center = np.array([(lower[0] + upper[0]) / 2.0, lower[1] - distance])

    rho, theta = to_polar(points, center)
    # The cloud sits well above the centre, so angles cluster around pi/2
    # and never straddle the branch cut at 0.
    theta_lo = float(theta.min())
    theta_hi = float(theta.max())
    # The angular interval is half-open at the top; widen it a hair so
    # the maximum-angle point stays inside.
    span = max((theta_hi - theta_lo) * (1.0 + 1e-12) + 1e-12, 1e-9)
    r_lo = float(rho.min())
    r_hi = float(rho.max())
    if r_hi <= r_lo:
        r_hi = r_lo + 1e-12
    # Open the inner boundary a hair so the innermost point is inside.
    r_lo = math.nextafter(r_lo, 0.0)
    segment = RingSegment(
        r_inner=r_lo, r_outer=r_hi, theta_start=theta_lo, theta_span=span
    )
    return center, segment
