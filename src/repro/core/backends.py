"""Build-backend registry: selecting how a tree gets computed.

Every builder computes the *same* tree — same edges, same radius, bit
for bit (differentially enforced by ``tests/test_backends.py`` through
the oracle) — but three interchangeable execution strategies exist:

``"reference"``
    The original per-cell Python loops (``core_network.wire_cells`` +
    the stack-based ``bisection`` variants). Slow past ~10^5 points but
    deliberately close to the paper's pseudocode; it is the ground
    truth the accelerated paths are diffed against.
``"numpy"`` (default)
    The frontier-vectorised path of :mod:`repro.core.vectorized`:
    whole-build array passes, no per-point Python.
``"numba"``
    The numpy path with the segmented reductions JIT-compiled by numba
    (:mod:`repro.core.accel`). **Feature-flagged**: when numba is not
    installed (or ``REPRO_NUMBA=0``), requesting ``"numba"`` silently
    falls back to ``"numpy"`` — same results, numpy speed — so code can
    ask for it unconditionally.

Selection order: explicit ``backend=`` argument, else the
``REPRO_BUILD_BACKEND`` environment variable, else ``"numpy"``. The
environment hook is how the CLI's ``--backend`` flag reaches process
pool workers without widening the task protocol, and how CI runs the
tier-1 suite per backend (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import os

import repro.obs as obs
from repro.core.accel import NUMBA_AVAILABLE

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BACKEND_ENV",
    "resolve_backend",
    "numba_available",
]

BACKENDS = ("reference", "numpy", "numba")
DEFAULT_BACKEND = "numpy"
BACKEND_ENV = "REPRO_BUILD_BACKEND"


def numba_available() -> bool:
    """Whether the ``"numba"`` backend would actually JIT here."""
    return NUMBA_AVAILABLE


def resolve_backend(requested: str | None = None) -> str:
    """Resolve a backend request to the backend that will run.

    :param requested: explicit choice, or ``None`` to consult the
        ``REPRO_BUILD_BACKEND`` environment variable and then the
        default (``"numpy"``).
    :returns: one of :data:`BACKENDS`; ``"numba"`` degrades to
        ``"numpy"`` when numba is unavailable (counted on the
        ``build.backend.numba_fallback.total`` metric).
    :raises ValueError: for names outside :data:`BACKENDS`.
    """
    name = requested
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown build backend {name!r}; choose from "
            + ", ".join(BACKENDS)
        )
    if name == "numba" and not NUMBA_AVAILABLE:
        obs.add("build.backend.numba_fallback.total")
        return "numpy"
    return name
