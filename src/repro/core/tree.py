"""Rooted multicast trees over Euclidean point sets.

The tree is stored as a flat *parent array*: ``parent[v]`` is the index of
``v``'s parent, and ``parent[root] == root``. Nothing else is materialised
unless asked for, which keeps a 5,000,000-node tree at two numpy arrays.

Delay evaluation uses pointer doubling: ``log2(depth)`` vectorised passes
instead of a Python-level traversal, so evaluating the paper's headline
metric (the tree radius / maximum source-to-receiver delay) costs
``O(n log depth)`` with numpy constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.points import validate_points

__all__ = ["MulticastTree", "TreeInvariantError"]


class TreeInvariantError(ValueError):
    """Raised when a parent array does not describe a valid rooted tree."""


@dataclass
class MulticastTree:
    """A rooted spanning tree over an ``(n, d)`` point set.

    :param points: host coordinates, shape ``(n, d)``.
    :param parent: parent indices, shape ``(n,)``; ``parent[root] == root``.
    :param root: index of the source node.

    Construction does *not* validate (builders create trees they know are
    valid, and validation costs a full doubling pass); call
    :meth:`validate` on anything that crossed an API boundary.
    """

    points: np.ndarray
    parent: np.ndarray
    root: int

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float64)
        validate_points(self.points)
        self.parent = np.asarray(self.parent, dtype=np.int64)
        if self.parent.shape != (self.points.shape[0],):
            raise ValueError(
                f"parent array has shape {self.parent.shape}, expected "
                f"({self.points.shape[0]},)"
            )
        self.root = int(self.root)
        if not 0 <= self.root < self.n:
            raise ValueError(f"root index {self.root} out of range for n={self.n}")
        self._edge_lengths = None
        self._root_delays = None
        self._depths = None

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes (source included)."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the embedding space."""
        return self.points.shape[1]

    @classmethod
    def from_edges(
        cls, points: np.ndarray, edges, root: int, *, group: str | None = None
    ) -> "MulticastTree":
        """Build from ``(parent, child)`` pairs; missing children are an error.

        All defects are collected before raising — the single
        :class:`TreeInvariantError` names *every* node with two parents
        and every parentless node, so fuzz shrinkers and crash artifacts
        see the full extent of a bad edge list instead of just its first
        symptom. ``group`` labels the error message in multi-group
        (packing) runs, so an artifact covering several trees names the
        one whose edge list was bad.
        """
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        parent = np.full(n, -1, dtype=np.int64)
        parent[root] = root
        multi_parent: list[int] = []
        for u, v in edges:
            if parent[v] != -1:
                if v not in multi_parent:
                    multi_parent.append(int(v))
                continue
            parent[v] = u
        orphans = np.flatnonzero(parent < 0).tolist()
        if multi_parent or orphans:
            problems = []
            if multi_parent:
                problems.append(
                    f"nodes with two parents or more: {sorted(multi_parent)}"
                )
            if orphans:
                problems.append(f"nodes with no parent: {orphans}")
            prefix = f"group {group!r}: " if group is not None else ""
            raise TreeInvariantError(
                f"{prefix}edge list does not describe a rooted tree: "
                + "; ".join(problems)
            )
        return cls(points=points, parent=parent, root=root)

    def edges(self) -> np.ndarray:
        """``(n-1, 2)`` array of ``(parent, child)`` pairs."""
        children = np.flatnonzero(np.arange(self.n) != self.root)
        return np.stack([self.parent[children], children], axis=1)

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------

    def out_degrees(self) -> np.ndarray:
        """Number of children of every node."""
        counts = np.bincount(self.parent, minlength=self.n)
        counts[self.root] -= 1  # the root's self-loop is not a child
        return counts

    def max_out_degree(self) -> int:
        """The largest fan-out used anywhere in the tree."""
        if self.n == 1:
            return 0
        return int(self.out_degrees().max())

    # ------------------------------------------------------------------
    # delays (pointer doubling)
    # ------------------------------------------------------------------

    def edge_lengths(self) -> np.ndarray:
        """Euclidean length of each node's parent edge (0 for the root)."""
        if self._edge_lengths is None:
            diff = self.points - self.points[self.parent]
            self._edge_lengths = np.sqrt(np.sum(diff * diff, axis=1))
        return self._edge_lengths

    def _double(self, accumulate: np.ndarray) -> np.ndarray:
        """Pointer-doubling accumulation of per-edge values toward the root.

        :param accumulate: per-node value of its parent edge.
        :returns: per-node sum along the node-to-root path.
        :raises TreeInvariantError: if the parent array contains a cycle
            (doubling then fails to converge within ``log2(n) + 2`` passes).
        """
        total = accumulate.copy()
        total[self.root] = 0
        ancestor = self.parent.copy()
        # A valid tree has depth < n, so log2(n) + 2 doubling passes suffice.
        max_rounds = int(np.ceil(np.log2(max(self.n, 2)))) + 2
        for _ in range(max_rounds):
            if np.all(ancestor == self.root):
                return total
            total += total[ancestor]
            ancestor = ancestor[ancestor]
        if np.all(ancestor == self.root):
            return total
        raise TreeInvariantError(
            "parent array does not converge to the root; it contains a cycle "
            "or a second root"
        )

    def accumulate_to_root(self, per_edge) -> np.ndarray:
        """Sum arbitrary per-parent-edge values along each root path.

        The generalisation of :meth:`root_delays` that the pluggable
        cost-model layer (:mod:`repro.costmodel`) evaluates non-Euclidean
        delays with: ``per_edge[v]`` is the cost of ``v``'s parent edge
        (the root's entry is ignored), and the result is each node's
        path total — one ``O(n log depth)`` doubling pass, uncached.
        """
        per_edge = np.asarray(per_edge, dtype=np.float64)
        if per_edge.shape != (self.n,):
            raise ValueError(
                f"per_edge must have shape ({self.n},); got {per_edge.shape}"
            )
        return self._double(per_edge)

    def root_delays(self) -> np.ndarray:
        """Delay (path length) from the root to every node.

        This is the per-receiver multicast delay under the paper's model
        where unicast delay equals Euclidean distance.
        """
        if self._root_delays is None:
            self._root_delays = self._double(self.edge_lengths())
        return self._root_delays

    def depths(self) -> np.ndarray:
        """Hop count from the root to every node."""
        if self._depths is None:
            hops = np.ones(self.n, dtype=np.float64)
            self._depths = self._double(hops).astype(np.int64)
        return self._depths

    def radius(self) -> float:
        """Length of the longest root-to-node path — the paper's objective."""
        if self.n == 1:
            return 0.0
        return float(self.root_delays().max())

    max_delay = radius

    def delay_to(self, node: int) -> float:
        """Delay from the root to one node."""
        return float(self.root_delays()[node])

    def path_to_root(self, node: int) -> list[int]:
        """Node indices from ``node`` up to and including the root."""
        path = [int(node)]
        seen = {int(node)}
        while path[-1] != self.root:
            nxt = int(self.parent[path[-1]])
            if nxt in seen:
                raise TreeInvariantError(f"cycle reached from node {node}")
            path.append(nxt)
            seen.add(nxt)
        return path

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    def children_lists(self) -> list[list[int]]:
        """Adjacency lists ``children[v]``; O(n) Python lists.

        Needed by the event-driven simulator, which walks the tree in
        dissemination order.
        """
        children = [[] for _ in range(self.n)]
        for child, par in enumerate(self.parent.tolist()):
            if child != self.root:
                children[par].append(child)
        return children

    def subtree_nodes(self, node: int) -> np.ndarray:
        """All nodes in the subtree rooted at ``node`` (vectorised).

        Uses doubling over ancestor pointers: a node is in the subtree iff
        ``node`` appears on its root path.
        """
        in_subtree = np.arange(self.n) == node
        ancestor = self.parent.copy()
        max_rounds = int(np.ceil(np.log2(max(self.n, 2)))) + 2
        for _ in range(max_rounds):
            in_subtree = in_subtree | in_subtree[ancestor]
            if np.all(ancestor == self.root):
                break
            ancestor = ancestor[ancestor]
        return np.flatnonzero(in_subtree)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self, max_out_degree: int | None = None) -> "MulticastTree":
        """Check all tree invariants; return ``self`` for chaining.

        Verifies: parent indices in range, exactly one root self-loop,
        no cycles (doubling converges), and — if given — the out-degree
        bound. Raises :class:`TreeInvariantError` on any violation.
        """
        if np.any((self.parent < 0) | (self.parent >= self.n)):
            raise TreeInvariantError("parent index out of range")
        self_loops = np.flatnonzero(self.parent == np.arange(self.n))
        if self_loops.tolist() != [self.root]:
            raise TreeInvariantError(
                f"expected exactly one self-loop at the root {self.root}; "
                f"found self-loops at {self_loops.tolist()}"
            )
        # _double raises on cycles / disconnected components.
        self._double(np.zeros(self.n))
        if max_out_degree is not None:
            worst = self.max_out_degree()
            if worst > max_out_degree:
                raise TreeInvariantError(
                    f"out-degree {worst} exceeds the bound {max_out_degree}"
                )
        return self

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def stretch(self) -> np.ndarray:
        """Per-node ratio of tree delay to direct source distance.

        Nodes coincident with the source report stretch 1.
        """
        direct = np.sqrt(
            np.sum((self.points - self.points[self.root]) ** 2, axis=1)
        )
        delays = self.root_delays()
        out = np.ones(self.n, dtype=np.float64)
        mask = direct > 0
        out[mask] = delays[mask] / direct[mask]
        return out

    def to_networkx(self):
        """The tree as a :class:`networkx.DiGraph` (edges parent->child,
        weighted by Euclidean length; node attribute ``pos``).

        For interop with the wider graph ecosystem — drawing, centrality
        analysis, export formats. O(n) Python; not for the 5M-node path.
        """
        import networkx as nx

        graph = nx.DiGraph()
        lengths = self.edge_lengths()
        for node in range(self.n):
            graph.add_node(node, pos=tuple(self.points[node]))
        for node in range(self.n):
            if node != self.root:
                graph.add_edge(
                    int(self.parent[node]), node, weight=float(lengths[node])
                )
        return graph

    def summary(self) -> dict:
        """Human-oriented statistics bundle used by the CLI and examples."""
        delays = self.root_delays()
        degrees = self.out_degrees()
        depths = self.depths()
        return {
            "nodes": self.n,
            "dim": self.dim,
            "radius": float(delays.max()) if self.n else 0.0,
            "mean_delay": float(delays.mean()) if self.n else 0.0,
            "max_out_degree": int(degrees.max()) if self.n else 0,
            "max_depth": int(depths.max()) if self.n else 0,
            "mean_stretch": float(self.stretch().mean()) if self.n else 1.0,
        }
