"""End-to-end tree construction — the package's main entry points.

``build_polar_grid_tree`` is Algorithm Polar_Grid of Section III with the
Section IV generalisations: it covers the receivers with an equal-volume
polar grid around the source, connects cell representatives into a binary
core tree, and finishes each cell with the Section II bisection. The
result is asymptotically optimal for points uniformly distributed in a
convex region (Theorem 2).

``build_bisection_tree`` exposes the Section II constant-factor algorithm
on its own (Theorem 1: factor 5 for out-degree 4, factor 9 for
out-degree 2, in the plane).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.core import bounds as bounds_mod
from repro.core.backends import resolve_backend
from repro.core.bisection import (
    bisection_tree_2d,
    bisection_tree_nd,
    bounding_segment_far_center,
)
from repro.core.core_network import wire_cells
from repro.core.vectorized import (
    bisection_vectorized_2d,
    bisection_vectorized_nd,
    wire_cells_vectorized,
)
from repro.core.grid import PolarGrid
from repro.core.grid_nd import PolarGridND, choose_ring_count
from repro.core.registry import register_builder
from repro.core.tree import MulticastTree
from repro.geometry.points import validate_points
from repro.geometry.polar import TWO_PI, SphericalTransform

__all__ = ["BuildResult", "build_polar_grid_tree", "build_bisection_tree"]


def representative_order(
    representative_rule: str,
    gid: np.ndarray,
    inner_dist: np.ndarray,
    rho: np.ndarray,
) -> np.ndarray:
    """Sort receivers by cell, best representative candidate first.

    The first receiver of each ``gid`` run in the returned order becomes
    the cell's representative (Section III-B). Factored out of
    :func:`build_polar_grid_tree` so the mutation-smoke tests can break
    the rule deliberately and prove the oracle catches it.

    :param representative_rule: ``"inner-anchor"`` sorts by distance to
        the cell's inner anchor; ``"min-radius"`` by distance to the
        source (the literal III-E rule).
    :param gid: global cell id per receiver (primary key).
    :param inner_dist: distance to the cell's inner-arc centre.
    :param rho: distance to the source.
    """
    if representative_rule == "inner-anchor":
        return np.lexsort((inner_dist, gid))
    return np.lexsort((rho, gid))  # "min-radius": the III-E ablation rule


@dataclass
class BuildResult:
    """Everything a build produces, including the paper's per-run metrics.

    Attributes mirror the columns of Table I:

    * ``rings`` — the chosen grid depth ``k`` (``None`` for plain
      bisection builds);
    * ``core_delay`` — longest source-to-representative delay, the
      "Core" column;
    * ``tree.radius()`` — the "Delay" column;
    * ``upper_bound`` — equation (7) evaluated at ``j = 0`` for this
      run's ``k`` (``None`` when no 2-D bound applies);
    * ``build_seconds`` — the "CPU Sec" column.

    ``builder`` names the registered algorithm that produced the result
    (stamped by the :func:`repro.build` facade); ``extras`` carries
    builder-specific auxiliary outputs (e.g. ``"diameter"`` for the
    min-diameter variant).
    """

    tree: MulticastTree
    max_out_degree: int
    rings: int | None = None
    core_delay: float | None = None
    upper_bound: float | None = None
    build_seconds: float = 0.0
    representative_count: int = 0
    grid: PolarGridND | None = None
    representatives: np.ndarray = field(default=None, repr=False)
    builder: str | None = None
    extras: dict = field(default_factory=dict)

    @property
    def radius(self) -> float:
        """Maximum source-to-receiver delay of the built tree."""
        return self.tree.radius()


def _validate_source(points: np.ndarray, source: int) -> int:
    source = int(source)
    if not 0 <= source < points.shape[0]:
        raise ValueError(
            f"source index {source} out of range for {points.shape[0]} points"
        )
    return source


def _fallback_chain(
    points: np.ndarray, source: int, max_out_degree: int
) -> MulticastTree:
    """Degenerate case: every receiver coincides with the source.

    All delays are zero whatever we do; build the canonical array-backed
    d-ary tree so the degree constraint still holds.
    """
    n = points.shape[0]
    receivers = [i for i in range(n) if i != source]
    parent = np.empty(n, dtype=np.int64)
    parent[source] = source
    d = max_out_degree
    for pos, node in enumerate(receivers):
        parent[node] = source if pos < d else receivers[pos // d - 1]
    return MulticastTree(points=points, parent=parent, root=source)


@register_builder(
    "polar-grid",
    summary="Algorithm Polar_Grid — asymptotically optimal (the paper's "
    "main contribution)",
)
def build_polar_grid_tree(
    points,
    source: int = 0,
    max_out_degree: int = 6,
    *,
    k: int | None = None,
    fit_annulus: bool = False,
    occupancy: str = "full",
    representative_rule: str = "inner-anchor",
    backend: str | None = None,
    cost_model=None,
) -> BuildResult:
    """Algorithm Polar_Grid: an asymptotically optimal degree-bounded tree.

    :param points: ``(n, d)`` host coordinates, source included.
    :param source: index of the multicast source.
    :param max_out_degree: fan-out budget per node. Values of at least
        ``2^d + 2`` (6 in 2-D, 10 in 3-D) select the full construction;
        values in ``[2, 2^d + 2)`` select the binary (out-degree-2)
        construction of Section IV-A, which uses at most 2 links per node.
    :param k: fix the grid depth instead of choosing the largest feasible
        one (mostly for experiments; an infeasible ``k`` raises).
    :param fit_annulus: cover only the annulus actually containing
        receivers (Section IV-C) instead of the full ball around the
        source. Tightens the grid when the source sits far from the
        cloud; the disk experiments of Section V use ``False``.
    :param occupancy: cell-occupancy rule used when choosing ``k``:
        ``"full"`` is the paper's property 3 (right for sources well
        inside the receiver cloud, and what Table I uses);
        ``"connected"`` relaxes it so off-centre sources in convex
        regions still get deep grids (Section IV-C; see
        :meth:`~repro.core.grid_nd.PolarGridND.connectivity_ok`).
    :param representative_rule: how a cell's representative is chosen.
        ``"inner-anchor"`` (default) takes the point closest to the
        centre of the cell's inner arc — our reading of III-B's "closest
        to the center on the inner arc of the segment", and the rule
        that reproduces Table I. ``"min-radius"`` takes the least-radius
        point, the rule named in the Section III-E bound proof. The
        ablation benchmark compares the two.
    :param backend: execution strategy — ``"reference"``, ``"numpy"``,
        or ``"numba"`` (see :mod:`repro.core.backends`). ``None``
        consults ``REPRO_BUILD_BACKEND`` and defaults to ``"numpy"``.
        Every backend produces the identical tree; only speed differs.
    :param cost_model: evaluate the built tree under a non-Euclidean
        cost model (any form :func:`repro.costmodel.get_cost_model`
        accepts). Does not change the construction — the tree is the
        same; the result's ``extras`` gain ``"cost_model"`` (canonical
        key) and ``"effective_radius"`` (idle-network effective radius),
        and the parameter participates in service cache keys.
    :returns: a :class:`BuildResult` whose tree spans all points, rooted
        at the source, respecting ``max_out_degree``.
    """
    backend = resolve_backend(backend)
    with obs.span(
        "polar_grid.build", degree=int(max_out_degree), backend=backend
    ) as build_span:
        result = _build_polar_grid_impl(
            points,
            source,
            max_out_degree,
            k=k,
            fit_annulus=fit_annulus,
            occupancy=occupancy,
            representative_rule=representative_rule,
            backend=backend,
        )
        build_span.set(
            n=result.tree.n,
            rings=result.rings,
            representatives=result.representative_count,
        )
        obs.add("build.polar_grid.total")
        obs.add(f"build.backend.{backend}.total")
        obs.observe("build.polar_grid.seconds", result.build_seconds)
        _stamp_cost_model(result, cost_model)
        return result


def _stamp_cost_model(result: BuildResult, cost_model) -> None:
    """Record a cost model's view of a finished build in its extras."""
    if cost_model is None:
        return
    from repro.costmodel import (
        cost_model_key,
        effective_radius,
        get_cost_model,
    )

    model = get_cost_model(cost_model)
    result.extras["cost_model"] = cost_model_key(model)
    result.extras["effective_radius"] = effective_radius(
        result.tree, model, None
    )


def _build_polar_grid_impl(
    points,
    source: int,
    max_out_degree: int,
    *,
    k: int | None,
    fit_annulus: bool,
    occupancy: str,
    representative_rule: str,
    backend: str,
) -> BuildResult:
    if representative_rule not in ("inner-anchor", "min-radius"):
        raise ValueError(f"unknown representative rule {representative_rule!r}")
    started = time.perf_counter()
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    validate_points(points)
    if points.shape[1] < 2:
        raise ValueError("the polar grid requires dimension >= 2")
    source = _validate_source(points, source)
    n, dim = points.shape
    full_threshold = (1 << dim) + 2
    if max_out_degree < 2:
        raise ValueError("max_out_degree must be at least 2")
    binary = max_out_degree < full_threshold

    if n == 1:
        tree = MulticastTree(
            points=points, parent=np.array([0], dtype=np.int64), root=source
        )
        return BuildResult(
            tree=tree,
            max_out_degree=max_out_degree,
            build_seconds=time.perf_counter() - started,
        )

    transform = SphericalTransform(dim)
    rho, t = transform.transform(points, points[source])
    rho[source] = 0.0
    r_max = float(rho.max())
    if r_max <= 0.0:
        tree = _fallback_chain(points, source, max_out_degree)
        return BuildResult(
            tree=tree,
            max_out_degree=max_out_degree,
            build_seconds=time.perf_counter() - started,
        )

    receiver_mask = np.ones(n, dtype=bool)
    receiver_mask[source] = False
    receivers = np.flatnonzero(receiver_mask)

    r_min = 0.0
    if fit_annulus:
        nearest = float(rho[receivers].min())
        if nearest > 0.0 and nearest < r_max:
            # Open the annulus a hair below the nearest receiver so it
            # falls strictly inside the inner region.
            r_min = nearest * (1.0 - 1e-12)

    grid_cls = PolarGrid if dim == 2 else PolarGridND

    def factory(rings: int):
        return grid_cls(
            center=points[source],
            r_min=r_min,
            r_max=r_max,
            k=rings,
            transform=transform,
        )

    with obs.span("polar_grid.cell_layout", n=n, dim=dim) as layout_span:
        if k is None:
            k = choose_ring_count(
                factory, rho[receivers], t[receivers], occupancy=occupancy
            )
        grid = factory(int(k))

        ring, cell = grid.assign(rho[receivers], t[receivers])
        gid = grid.global_id(ring, cell)
        layout_span.set(rings=int(grid.k))

    # Distance from each receiver to its cell's inner and outer anchors
    # (the centres of the cell's inner and outer faces). III-B picks the
    # representative "closest to the center on the inner arc of the
    # segment"; the binary mode's forwarder targets the outer anchor.
    with obs.span("polar_grid.representatives", rule=representative_rule):
        radii = np.array([grid.ring_radius(i) for i in range(grid.k + 1)])
        r_lo = np.where(ring == 0, grid.r_min, radii[np.maximum(ring - 1, 0)])
        r_hi = radii[ring]
        t_recv = t[receivers]
        t_mid = np.empty_like(t_recv)
        for r in range(grid.k + 1):
            mask = ring == r
            if not np.any(mask):
                continue
            for axis, width in enumerate(grid.axis_splits(r)):
                count = 1 << width
                bins = np.minimum(
                    (t_recv[mask, axis] * count).astype(np.int64), count - 1
                )
                t_mid[mask, axis] = (bins + 0.5) / count
        direction = transform.direction(t_mid)
        recv_points = points[receivers]
        center = points[source]
        inner_dist = np.sqrt(
            np.sum(
                (recv_points - (center + r_lo[:, None] * direction)) ** 2,
                axis=1,
            )
        )
        outer_dist = np.sqrt(
            np.sum(
                (recv_points - (center + r_hi[:, None] * direction)) ** 2,
                axis=1,
            )
        )

        order = representative_order(
            representative_rule, gid, inner_dist, rho[receivers]
        )
        sorted_nodes = receivers[order]
        sorted_gid = gid[order]
        cuts = np.flatnonzero(np.diff(sorted_gid)) + 1
        starts = np.concatenate([[0], cuts])
        ends = np.concatenate([cuts, [sorted_gid.shape[0]]])

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    outer_full = np.zeros(n)
    outer_full[receivers] = outer_dist

    with obs.span(
        "polar_grid.wire_cells",
        cells=int(starts.shape[0]),
        binary=binary,
        backend=backend,
    ):
        if backend == "reference":
            # The reference wiring walks plain Python lists; the
            # conversions are part of what this backend pays for.
            node_lists = sorted_nodes.tolist()
            groups = [
                (int(sorted_gid[s]), node_lists[s:e])
                for s, e in zip(starts, ends)
            ]
            reps = wire_cells(
                grid,
                source,
                groups,
                rho.tolist(),
                tuple(t[:, j].tolist() for j in range(dim - 1)),
                parent,
                binary,
                outer_anchor_dist=outer_full.tolist(),
                points=points.tolist(),
            )
        else:
            reps = wire_cells_vectorized(
                grid,
                source,
                sorted_nodes,
                sorted_gid,
                starts,
                ends,
                rho,
                t,
                parent,
                binary,
                outer_anchor_dist=outer_full,
                points=points,
                jit=backend == "numba",
            )

    with obs.span("polar_grid.delay_pass"):
        tree = MulticastTree(points=points, parent=parent, root=source)
        elapsed = time.perf_counter() - started
        core_delay = (
            float(tree.root_delays()[reps].max()) if reps.size else 0.0
        )
    upper = None
    if dim == 2:
        upper = bounds_mod.polar_grid_upper_bound(
            k=grid.k,
            max_out_degree=max_out_degree,
            r_max=r_max,
            r_min=r_min,
        )
    return BuildResult(
        tree=tree,
        max_out_degree=max_out_degree,
        rings=grid.k,
        core_delay=core_delay,
        upper_bound=upper,
        build_seconds=elapsed,
        representative_count=int(reps.size),
        grid=grid,
        representatives=reps,
    )


@register_builder(
    "bisection",
    summary="Section II constant-factor bisection (factor 5/9 in 2-D)",
)
def build_bisection_tree(
    points,
    source: int = 0,
    max_out_degree: int = 4,
    *,
    backend: str | None = None,
    cost_model=None,
) -> BuildResult:
    """The Section II constant-factor bisection algorithm, standalone.

    In 2-D the covering ring segment is placed around a far centre so that
    Theorem 1's preconditions hold (``sin a > 5a/6``, ``r > 0.6 R``) and
    the result is within a constant factor (5 for out-degree >= 4, 9 for
    out-degree 2) of the optimal radius. In higher dimensions the
    algorithm runs on the full annulus around the source — a valid
    degree-bounded tree without the constant-factor certificate.

    :param max_out_degree: 4 or more selects the quartering variant;
        2 or 3 the binary variant (in d dimensions, ``2^d`` is the full
        threshold).
    :param backend: execution strategy, as for
        :func:`build_polar_grid_tree` (identical trees, different speed).
    :param cost_model: evaluate the built tree under a non-Euclidean
        cost model, as for :func:`build_polar_grid_tree` — stamps
        ``extras["cost_model"]`` and ``extras["effective_radius"]``.
    """
    backend = resolve_backend(backend)
    with obs.span(
        "bisection.build", degree=int(max_out_degree), backend=backend
    ) as build_span:
        result = _build_bisection_impl(
            points, source, max_out_degree, backend
        )
        build_span.set(n=result.tree.n)
        obs.add("build.bisection.total")
        obs.observe("build.bisection.seconds", result.build_seconds)
        _stamp_cost_model(result, cost_model)
        return result


def _build_bisection_impl(
    points, source: int, max_out_degree: int, backend: str
) -> BuildResult:
    started = time.perf_counter()
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    validate_points(points)
    source = _validate_source(points, source)
    n, dim = points.shape
    if max_out_degree < 2:
        raise ValueError("max_out_degree must be at least 2")

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    receivers = [i for i in range(n) if i != source]

    if not receivers:
        tree = MulticastTree(points=points, parent=parent, root=source)
        return BuildResult(
            tree=tree,
            max_out_degree=max_out_degree,
            build_seconds=time.perf_counter() - started,
        )

    if dim == 2:
        with obs.span("bisection.segment"):
            center, segment = bounding_segment_far_center(points)
        from repro.geometry.polar import to_polar

        rho, theta = to_polar(points, center)
        # Shift angles so the segment starts at zero — no wrap inside.
        theta_t = np.mod(theta - segment.theta_start, TWO_PI) / TWO_PI
        with obs.span("bisection.wire", n=n, dim=dim, backend=backend):
            if backend == "reference":
                bisection_tree_2d(
                    rho.tolist(),
                    theta_t.tolist(),
                    receivers,
                    source,
                    (segment.r_inner, segment.r_outer),
                    (0.0, segment.theta_span / TWO_PI),
                    parent,
                    max_out_degree,
                )
            else:
                bisection_vectorized_2d(
                    rho,
                    theta_t,
                    receivers,
                    source,
                    (segment.r_inner, segment.r_outer),
                    (0.0, segment.theta_span / TWO_PI),
                    parent,
                    max_out_degree,
                    jit=backend == "numba",
                )
    else:
        transform = SphericalTransform(dim)
        rho, t = transform.transform(points, points[source])
        r_max = float(rho.max())
        if r_max <= 0.0:
            tree = _fallback_chain(points, source, max_out_degree)
            return BuildResult(
                tree=tree,
                max_out_degree=max_out_degree,
                build_seconds=time.perf_counter() - started,
            )
        with obs.span("bisection.wire", n=n, dim=dim, backend=backend):
            if backend == "reference":
                bisection_tree_nd(
                    rho.tolist(),
                    tuple(t[:, j].tolist() for j in range(dim - 1)),
                    receivers,
                    source,
                    (0.0, r_max),
                    tuple((0.0, 1.0) for _ in range(dim - 1)),
                    parent,
                    max_out_degree,
                )
            else:
                bisection_vectorized_nd(
                    rho,
                    t,
                    receivers,
                    source,
                    (0.0, r_max),
                    parent,
                    max_out_degree,
                    jit=backend == "numba",
                )

    tree = MulticastTree(points=points, parent=parent, root=source)
    return BuildResult(
        tree=tree,
        max_out_degree=max_out_degree,
        build_seconds=time.perf_counter() - started,
    )
