"""2-D polar grid — the paper's Section III-A construction.

:class:`PolarGrid` is the two-dimensional specialisation of
:class:`~repro.core.grid_nd.PolarGridND` with a polar-coordinate API and
:class:`~repro.geometry.rings.RingSegment` cell geometry. In 2-D there is
exactly one angular axis, so ring ``i`` consists of ``2^i`` aligned ring
segments and cell ``c`` of ring ``i`` sits under cells ``2c`` and
``2c + 1`` of ring ``i + 1`` — the layout of the paper's Figure 2.

:class:`CellTable` is the grid's *mutable* companion: per-cell occupancy
and representative bookkeeping for incremental membership maintenance
(:mod:`repro.overlay.incremental`). The grid itself stays frozen; only
the table changes as hosts join and leave.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid_nd import PolarGridND, choose_ring_count
from repro.geometry.polar import TWO_PI, to_polar
from repro.geometry.rings import RingSegment

__all__ = ["PolarGrid", "CellTable"]


class CellTable:
    """Mutable per-cell membership and representative registry.

    Keys are the grid's global cell ids (:meth:`PolarGridND.global_id`).
    The table holds an entry only for occupied cells: emptying a cell
    drops both its member list *and* its representative entry — a
    dangling representative for an empty cell is exactly the corruption
    the oracle's ``CELL_DANGLING`` check hunts.

    The inner region D0 (gid 0) is tracked like any other cell when it
    has members, but never carries a representative entry: the source
    itself represents it (``wire_cells`` semantics).
    """

    def __init__(self, grid: PolarGridND):
        """An empty table over ``grid``."""
        self.grid = grid
        self._members: dict[int, list[int]] = {}
        self._rep: dict[int, int] = {}

    # -- queries -----------------------------------------------------

    def occupied(self, gid: int) -> bool:
        """Whether cell ``gid`` currently has members."""
        return gid in self._members

    def occupied_gids(self) -> list[int]:
        """All occupied cell ids, ascending (ring order: inner first)."""
        return sorted(self._members)

    def members(self, gid: int) -> list[int]:
        """Member node ids of cell ``gid`` (copy; empty if unoccupied)."""
        return list(self._members.get(gid, ()))

    def size(self, gid: int) -> int:
        """Number of members in cell ``gid``."""
        return len(self._members.get(gid, ()))

    def rep(self, gid: int) -> int:
        """Representative node of cell ``gid``.

        :raises KeyError: for cells with no representative entry (empty
            cells, and the inner region D0).
        """
        return self._rep[gid]

    def has_rep(self, gid: int) -> bool:
        """Whether a representative entry exists for ``gid``."""
        return gid in self._rep

    def dangling_reps(self) -> list[int]:
        """Cell ids carrying a representative but no members.

        Always empty when the table is maintained correctly; the oracle
        checks it after every incremental event.
        """
        return sorted(g for g in self._rep if g not in self._members)

    # -- mutation ----------------------------------------------------

    def add(self, gid: int, node: int) -> bool:
        """Add ``node`` to cell ``gid``; True when the cell spawned."""
        bucket = self._members.get(gid)
        if bucket is None:
            self._members[gid] = [node]
            return True
        bucket.append(node)
        return False

    def remove(self, gid: int, node: int) -> bool:
        """Remove ``node`` from cell ``gid``; True when the cell emptied.

        Emptying a cell drops its representative entry too, so the
        chain bookkeeping can never point at a ghost cell.
        """
        bucket = self._members[gid]
        bucket.remove(node)
        if bucket:
            if self._rep.get(gid) == node:
                del self._rep[gid]
            return False
        del self._members[gid]
        self._rep.pop(gid, None)
        return True

    def set_rep(self, gid: int, node: int) -> None:
        """Record ``node`` as the representative of occupied cell ``gid``."""
        if gid not in self._members:
            raise KeyError(f"cell {gid} has no members")
        if node not in self._members[gid]:
            raise ValueError(f"node {node} is not a member of cell {gid}")
        self._rep[gid] = node

    # -- chain / occupancy helpers -----------------------------------

    def nearest_live_ancestor(self, ring: int, cell: int) -> tuple[int, int]:
        """First occupied ancestor cell's gid, plus the hops walked.

        Walks the aligned parent-cell chain (skipping holes) and stops
        at the first occupied cell, or at the inner region (gid 0 — the
        source always forwards for it). The hop count is the number of
        chain steps taken, the message cost of cell-routed join walks.
        """
        hops = 0
        for r, c in self.grid.ancestor_cells(ring, cell):
            hops += 1
            if r == 0:
                return 0, hops
            gid = int(self.grid.global_id(r, c))
            if gid in self._members:
                return gid, hops
        return 0, hops

    def interior_holes(self) -> set[int]:
        """Empty cells of rings ``1..k-1`` (property-3 violations).

        Exhaustive by construction — ``O(2^k)`` — which is fine for the
        grids incremental maintenance runs on (``k`` tracks ``log n``).
        """
        k = self.grid.k
        if k <= 1:
            return set()
        all_interior = range(1, (1 << k) - 1)
        return {g for g in all_interior if g not in self._members}


class PolarGrid(PolarGridND):
    """Equal-area polar grid over a disk or annulus in the plane."""

    def __post_init__(self):
        super().__post_init__()
        if self.dim != 2:
            raise ValueError("PolarGrid is 2-D; use PolarGridND for d != 2")

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        center,
        k: int | None = None,
        r_min: float = 0.0,
    ) -> "PolarGrid":
        """Build the grid covering ``points`` around ``center``.

        When ``k`` is omitted, picks the largest ring count satisfying the
        occupancy property (Section III-A, property 3).
        """
        center = np.asarray(center, dtype=np.float64)
        rho, theta = to_polar(points, center)
        r_max = float(rho.max())
        if r_max <= r_min:
            raise ValueError("all points are within r_min of the centre")
        if k is None:
            t = (theta / TWO_PI)[:, None]
            k = choose_ring_count(
                lambda rings: cls(center=center, r_min=r_min, r_max=r_max, k=rings),
                rho,
                t,
            )
        return cls(center=center, r_min=r_min, r_max=r_max, k=k)

    def assign_polar(
        self, rho: np.ndarray, theta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised ``(ring, cell)`` assignment from polar coordinates."""
        t = (np.asarray(theta, dtype=np.float64) / TWO_PI)[:, None]
        return self.assign(np.asarray(rho, dtype=np.float64), t)

    def segment(self, ring: int, cell: int) -> RingSegment:
        """Cell geometry as a :class:`RingSegment` around the grid centre."""
        r_lo, r_hi = self.cell_radial_range(ring)
        ((t_lo, t_hi),) = self.cell_t_box(ring, cell)
        return RingSegment(
            r_inner=r_lo,
            r_outer=r_hi,
            theta_start=t_lo * TWO_PI,
            theta_span=(t_hi - t_lo) * TWO_PI,
        )
