"""2-D polar grid — the paper's Section III-A construction.

:class:`PolarGrid` is the two-dimensional specialisation of
:class:`~repro.core.grid_nd.PolarGridND` with a polar-coordinate API and
:class:`~repro.geometry.rings.RingSegment` cell geometry. In 2-D there is
exactly one angular axis, so ring ``i`` consists of ``2^i`` aligned ring
segments and cell ``c`` of ring ``i`` sits under cells ``2c`` and
``2c + 1`` of ring ``i + 1`` — the layout of the paper's Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.grid_nd import PolarGridND, choose_ring_count
from repro.geometry.polar import TWO_PI, to_polar
from repro.geometry.rings import RingSegment

__all__ = ["PolarGrid"]


class PolarGrid(PolarGridND):
    """Equal-area polar grid over a disk or annulus in the plane."""

    def __post_init__(self):
        super().__post_init__()
        if self.dim != 2:
            raise ValueError("PolarGrid is 2-D; use PolarGridND for d != 2")

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        center,
        k: int | None = None,
        r_min: float = 0.0,
    ) -> "PolarGrid":
        """Build the grid covering ``points`` around ``center``.

        When ``k`` is omitted, picks the largest ring count satisfying the
        occupancy property (Section III-A, property 3).
        """
        center = np.asarray(center, dtype=np.float64)
        rho, theta = to_polar(points, center)
        r_max = float(rho.max())
        if r_max <= r_min:
            raise ValueError("all points are within r_min of the centre")
        if k is None:
            t = (theta / TWO_PI)[:, None]
            k = choose_ring_count(
                lambda rings: cls(center=center, r_min=r_min, r_max=r_max, k=rings),
                rho,
                t,
            )
        return cls(center=center, r_min=r_min, r_max=r_max, k=k)

    def assign_polar(
        self, rho: np.ndarray, theta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised ``(ring, cell)`` assignment from polar coordinates."""
        t = (np.asarray(theta, dtype=np.float64) / TWO_PI)[:, None]
        return self.assign(np.asarray(rho, dtype=np.float64), t)

    def segment(self, ring: int, cell: int) -> RingSegment:
        """Cell geometry as a :class:`RingSegment` around the grid centre."""
        r_lo, r_hi = self.cell_radial_range(ring)
        ((t_lo, t_hi),) = self.cell_t_box(ring, cell)
        return RingSegment(
            r_inner=r_lo,
            r_outer=r_hi,
            theta_start=t_lo * TWO_PI,
            theta_span=(t_hi - t_lo) * TWO_PI,
        )
