"""Unified builder registry: one front door for every tree algorithm.

Historically every algorithm shipped its own differently-shaped entry
point — ``build_polar_grid_tree(points, source, max_out_degree, *, k,
...)``, ``build_min_diameter_tree(points, max_out_degree)`` returning a
``(result, diameter)`` tuple, baselines returning bare
:class:`~repro.core.tree.MulticastTree` objects — so every consumer
(CLI, experiments, fuzzer, overlay sessions, and now the build service)
grew its own dispatch table. This module replaces those tables with one
registry:

* :class:`BuilderSpec` — the descriptor of one registered builder:
  name, callable, one-line summary, and the normalized keyword
  parameters it accepts;
* :func:`register_builder` — a decorator builder modules apply to their
  entry point (``@register_builder("polar-grid", summary=...)``);
* :func:`build` — the facade: ``build(points, source, "quadtree",
  max_out_degree=4)`` dispatches by name, normalizes the return value
  into a :class:`~repro.core.builder.BuildResult`, and raises
  *structured* errors (:class:`UnknownBuilderError` listing the known
  names, :class:`BuilderParamError` listing the accepted kwargs).

Normalized parameter names
--------------------------

Every registered builder takes ``(points, source=0, **params)`` where
the parameter vocabulary is shared across builders: ``max_out_degree``
(fan-out budget), ``seed`` (for the randomised baselines), ``budgets``
(per-host fan-outs where supported), plus builder-specific extras
(``k``, ``fit_annulus``, ``occupancy``, ``representative_rule``).
Builders that pick their own root (``min-diameter``) still accept
``source`` and record the root they chose on the result.

The registry is the single dispatch point for the whole repo: the CLI's
``--builder`` flag, the sweep engine's :class:`TrialTask`, the
differential/fuzz harnesses, overlay sessions, and
:mod:`repro.service` all resolve names here. The facade is re-exported
as ``repro.build``.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BuilderSpec",
    "UnknownBuilderError",
    "BuilderParamError",
    "register_builder",
    "get_builder",
    "builder_names",
    "builder_specs",
    "unregister_builder",
    "build",
]


class UnknownBuilderError(ValueError):
    """Raised when a builder name is not in the registry.

    Carries the offending ``name`` and the tuple of ``known`` names so
    callers (the CLI, the service's error responses) can render an
    actionable message without parsing the string.
    """

    def __init__(self, name: str, known: tuple[str, ...]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown builder {name!r}; registered builders: "
            + ", ".join(known)
        )


class BuilderParamError(TypeError):
    """Raised when a builder is handed parameters it does not accept.

    Carries ``builder``, the ``rejected`` parameter names, and the
    ``accepted`` vocabulary, so error responses stay structured.
    """

    def __init__(
        self,
        builder: str,
        rejected: tuple[str, ...],
        accepted: tuple[str, ...],
        reason: str | None = None,
    ):
        self.builder = builder
        self.rejected = rejected
        self.accepted = accepted
        detail = reason or (
            f"unexpected parameter(s) {', '.join(sorted(rejected))}"
        )
        super().__init__(
            f"builder {builder!r}: {detail}; accepted parameters: "
            + ", ".join(accepted)
        )


@dataclass(frozen=True)
class BuilderSpec:
    """One registered builder and the contract it exposes.

    :param name: registry key (kebab-case, e.g. ``"polar-grid"``).
    :param fn: the callable, signature ``fn(points, source=0, **params)``.
    :param summary: one-line human description (shown by ``--builder``
        help and the service's introspection endpoint).
    :param params: normalized keyword parameter names ``fn`` accepts
        (derived from its signature at registration time).
    :param required: parameters without defaults that the caller must
        supply (e.g. nothing for most builders).
    :param wraps_tree: True when ``fn`` returns a bare
        :class:`~repro.core.tree.MulticastTree` that the facade wraps
        into a :class:`~repro.core.builder.BuildResult`.
    """

    name: str
    fn: object = field(repr=False)
    summary: str = ""
    params: tuple[str, ...] = ()
    required: tuple[str, ...] = ()
    wraps_tree: bool = False


_REGISTRY: dict[str, BuilderSpec] = {}
_BUILTINS_LOADED = False


def _inspect_params(fn) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """``(accepted, required)`` keyword parameter names of a builder.

    ``points`` and ``source`` are positional in the facade contract and
    excluded from the keyword vocabulary. A ``**kwargs`` catch-all marks
    the builder as open (it forwards extras, e.g. grid kwargs), which
    the facade records as the ``"..."`` sentinel.
    """
    accepted: list[str] = []
    required: list[str] = []
    for pname, param in inspect.signature(fn).parameters.items():
        if pname in ("points", "source"):
            continue
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            accepted.append("...")
            continue
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        accepted.append(pname)
        if param.default is inspect.Parameter.empty:
            required.append(pname)
    return tuple(accepted), tuple(required)


def register_builder(
    name: str, *, summary: str = "", wraps_tree: bool = False
):
    """Class the decorated callable as the builder registered as ``name``.

    The callable must follow the facade contract
    ``fn(points, source=0, **normalized_params)``. Registration is
    idempotent per name — re-registering a name overwrites it, which is
    what tests use to inject instrumented builders (restore with
    :func:`unregister_builder`).

    >>> @register_builder("doc-demo", summary="docstring example")
    ... def _demo(points, source=0, max_out_degree=2):
    ...     from repro.baselines.naive import capped_star
    ...     return capped_star(points, source, max_out_degree)
    >>> get_builder("doc-demo").params
    ('max_out_degree',)
    >>> unregister_builder("doc-demo") is not None
    True
    """

    def _register(fn):
        params, required = _inspect_params(fn)
        _REGISTRY[name] = BuilderSpec(
            name=name,
            fn=fn,
            summary=summary,
            params=params,
            required=required,
            wraps_tree=wraps_tree,
        )
        return fn

    return _register


def unregister_builder(name: str) -> BuilderSpec | None:
    """Remove ``name`` from the registry; returns the removed spec.

    Exists for tests that temporarily register instrumented builders;
    production code never unregisters.
    """
    return _REGISTRY.pop(name, None)


def _ensure_builtins() -> None:
    """Import the modules that register the built-in builders.

    Dispatching by name must work even when the caller imported only
    this module — the home modules self-register at import, so pull
    them in once, lazily (they import this module for the decorator,
    hence the deferral).
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.baselines.adapters  # noqa: F401
    import repro.core.builder  # noqa: F401
    import repro.core.diameter  # noqa: F401
    import repro.core.heterogeneous  # noqa: F401
    import repro.core.quadtree  # noqa: F401
    import repro.packing.builder  # noqa: F401


def get_builder(spec) -> BuilderSpec:
    """Resolve a builder name (or pass a :class:`BuilderSpec` through).

    :raises UnknownBuilderError: for names not in the registry.
    """
    if isinstance(spec, BuilderSpec):
        return spec
    _ensure_builtins()
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise UnknownBuilderError(
            str(spec), builder_names()
        ) from None


def builder_names() -> tuple[str, ...]:
    """All registered builder names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def builder_specs() -> tuple[BuilderSpec, ...]:
    """All registered specs, sorted by name."""
    _ensure_builtins()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def _check_params(spec: BuilderSpec, params: dict) -> None:
    """Validate ``params`` against the spec's vocabulary (structured)."""
    missing = tuple(p for p in spec.required if p not in params)
    if missing:
        raise BuilderParamError(
            spec.name,
            missing,
            spec.params,
            reason=f"missing required parameter(s) {', '.join(missing)}",
        )
    if "..." in spec.params:
        return  # open signature: the builder forwards extras itself
    rejected = tuple(k for k in params if k not in spec.params)
    if rejected:
        raise BuilderParamError(spec.name, rejected, spec.params)


def build(points, source: int = 0, spec="polar-grid", **params):
    """Build a degree-bounded multicast tree with any registered builder.

    The single public entry point for tree construction::

        import repro
        result = repro.build(points, 0, "polar-grid", max_out_degree=6)
        result = repro.build(points, 0, "quadtree", max_out_degree=4)
        result = repro.build(points, 0, "random", seed=42)

    :param points: ``(n, d)`` host coordinates, source included.
    :param source: index of the multicast source (builders that pick
        their own root, e.g. ``min-diameter``, note the chosen root on
        ``result.tree.root``).
    :param spec: builder name (see :func:`builder_names`) or a
        :class:`BuilderSpec`.
    :param params: normalized keyword parameters (``max_out_degree``,
        ``seed``, ``budgets``, builder-specific extras).
    :returns: a :class:`~repro.core.builder.BuildResult` whose
        ``builder`` field names the algorithm that produced it. Builders
        that natively return a bare tree are wrapped (with measured
        ``build_seconds``); builders with auxiliary outputs expose them
        on ``result.extras`` (e.g. ``extras["diameter"]``).
    :raises UnknownBuilderError: when ``spec`` names no registered
        builder.
    :raises BuilderParamError: when ``params`` contains names the
        builder does not accept (or misses required ones).
    """
    import repro.obs as obs
    from repro.core.builder import BuildResult
    from repro.core.tree import MulticastTree

    resolved = get_builder(spec)
    _check_params(resolved, params)
    started = time.perf_counter()
    out = resolved.fn(points, source, **params)
    elapsed = time.perf_counter() - started
    if isinstance(out, MulticastTree):
        # Per-node budget arrays have no single bound; report the
        # fan-out the tree actually uses in that case.
        budget = params.get("max_out_degree")
        if budget is None or not np.isscalar(budget):
            budget = out.max_out_degree()
        out = BuildResult(
            tree=out,
            max_out_degree=int(budget),
            build_seconds=elapsed,
        )
    elif not isinstance(out, BuildResult):
        raise TypeError(
            f"builder {resolved.name!r} returned {type(out).__name__}; "
            "registered builders must return BuildResult or MulticastTree"
        )
    out.builder = resolved.name
    obs.add("registry.build.total")
    obs.add(f"registry.build.{resolved.name}.total")
    return out
