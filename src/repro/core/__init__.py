"""Core algorithms: the paper's contribution and its direct substrates.

* :mod:`repro.core.tree` — rooted-tree container with vectorised delay
  evaluation and validity checking;
* :mod:`repro.core.bisection` — the Section II constant-factor bisection
  algorithm (out-degree 4/2 in 2-D, ``2^d``/2 in d dimensions);
* :mod:`repro.core.grid` — the Section III equal-area polar grid and its
  Section IV-C annulus generalisation (2-D);
* :mod:`repro.core.grid_nd` — the Section IV-B equal-volume grid in any
  dimension;
* :mod:`repro.core.core_network` — representative selection and the binary
  core tree (Sections III-B and IV-A);
* :mod:`repro.core.builder` — ``build_polar_grid_tree`` /
  ``build_bisection_tree`` front doors;
* :mod:`repro.core.registry` — the named builder registry behind the
  :func:`repro.build` facade;
* :mod:`repro.core.bounds` — the analytic quantities of the paper
  (``Delta_i``, ``S_k``, equations (1), (2), (7), Lemmas 1-2).
"""

from repro.core.bisection import bisection_tree_2d, bisection_tree_nd
from repro.core.bounds import (
    arc_length,
    bisection_path_bound,
    lemma1_probability,
    polar_grid_upper_bound,
    rings_lower_bound,
    sum_of_inner_arcs,
)
from repro.core.builder import BuildResult, build_bisection_tree, build_polar_grid_tree
from repro.core.diameter import (
    approximate_center,
    build_min_diameter_tree,
    tree_diameter,
)
from repro.core.grid import PolarGrid
from repro.core.grid_nd import PolarGridND
from repro.core.heterogeneous import build_heterogeneous_tree
from repro.core.io import load_tree, save_tree
from repro.core.quadtree import build_quadtree_tree, quadtree_path_bound
from repro.core.registry import (
    BuilderParamError,
    BuilderSpec,
    UnknownBuilderError,
    build,
    builder_names,
    builder_specs,
    get_builder,
    register_builder,
)
from repro.core.tree import MulticastTree

__all__ = [
    "BuildResult",
    "BuilderParamError",
    "BuilderSpec",
    "UnknownBuilderError",
    "build",
    "builder_names",
    "builder_specs",
    "get_builder",
    "register_builder",
    "MulticastTree",
    "PolarGrid",
    "PolarGridND",
    "approximate_center",
    "build_heterogeneous_tree",
    "build_min_diameter_tree",
    "build_quadtree_tree",
    "load_tree",
    "quadtree_path_bound",
    "save_tree",
    "tree_diameter",
    "arc_length",
    "bisection_path_bound",
    "bisection_tree_2d",
    "bisection_tree_nd",
    "build_bisection_tree",
    "build_polar_grid_tree",
    "lemma1_probability",
    "polar_grid_upper_bound",
    "rings_lower_bound",
    "sum_of_inner_arcs",
]
