"""Saving and loading multicast trees.

Two formats:

* **npz** — compact binary via numpy; the right choice for multi-million
  node trees (a 5M-node tree round-trips in well under a second);
* **json** — human-readable, for configuration hand-offs and debugging.

Both store exactly the tree's defining data (points, parent array,
root) plus a format version, and both validate on load so a corrupted
file fails loudly instead of producing a silently broken tree.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.tree import MulticastTree

__all__ = ["save_tree", "load_tree"]

_FORMAT_VERSION = 1


def save_tree(tree: MulticastTree, path) -> Path:
    """Write a tree to ``path``; format chosen by suffix (.npz or .json).

    :returns: the resolved path written.
    """
    path = Path(path)
    if path.suffix == ".npz":
        np.savez_compressed(
            path,
            version=np.int64(_FORMAT_VERSION),
            points=tree.points,
            parent=tree.parent,
            root=np.int64(tree.root),
        )
    elif path.suffix == ".json":
        payload = {
            "version": _FORMAT_VERSION,
            "root": int(tree.root),
            "points": tree.points.tolist(),
            "parent": tree.parent.tolist(),
        }
        path.write_text(json.dumps(payload))
    else:
        raise ValueError(
            f"unsupported suffix {path.suffix!r}; use .npz or .json"
        )
    return path


def load_tree(path) -> MulticastTree:
    """Read a tree written by :func:`save_tree` and validate it.

    :raises ValueError: on unknown suffix or format version.
    :raises repro.core.tree.TreeInvariantError: if the stored data does
        not describe a valid tree.
    """
    path = Path(path)
    if path.suffix == ".npz":
        with np.load(path) as data:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise ValueError(f"unsupported tree format version {version}")
            tree = MulticastTree(
                points=data["points"],
                parent=data["parent"],
                root=int(data["root"]),
            )
    elif path.suffix == ".json":
        payload = json.loads(path.read_text())
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported tree format version {payload.get('version')}"
            )
        tree = MulticastTree(
            points=np.asarray(payload["points"], dtype=np.float64),
            parent=np.asarray(payload["parent"], dtype=np.int64),
            root=int(payload["root"]),
        )
    else:
        raise ValueError(
            f"unsupported suffix {path.suffix!r}; use .npz or .json"
        )
    return tree.validate()
