"""Connecting grid cells: representatives, the core tree, in-cell wiring.

This implements Sections III-B/III-C (the degree >= 2^d + 2 construction)
and Section IV-A (the out-degree-2 construction). Cells are processed in
ring order, innermost first, so a cell's *forward node* — whichever of its
members owns the two links toward the next ring — is always known before
its children need it.

Link budget per node, ``full`` mode (out-degree ``2^d + 2``):

* representative: <= 2 links to child-cell representatives, plus <= 2^d
  links from the in-cell bisection = ``2^d + 2``;
* any other cell member: <= 2^d (bisection only).

Link budget per node, ``binary`` mode (out-degree 2), per Section IV-A:

* 1 member:   the representative itself forwards (<= 2 child links);
* 2 members:  rep -> other, other forwards (rep 1, other <= 2);
* 3+ members: rep -> forwarder ``f`` and bisection hub ``b`` (rep 2);
  ``f`` forwards (<= 2); ``b`` roots an out-degree-2 bisection (<= 2).

When a cell has no non-empty child cells (outermost ring, or holes in
ring k) the forwarding role is dropped and everything below the
representative is plain bisection.
"""

from __future__ import annotations

import numpy as np

from repro.core.bisection import bisection_tree_2d, bisection_tree_nd
from repro.core.grid_nd import PolarGridND

__all__ = ["wire_cells", "WiringError"]


class WiringError(RuntimeError):
    """Raised when the grid's occupancy invariant is violated mid-wiring
    (an interior cell with points has an empty parent cell)."""


def _distance(points, a: int, b: int) -> float:
    """Euclidean distance between two nodes, plain Python (tiny inputs)."""
    pa = points[a]
    pb = points[b]
    return sum((x - y) ** 2 for x, y in zip(pa, pb)) ** 0.5


def _bisect_in_cell(
    grid: PolarGridND,
    ring: int,
    cell: int,
    members: list[int],
    local_source: int,
    rho,
    t_axes,
    parent,
    binary: bool,
):
    """Run the in-cell bisection rooted at ``local_source``."""
    if not members:
        return
    r_range = grid.cell_radial_range(ring)
    t_box = grid.cell_t_box(ring, cell)
    if grid.dim == 2:
        # 2-D uses the paper's Section II variants verbatim (the relay
        # scheme for out-degree 2, the 4-way split otherwise).
        bisection_tree_2d(
            rho,
            t_axes[0],
            members,
            local_source,
            r_range,
            t_box[0],
            parent,
            2 if binary else 4,
        )
    else:
        bisection_tree_nd(
            rho,
            t_axes,
            members,
            local_source,
            r_range,
            t_box,
            parent,
            2 if binary else (1 << grid.dim),
        )


def wire_cells(
    grid: PolarGridND,
    source: int,
    groups,
    rho,
    t_axes,
    parent,
    binary: bool,
    outer_anchor_dist=None,
    points=None,
) -> np.ndarray:
    """Wire every non-empty cell and its interior; fill ``parent`` in place.

    :param grid: the polar grid the cells come from.
    :param source: global node id of the multicast source (grid centre).
    :param groups: iterable of ``(gid, members)`` in ascending ``gid``
        order, where ``members`` is the cell's receiver ids sorted by
        distance to the cell's *inner anchor* (the centre of its inner
        arc/face) — so ``members[0]`` is the representative of III-B.
    :param rho: indexable per-node radii (Python list for speed).
    :param t_axes: tuple of per-node angular coordinate sequences.
    :param parent: writeable parent mapping, filled in place.
    :param binary: True for the out-degree-2 construction of Section IV-A.
    :param outer_anchor_dist: indexable per-node distance to the node's
        cell *outer* anchor; used by the binary mode to pick the
        forwarder nearest to the next ring. Falls back to preferring the
        last member when omitted.
    :returns: array of representative node ids (one per non-empty cell,
        excluding the inner region when the source represents it) — the
        nodes whose delays define the paper's "Core" column.
    :raises WiringError: if an interior parent cell is empty (invalid k).
    """
    total = grid.total_cells
    # forward_of[gid] = node owning the links toward ring+1; -1 = unset.
    forward_of = np.full(total, -1, dtype=np.int64)
    occupied = np.zeros(total, dtype=bool)
    forward_of[0] = source  # the source forwards for an empty inner region

    group_list = list(groups)
    for gid, _members in group_list:
        occupied[gid] = True

    representatives = []
    for gid, members in group_list:
        ring, cell = grid.ring_of_global(gid)

        if gid == 0:
            # Inner region D0: the source is its representative.
            local_rep = source
            rest = members
        else:
            local_rep = members[0]
            rest = members[1:]
            parent_ring, parent_cell = grid.parent_cell(ring, cell)
            upstream = forward_of[grid.global_id(parent_ring, parent_cell)]
            if upstream < 0:
                raise WiringError(
                    f"cell (ring={ring}, cell={cell}) has an empty parent "
                    f"cell (ring={parent_ring}, cell={parent_cell}); the "
                    "grid does not satisfy the occupancy property — use "
                    "a smaller k or let the builder choose it"
                )
            parent[local_rep] = int(upstream)
            representatives.append(local_rep)

        has_children = any(
            occupied[grid.global_id(cr, cc)] for cr, cc in grid.child_cells(ring, cell)
        )

        if not binary:
            forward_of[gid] = local_rep
            _bisect_in_cell(
                grid, ring, cell, list(rest), local_rep, rho, t_axes, parent,
                binary=False,
            )
            continue

        # --- out-degree-2 wiring (Section IV-A) ---
        if not rest:
            forward_of[gid] = local_rep
        elif len(rest) == 1:
            other = rest[0]
            parent[other] = local_rep
            # Case 2: the second point carries the links to the next ring.
            forward_of[gid] = other
        elif not has_children:
            # No downstream cells: every spare link goes to the interior.
            forward_of[gid] = local_rep
            _bisect_in_cell(
                grid, ring, cell, list(rest), local_rep, rho, t_axes, parent,
                binary=True,
            )
        else:
            # Case 3: forwarder = member nearest the cell's outer anchor
            # (it hands off to the next ring, whose cells start there);
            # bisection hub = the innermost remaining member.
            rest = list(rest)
            if outer_anchor_dist is not None and points is not None:
                # Minimise the detour of the relay chain rep -> f -> next
                # ring (whose cells start at the outer anchor).
                fwd_pos = min(
                    range(len(rest)),
                    key=lambda p: _distance(points, local_rep, rest[p])
                    + outer_anchor_dist[rest[p]],
                )
            else:
                fwd_pos = len(rest) - 1
            fwd = rest.pop(fwd_pos)
            hub = rest.pop(0)
            parent[hub] = local_rep
            parent[fwd] = local_rep
            forward_of[gid] = fwd
            _bisect_in_cell(
                grid, ring, cell, rest, hub, rho, t_axes, parent,
                binary=True,
            )

    return np.asarray(representatives, dtype=np.int64)
