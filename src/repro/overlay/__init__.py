"""Overlay multicast runtime: hosts, sessions, simulation and repair.

This package is the "application" layer on top of the tree algorithms: it
models the end hosts of an overlay multicast group, builds distribution
trees with any of the package's algorithms, replays a dissemination
through an event-driven simulator, and handles host departures by
reattaching orphaned subtrees — the operational pieces a deployment of
the paper's algorithm would need.
"""

from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.host import Host
from repro.overlay.incremental import (
    DELAY_DRIFT_BOUND,
    EventReceipt,
    IncrementalGridTree,
)
from repro.overlay.metrics import TreeMetrics, evaluate_tree
from repro.overlay.multitree import MultiTree, build_striped_trees
from repro.overlay.protocol import (
    CellRoutedProtocol,
    DistributedJoinProtocol,
    JoinOutcome,
)
from repro.overlay.repair import repair_after_failure
from repro.overlay.session import MulticastSession
from repro.overlay.simulator import DisseminationResult, simulate_dissemination
from repro.overlay.stream_sim import FailureEvent, StreamReport, simulate_stream

__all__ = [
    "CellRoutedProtocol",
    "DELAY_DRIFT_BOUND",
    "DisseminationResult",
    "DistributedJoinProtocol",
    "DynamicOverlay",
    "EventReceipt",
    "FailureEvent",
    "IncrementalGridTree",
    "StreamReport",
    "simulate_stream",
    "Host",
    "JoinOutcome",
    "MultiTree",
    "MulticastSession",
    "build_striped_trees",
    "TreeMetrics",
    "evaluate_tree",
    "repair_after_failure",
    "simulate_dissemination",
]
