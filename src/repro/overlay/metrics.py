"""Tree quality metrics for overlay multicast.

Collects the statistics the paper reports (maximum delay, i.e. the tree
radius) plus the usual companions from the overlay-multicast literature:
delay percentiles, stretch (tree delay over direct unicast delay, aka
RDP — relative delay penalty), depth, and fan-out utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import MulticastTree

__all__ = ["TreeMetrics", "evaluate_tree", "forwarding_fairness"]


def forwarding_fairness(tree: MulticastTree) -> float:
    """Jain's fairness index of the forwarding load across receivers.

    ``(sum d_i)^2 / (n * sum d_i^2)`` over the out-degrees of all
    non-source members: 1.0 means everyone forwards equally, ``1/n``
    means one member carries everything. Single trees are inherently
    unfair (leaves forward nothing); the striped multi-trees of
    :mod:`repro.overlay.multitree` raise this number — measured by the
    A8 benchmark.
    """
    degrees = tree.out_degrees().astype(np.float64)
    members = np.flatnonzero(np.arange(tree.n) != tree.root)
    if members.size == 0:
        return 1.0
    load = degrees[members]
    denominator = members.size * float(np.sum(load**2))
    if denominator == 0.0:
        return 1.0
    return float(np.sum(load)) ** 2 / denominator


@dataclass(frozen=True)
class TreeMetrics:
    """Summary statistics of one distribution tree."""

    nodes: int
    radius: float
    mean_delay: float
    p95_delay: float
    max_stretch: float
    mean_stretch: float
    max_depth: int
    mean_depth: float
    max_out_degree: int
    interior_nodes: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def evaluate_tree(tree: MulticastTree) -> TreeMetrics:
    """Compute :class:`TreeMetrics` for a tree.

    Stretch is computed over receivers that do not coincide with the
    source (coincident receivers have no meaningful unicast baseline).
    """
    delays = tree.root_delays()
    depths = tree.depths()
    degrees = tree.out_degrees()
    receivers = np.flatnonzero(np.arange(tree.n) != tree.root)

    if receivers.size:
        recv_delays = delays[receivers]
        stretch = tree.stretch()[receivers]
        radius = float(recv_delays.max())
        mean_delay = float(recv_delays.mean())
        p95 = float(np.percentile(recv_delays, 95.0))
        max_stretch = float(stretch.max())
        mean_stretch = float(stretch.mean())
        max_depth = int(depths.max())
        mean_depth = float(depths[receivers].mean())
    else:
        radius = mean_delay = p95 = 0.0
        max_stretch = mean_stretch = 1.0
        max_depth = 0
        mean_depth = 0.0

    return TreeMetrics(
        nodes=tree.n,
        radius=radius,
        mean_delay=mean_delay,
        p95_delay=p95,
        max_stretch=max_stretch,
        mean_stretch=mean_stretch,
        max_depth=max_depth,
        mean_depth=mean_depth,
        max_out_degree=tree.max_out_degree(),
        interior_nodes=int(np.count_nonzero(degrees)),
    )
