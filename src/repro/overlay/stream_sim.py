"""Continuous-stream simulation: packets, failures, repair windows.

The one-shot simulator (:mod:`repro.overlay.simulator`) replays a single
packet. A live stream is a *sequence* of packets, and the interesting
failure metric is not delay but **continuity**: when a relay dies, how
many packets do the receivers in its subtree miss before the repair
lands?

:func:`simulate_stream` plays a packet schedule through a tree, applies
a failure script (node, time), models the repair as taking a fixed
recovery latency, and reports per-receiver loss counts and the worst
interruption. The model is deliberately simple — packets emitted while
a receiver's service is down are lost, the repaired topology takes over
atomically after the recovery latency — but it turns the repair
module's structural guarantees into user-visible continuity numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tree import MulticastTree
from repro.overlay.repair import repair_after_failure

__all__ = ["StreamReport", "FailureEvent", "simulate_stream"]


@dataclass(frozen=True)
class FailureEvent:
    """One scripted departure: ``node`` (original index) dies at ``time``."""

    node: int
    time: float


@dataclass
class StreamReport:
    """Outcome of a streamed session.

    Per-receiver arrays are indexed by *original* node indices. Nodes
    that failed during the stream carry ``lost == -1`` as a sentinel.

    ``link_packets[v]`` counts the packets the edge *into* ``v``
    (from its then-current parent) actually carried — a multicast edge
    carries each packet once, however many receivers sit below it.
    ``forwarded[v]`` counts the copies ``v`` sent to its children. Both
    are the stream simulator's link-load accounting, the measured side
    of the congestion feedback loop (:mod:`repro.costmodel`).
    """

    packets_sent: int
    delivered: np.ndarray
    lost: np.ndarray
    worst_interruption: float
    failures_applied: int
    final_tree: MulticastTree = field(repr=False, default=None)
    link_packets: np.ndarray = field(repr=False, default=None)
    forwarded: np.ndarray = field(repr=False, default=None)

    @property
    def total_lost(self) -> int:
        return int(self.lost[self.lost > 0].sum())

    def loss_fraction(self) -> float:
        receivers = int(np.count_nonzero(self.lost >= 0))
        possible = self.packets_sent * receivers
        return self.total_lost / possible if possible else 0.0

    def uplink_utilization(
        self, offered_load: float, capacity: float = 8.0
    ) -> np.ndarray:
        """Measured per-node uplink utilization, *unclipped*.

        The forwarding duty cycle ``forwarded[v] / packets_sent`` is the
        average number of copies ``v`` sent per emitted packet (its
        effective out-degree over the stream, outage windows included);
        at offered load ``L`` per copy and uplink capacity ``C`` the
        utilization is ``duty * L / C`` — the measured counterpart of
        :func:`repro.costmodel.uplink_utilization`. On a failure-free
        stream the two agree exactly.
        """
        if self.forwarded is None:
            raise ValueError("this report carries no link-load accounting")
        if offered_load < 0:
            raise ValueError("offered_load must be non-negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        duty = self.forwarded.astype(np.float64) / float(self.packets_sent)
        return duty * (offered_load / capacity)


def simulate_stream(
    tree: MulticastTree,
    max_out_degree,
    packet_interval: float = 0.02,
    packets: int = 100,
    failures=(),
    recovery_latency: float = 0.1,
) -> StreamReport:
    """Stream ``packets`` packets through ``tree`` under failures.

    When a node fails at time ``T``, every receiver in its (orphaned)
    subtree loses packets emitted in ``[T, T + recovery_latency)``; the
    repaired topology serves them afterwards.

    :param tree: initial distribution tree (will not be mutated).
    :param max_out_degree: budget for the repair step — scalar, or an
        array indexed by *original* node index.
    :param failures: iterable of :class:`FailureEvent`. Failing the
        source raises (that ends the session rather than repairing it);
        a node can only fail once — later events for it are ignored.
    :returns: a :class:`StreamReport`.
    """
    if packets < 1:
        raise ValueError("need at least one packet")
    if packet_interval <= 0 or recovery_latency < 0:
        raise ValueError("intervals must be positive")

    n_original = tree.n
    failures = sorted(failures, key=lambda event: event.time)
    for event in failures:
        if not 0 <= event.node < n_original:
            raise ValueError(f"failure node {event.node} out of range")
        if event.node == tree.root:
            raise ValueError("source failure ends the session; not simulable")

    if np.isscalar(max_out_degree):
        budgets = np.full(n_original, int(max_out_degree), dtype=np.int64)
    else:
        budgets = np.asarray(max_out_degree, dtype=np.int64)
        if budgets.shape != (n_original,):
            raise ValueError(f"budgets must have shape ({n_original},)")

    # original index -> index in the current (repaired) tree; -1 = gone.
    index_map = np.arange(n_original)
    # current index -> original index, kept in lockstep with index_map.
    inverse = np.arange(n_original)
    alive = np.ones(n_original, dtype=bool)
    delivered = np.zeros(n_original, dtype=np.int64)
    lost = np.zeros(n_original, dtype=np.int64)
    blocked_until = np.zeros(n_original)
    # Link-load accounting: packets carried by each node's parent edge
    # and copies forwarded by each node, both by original index.
    link_packets = np.zeros(n_original, dtype=np.int64)
    forwarded = np.zeros(n_original, dtype=np.int64)

    failure_iter = iter(failures)
    pending = next(failure_iter, None)
    applied = 0
    worst_interruption = 0.0

    for packet in range(packets):
        now = packet * packet_interval

        # Apply failures scheduled at or before this packet's emission.
        while pending is not None and pending.time <= now:
            orig = pending.node
            if not alive[orig]:
                pending = next(failure_iter, None)
                continue
            current = int(index_map[orig])

            # Who loses service: the failed node's current subtree.
            affected = inverse[tree.subtree_nodes(current)]
            affected = affected[(affected >= 0) & (affected != orig)]

            survivor_budgets = budgets[alive]
            tree, step_map = repair_after_failure(
                tree, current, survivor_budgets
            )
            for o in np.flatnonzero(alive):
                index_map[o] = step_map[index_map[o]]
            alive[orig] = False
            index_map[orig] = -1
            inverse = np.full(tree.n, -1, dtype=np.int64)
            live = np.flatnonzero(alive)
            inverse[index_map[live]] = live
            applied += 1

            resume = pending.time + recovery_latency
            np.maximum.at(blocked_until, affected, resume)
            worst_interruption = max(worst_interruption, recovery_latency)
            pending = next(failure_iter, None)

        # Deliver this packet to every live receiver not in an outage.
        receivers = np.flatnonzero(alive)
        served: list[int] = []
        for orig in receivers:
            if int(index_map[orig]) == tree.root:
                continue
            if now < blocked_until[orig]:
                lost[orig] += 1
            else:
                delivered[orig] += 1
                served.append(int(index_map[orig]))

        # Link-load accounting: the packet crosses the union of the
        # served receivers' root paths, each edge once (multicast).
        # ``carried`` memoises edges already credited for this packet,
        # so the walk is O(edges crossed), not O(receivers * depth).
        parent = tree.parent
        carried: set[int] = set()
        for cur in served:
            walk = cur
            while walk != tree.root and walk not in carried:
                carried.add(walk)
                walk = int(parent[walk])
        for cur in carried:
            link_packets[inverse[cur]] += 1
            forwarded[inverse[int(parent[cur])]] += 1

    lost[~alive] = -1
    return StreamReport(
        packets_sent=packets,
        delivered=delivered,
        lost=lost,
        worst_interruption=worst_interruption,
        failures_applied=applied,
        final_tree=tree,
        link_packets=link_packets,
        forwarded=forwarded,
    )
