"""Dynamic group membership: incremental joins and leaves.

The paper closes with "in practice, there is interest in a decentralized
version of the algorithm". This module provides the membership layer
such a deployment needs: hosts join and leave a live session without a
global rebuild on every event.

Policy (the standard one for overlay trees):

* **join** — the newcomer attaches greedily: among members with spare
  fan-out, pick the one minimising the newcomer's resulting
  source-to-receiver delay (each member only needs to advertise its own
  delay — a local, decentralisable rule);
* **leave** — orphaned subtrees reattach via
  :func:`repro.overlay.repair.repair_after_failure`;
* **rebuild** — greedy maintenance erodes optimality, so once churn
  since the last full build exceeds ``rebuild_threshold`` (a fraction of
  the group), the polar-grid algorithm rebuilds from scratch. The
  paper's near-linear build time is what makes periodic full rebuilds
  affordable even for very large groups.

``mode="incremental"`` replaces reattach-or-rebuild with the cell-local
maintenance engine (:class:`~repro.overlay.incremental.
IncrementalGridTree`): once the group reaches ``bootstrap`` members, a
single full build seeds the grid structure and every later join/leave
touches only its own grid cell, with amortized partial rebuilds of the
drifted annulus instead of threshold-triggered full rebuilds. The
greedy policy stays the default — its behaviour is unchanged.

The class tracks both trees' quality so the maintenance/rebuild
trade-off is observable (see ``examples``/``benchmarks``).
"""

from __future__ import annotations

import time

import numpy as np

import repro.obs as obs
from repro.core.builder import build_polar_grid_tree
from repro.core.tree import MulticastTree
from repro.overlay.incremental import EventReceipt, IncrementalGridTree
from repro.overlay.repair import repair_after_failure

__all__ = ["DynamicOverlay"]


class DynamicOverlay:
    """A multicast group that absorbs churn between full rebuilds.

    :param source_coords: position of the (permanent) source.
    :param max_out_degree: uniform fan-out budget.
    :param rebuild_threshold: fraction of the membership that may churn
        (joins + leaves) before the next event triggers a full
        polar-grid rebuild. ``None`` disables automatic rebuilds.
    :param validate: self-check after every membership event: the
        current tree is re-derived through the independent oracle
        (:func:`repro.analysis.oracle.check_tree`) and the incremental
        delay/degree caches are compared against a recomputation; any
        drift raises :class:`~repro.core.tree.TreeInvariantError`
        immediately instead of corrupting later events. Costs O(n) per
        event — intended for simulations and tests, not the 5M-node
        path.
    :param mode: ``"greedy"`` (default, the policy above) or
        ``"incremental"`` — cell-local grid maintenance once the group
        reaches ``bootstrap`` members (requires the full construction's
        budget, ``max_out_degree >= 2^d + 2``).
    :param bootstrap: group size at which incremental mode seeds its
        grid with one full build; below it, joins attach greedily.
    """

    def __init__(
        self,
        source_coords,
        max_out_degree: int = 6,
        rebuild_threshold: float | None = 0.25,
        validate: bool = False,
        mode: str = "greedy",
        bootstrap: int = 16,
    ):
        coords = np.asarray(source_coords, dtype=np.float64)
        if coords.ndim != 1 or coords.shape[0] < 2:
            raise ValueError("source_coords must be a (d,) vector, d >= 2")
        if max_out_degree < 2:
            raise ValueError("max_out_degree must be at least 2")
        if rebuild_threshold is not None and not 0.0 < rebuild_threshold:
            raise ValueError("rebuild_threshold must be positive or None")
        if mode not in ("greedy", "incremental"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "incremental":
            full_threshold = (1 << coords.shape[0]) + 2
            if max_out_degree < full_threshold:
                raise ValueError(
                    f"incremental mode needs the full construction's budget "
                    f"(max_out_degree >= {full_threshold} for d="
                    f"{coords.shape[0]})"
                )
            if bootstrap < 2:
                raise ValueError("bootstrap must be at least 2")

        self.max_out_degree = int(max_out_degree)
        self.rebuild_threshold = rebuild_threshold
        self.validate = bool(validate)
        self.mode = mode
        self.bootstrap = int(bootstrap)
        self._names: list[str] = ["__source__"]
        self._points: list[np.ndarray] = [coords]
        self._index: dict[str, int] = {"__source__": 0}
        # Parent indices into the current arrays; root loops to itself.
        self._parent: list[int] = [0]
        self._delay: list[float] = [0.0]
        self._degree: list[int] = [0]
        self._churn_since_rebuild = 0
        self.rebuild_count = 0
        #: The cell-local maintenance engine, live once incremental mode
        #: has bootstrapped (None before that, and always in greedy mode).
        self.engine: IncrementalGridTree | None = None
        #: Receipt of the last event the engine handled (None otherwise).
        self.last_receipt: EventReceipt | None = None

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        if self.engine is not None:
            return self.engine.live_count
        return len(self._names)

    @property
    def dim(self) -> int:
        return self._points[0].shape[0]

    def members(self) -> list[str]:
        """Current member names, source first."""
        if self.engine is not None:
            return self.engine.members()
        return list(self._names)

    def tree(self) -> MulticastTree:
        """Snapshot of the current distribution tree."""
        if self.engine is not None:
            return self.engine.tree()
        return MulticastTree(
            points=np.asarray(self._points),
            parent=np.asarray(self._parent, dtype=np.int64),
            root=0,
        )

    def radius(self) -> float:
        if self.engine is not None:
            return self.engine.radius()
        return max(self._delay) if self.n > 1 else 0.0

    # ------------------------------------------------------------------

    def _self_check(self):
        """Oracle pass over the live tree plus cache-drift detection."""
        from repro.analysis.oracle import check_tree
        from repro.core.tree import TreeInvariantError

        t0 = time.perf_counter()
        tree = self.tree()
        report = check_tree(tree, d_max=self.max_out_degree)
        report.raise_if_failed()
        # The oracle validated the tree itself; now catch incremental
        # bookkeeping drift, which a later join would silently act on.
        fresh_delay = tree.root_delays()
        if not np.allclose(self._delay, fresh_delay, rtol=1e-9, atol=1e-9):
            worst = float(np.abs(np.asarray(self._delay) - fresh_delay).max())
            raise TreeInvariantError(
                f"cached delays drifted from the tree (worst gap {worst:.3e})"
            )
        if not np.array_equal(self._degree, tree.out_degrees()):
            raise TreeInvariantError(
                "cached out-degrees drifted from the tree"
            )
        obs.observe("overlay.validation.seconds", time.perf_counter() - t0)

    def _after_event(self):
        if self.validate:
            self._self_check()

    def _maybe_rebuild(self):
        if self.rebuild_threshold is None or self.n < 3:
            return
        if self._churn_since_rebuild > self.rebuild_threshold * self.n:
            self.rebuild()

    def _maybe_promote(self):
        """Seed the incremental engine once the group is big enough."""
        if self.mode != "incremental" or self.engine is not None:
            return
        if len(self._names) < self.bootstrap:
            return
        result = build_polar_grid_tree(
            np.asarray(self._points), 0, self.max_out_degree
        )
        if result.grid is None:
            # Degenerate cloud (e.g. everyone at the source); stay
            # greedy and retry at the next event.
            return
        self.engine = IncrementalGridTree(
            result,
            names=list(self._names),
            validate=self.validate,
        )

    def rebuild(self):
        """Full polar-grid rebuild over the current membership."""
        obs.add("overlay.rebuilds.total")
        if self.engine is not None:
            self.engine.full_rebuild()
            self.rebuild_count += 1
            return
        points = np.asarray(self._points)
        result = build_polar_grid_tree(points, 0, self.max_out_degree)
        tree = result.tree
        self._parent = tree.parent.tolist()
        self._delay = tree.root_delays().tolist()
        self._degree = tree.out_degrees().tolist()
        self._churn_since_rebuild = 0
        self.rebuild_count += 1
        self._after_event()

    def join(self, name: str, coords) -> str:
        """Attach a new member; returns the name of its parent.

        Greedy rule: minimise the newcomer's delay over members with
        spare fan-out. May trigger a full rebuild (in which case the
        returned parent reflects the post-rebuild tree).
        """
        if self.engine is not None:
            obs.add("overlay.joins.total")
            receipt = self.engine.join(name, coords)
            self.last_receipt = receipt
            return self.engine.names[receipt.parent]
        if name in self._index:
            raise ValueError(f"member {name!r} already in the session")
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape != (self.dim,):
            raise ValueError(
                f"coords must have shape ({self.dim},); got {coords.shape}"
            )

        obs.add("overlay.joins.total")
        points = np.asarray(self._points)
        degree = np.asarray(self._degree)
        delay = np.asarray(self._delay)
        open_mask = degree < self.max_out_degree
        candidates = np.flatnonzero(open_mask)
        # The source plus a fan-out >= 2 guarantee there is always room:
        # a tree over m nodes with every node allowed >= 2 children has
        # at least one open node.
        dist = np.sqrt(np.sum((points[candidates] - coords) ** 2, axis=1))
        cost = delay[candidates] + dist
        pick = int(candidates[int(np.argmin(cost))])

        self._index[name] = self.n
        self._names.append(name)
        self._points.append(coords)
        self._parent.append(pick)
        self._delay.append(float(cost.min()))
        self._degree.append(0)
        self._degree[pick] += 1
        self._churn_since_rebuild += 1
        self._maybe_promote()
        if self.engine is None:
            self._maybe_rebuild()
            self._after_event()
            parent_idx = self._parent[self._index[name]]
            return self._names[parent_idx]
        return self.engine.names[self.engine.parent[self.engine.index[name]]]

    def leave(self, name: str):
        """Remove a member; orphans are reattached, churn is counted."""
        if self.engine is not None:
            obs.add("overlay.leaves.total")
            self.last_receipt = self.engine.leave(name)
            return
        if name == "__source__":
            raise ValueError("the source cannot leave its own session")
        if name not in self._index:
            raise ValueError(f"unknown member {name!r}")
        obs.add("overlay.leaves.total")
        victim = self._index[name]

        tree = self.tree()
        new_tree, index_map = repair_after_failure(
            tree, victim, self.max_out_degree, validate=self.validate
        )
        survivors = [i for i in range(self.n) if i != victim]
        self._names = [self._names[i] for i in survivors]
        self._points = [self._points[i] for i in survivors]
        self._index = {nm: i for i, nm in enumerate(self._names)}
        self._parent = new_tree.parent.tolist()
        self._delay = new_tree.root_delays().tolist()
        self._degree = new_tree.out_degrees().tolist()
        self._churn_since_rebuild += 1
        self._maybe_rebuild()
        self._after_event()

    # ------------------------------------------------------------------

    def quality_gap(self) -> float:
        """Radius of the maintained tree over a fresh rebuild's radius.

        1.0 means maintenance has cost nothing; the gap grows with churn
        and resets on rebuild. This is the measurable trade-off the
        rebuild threshold controls.
        """
        if self.n <= 2:
            return 1.0
        if self.engine is not None:
            points = self.engine.tree().points
        else:
            points = np.asarray(self._points)
        fresh = build_polar_grid_tree(points, 0, self.max_out_degree)
        if fresh.radius == 0.0:
            return 1.0
        return self.radius() / fresh.radius
