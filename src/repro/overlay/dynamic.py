"""Dynamic group membership: incremental joins and leaves.

The paper closes with "in practice, there is interest in a decentralized
version of the algorithm". This module provides the membership layer
such a deployment needs: hosts join and leave a live session without a
global rebuild on every event.

Policy (the standard one for overlay trees):

* **join** — the newcomer attaches greedily: among members with spare
  fan-out, pick the one minimising the newcomer's resulting
  source-to-receiver delay (each member only needs to advertise its own
  delay — a local, decentralisable rule);
* **leave** — orphaned subtrees reattach via
  :func:`repro.overlay.repair.repair_after_failure`;
* **rebuild** — greedy maintenance erodes optimality, so once churn
  since the last full build exceeds ``rebuild_threshold`` (a fraction of
  the group), the polar-grid algorithm rebuilds from scratch. The
  paper's near-linear build time is what makes periodic full rebuilds
  affordable even for very large groups.

``mode="incremental"`` replaces reattach-or-rebuild with the cell-local
maintenance engine (:class:`~repro.overlay.incremental.
IncrementalGridTree`): once the group reaches ``bootstrap`` members, a
single full build seeds the grid structure and every later join/leave
touches only its own grid cell, with amortized partial rebuilds of the
drifted annulus instead of threshold-triggered full rebuilds. The
greedy policy stays the default — its behaviour is unchanged.

The class tracks both trees' quality so the maintenance/rebuild
trade-off is observable (see ``examples``/``benchmarks``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.core.builder import build_polar_grid_tree
from repro.core.tree import MulticastTree
from repro.costmodel import (
    CongestionCost,
    effective_radius,
    get_cost_model,
    inflation_factor,
    link_utilization,
)
from repro.overlay.incremental import EventReceipt, IncrementalGridTree
from repro.overlay.repair import repair_after_failure

__all__ = ["CongestionReceipt", "DynamicOverlay"]


@dataclass(frozen=True)
class CongestionReceipt:
    """What one :meth:`DynamicOverlay.observe_load` call saw and did.

    :param offered_load: the observed per-copy stream load.
    :param inflation: loaded / idle effective radius before any action.
    :param triggered: whether the inflation crossed the threshold.
    :param rebuilt: whether a full rebuild was performed.
    :param radius_before: loaded effective radius before the rebuild.
    :param radius_after: loaded effective radius after the rebuild
        (equal to ``radius_before`` when no rebuild happened).
    """

    offered_load: float
    inflation: float
    triggered: bool
    rebuilt: bool
    radius_before: float
    radius_after: float


class DynamicOverlay:
    """A multicast group that absorbs churn between full rebuilds.

    :param source_coords: position of the (permanent) source.
    :param max_out_degree: uniform fan-out budget.
    :param rebuild_threshold: fraction of the membership that may churn
        (joins + leaves) before the next event triggers a full
        polar-grid rebuild. ``None`` disables automatic rebuilds.
    :param validate: self-check after every membership event: the
        current tree is re-derived through the independent oracle
        (:func:`repro.analysis.oracle.check_tree`) and the incremental
        delay/degree caches are compared against a recomputation; any
        drift raises :class:`~repro.core.tree.TreeInvariantError`
        immediately instead of corrupting later events. Costs O(n) per
        event — intended for simulations and tests, not the 5M-node
        path.
    :param mode: ``"greedy"`` (default, the policy above) or
        ``"incremental"`` — cell-local grid maintenance once the group
        reaches ``bootstrap`` members (requires the full construction's
        budget, ``max_out_degree >= 2^d + 2``).
    :param bootstrap: group size at which incremental mode seeds its
        grid with one full build; below it, joins attach greedily.
    :param cost_model: edge-cost model for the congestion policy (any
        form :func:`repro.costmodel.get_cost_model` accepts). Defaults
        to :class:`~repro.costmodel.CongestionCost` when a
        ``congestion_threshold`` is set, else stays unset.
    :param congestion_threshold: inflation-factor ceiling for
        :meth:`observe_load` — when the offered load inflates the
        effective radius past ``threshold * idle radius``, the overlay
        rebuilds. ``None`` (default) disables congestion rebuilds;
        ``observe_load`` then only records the inflation.
    :param capacity: uplink capacity (stream copies per capacity unit)
        for the static utilization model.
    """

    def __init__(
        self,
        source_coords,
        max_out_degree: int = 6,
        rebuild_threshold: float | None = 0.25,
        validate: bool = False,
        mode: str = "greedy",
        bootstrap: int = 16,
        cost_model=None,
        congestion_threshold: float | None = None,
        capacity: float = 8.0,
    ):
        coords = np.asarray(source_coords, dtype=np.float64)
        if coords.ndim != 1 or coords.shape[0] < 2:
            raise ValueError("source_coords must be a (d,) vector, d >= 2")
        if max_out_degree < 2:
            raise ValueError("max_out_degree must be at least 2")
        if rebuild_threshold is not None and not 0.0 < rebuild_threshold:
            raise ValueError("rebuild_threshold must be positive or None")
        if mode not in ("greedy", "incremental"):
            raise ValueError(f"unknown mode {mode!r}")
        if mode == "incremental":
            full_threshold = (1 << coords.shape[0]) + 2
            if max_out_degree < full_threshold:
                raise ValueError(
                    f"incremental mode needs the full construction's budget "
                    f"(max_out_degree >= {full_threshold} for d="
                    f"{coords.shape[0]})"
                )
            if bootstrap < 2:
                raise ValueError("bootstrap must be at least 2")
        if congestion_threshold is not None and congestion_threshold <= 1.0:
            raise ValueError(
                "congestion_threshold must exceed 1.0 (an idle tree has "
                "inflation exactly 1.0) or be None"
            )
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if cost_model is None and congestion_threshold is not None:
            cost_model = CongestionCost()

        self.cost_model = (
            get_cost_model(cost_model) if cost_model is not None else None
        )
        self.congestion_threshold = congestion_threshold
        self.capacity = float(capacity)
        self.congestion_triggers = 0
        self.congestion_rebuilds = 0
        self.max_out_degree = int(max_out_degree)
        self.rebuild_threshold = rebuild_threshold
        self.validate = bool(validate)
        self.mode = mode
        self.bootstrap = int(bootstrap)
        self._names: list[str] = ["__source__"]
        self._points: list[np.ndarray] = [coords]
        self._index: dict[str, int] = {"__source__": 0}
        # Parent indices into the current arrays; root loops to itself.
        self._parent: list[int] = [0]
        self._delay: list[float] = [0.0]
        self._degree: list[int] = [0]
        self._churn_since_rebuild = 0
        self.rebuild_count = 0
        #: The cell-local maintenance engine, live once incremental mode
        #: has bootstrapped (None before that, and always in greedy mode).
        self.engine: IncrementalGridTree | None = None
        #: Receipt of the last event the engine handled (None otherwise).
        self.last_receipt: EventReceipt | None = None

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        if self.engine is not None:
            return self.engine.live_count
        return len(self._names)

    @property
    def dim(self) -> int:
        return self._points[0].shape[0]

    def members(self) -> list[str]:
        """Current member names, source first."""
        if self.engine is not None:
            return self.engine.members()
        return list(self._names)

    def tree(self) -> MulticastTree:
        """Snapshot of the current distribution tree."""
        if self.engine is not None:
            return self.engine.tree()
        return MulticastTree(
            points=np.asarray(self._points),
            parent=np.asarray(self._parent, dtype=np.int64),
            root=0,
        )

    def radius(self) -> float:
        if self.engine is not None:
            return self.engine.radius()
        return max(self._delay) if self.n > 1 else 0.0

    # ------------------------------------------------------------------

    def _self_check(self):
        """Oracle pass over the live tree plus cache-drift detection."""
        from repro.analysis.oracle import check_tree
        from repro.core.tree import TreeInvariantError

        t0 = time.perf_counter()
        tree = self.tree()
        report = check_tree(tree, d_max=self.max_out_degree)
        report.raise_if_failed()
        # The oracle validated the tree itself; now catch incremental
        # bookkeeping drift, which a later join would silently act on.
        fresh_delay = tree.root_delays()
        if not np.allclose(self._delay, fresh_delay, rtol=1e-9, atol=1e-9):
            worst = float(np.abs(np.asarray(self._delay) - fresh_delay).max())
            raise TreeInvariantError(
                f"cached delays drifted from the tree (worst gap {worst:.3e})"
            )
        if not np.array_equal(self._degree, tree.out_degrees()):
            raise TreeInvariantError(
                "cached out-degrees drifted from the tree"
            )
        obs.observe("overlay.validation.seconds", time.perf_counter() - t0)

    def _after_event(self):
        if self.validate:
            self._self_check()

    def _maybe_rebuild(self):
        if self.rebuild_threshold is None or self.n < 3:
            return
        if self._churn_since_rebuild > self.rebuild_threshold * self.n:
            self.rebuild()

    def _maybe_promote(self):
        """Seed the incremental engine once the group is big enough."""
        if self.mode != "incremental" or self.engine is not None:
            return
        if len(self._names) < self.bootstrap:
            return
        result = build_polar_grid_tree(
            np.asarray(self._points), 0, self.max_out_degree
        )
        if result.grid is None:
            # Degenerate cloud (e.g. everyone at the source); stay
            # greedy and retry at the next event.
            return
        self.engine = IncrementalGridTree(
            result,
            names=list(self._names),
            validate=self.validate,
        )

    def rebuild(self):
        """Full polar-grid rebuild over the current membership."""
        obs.add("overlay.rebuilds.total")
        if self.engine is not None:
            self.engine.full_rebuild()
            self.rebuild_count += 1
            return
        points = np.asarray(self._points)
        result = build_polar_grid_tree(points, 0, self.max_out_degree)
        tree = result.tree
        self._parent = tree.parent.tolist()
        self._delay = tree.root_delays().tolist()
        self._degree = tree.out_degrees().tolist()
        self._churn_since_rebuild = 0
        self.rebuild_count += 1
        self._after_event()

    def join(self, name: str, coords) -> str:
        """Attach a new member; returns the name of its parent.

        Greedy rule: minimise the newcomer's delay over members with
        spare fan-out. May trigger a full rebuild (in which case the
        returned parent reflects the post-rebuild tree).
        """
        if self.engine is not None:
            obs.add("overlay.joins.total")
            receipt = self.engine.join(name, coords)
            self.last_receipt = receipt
            return self.engine.names[receipt.parent]
        if name in self._index:
            raise ValueError(f"member {name!r} already in the session")
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape != (self.dim,):
            raise ValueError(
                f"coords must have shape ({self.dim},); got {coords.shape}"
            )

        obs.add("overlay.joins.total")
        points = np.asarray(self._points)
        degree = np.asarray(self._degree)
        delay = np.asarray(self._delay)
        open_mask = degree < self.max_out_degree
        candidates = np.flatnonzero(open_mask)
        # The source plus a fan-out >= 2 guarantee there is always room:
        # a tree over m nodes with every node allowed >= 2 children has
        # at least one open node.
        dist = np.sqrt(np.sum((points[candidates] - coords) ** 2, axis=1))
        cost = delay[candidates] + dist
        pick = int(candidates[int(np.argmin(cost))])

        self._index[name] = self.n
        self._names.append(name)
        self._points.append(coords)
        self._parent.append(pick)
        self._delay.append(float(cost.min()))
        self._degree.append(0)
        self._degree[pick] += 1
        self._churn_since_rebuild += 1
        self._maybe_promote()
        if self.engine is None:
            self._maybe_rebuild()
            self._after_event()
            parent_idx = self._parent[self._index[name]]
            return self._names[parent_idx]
        return self.engine.names[self.engine.parent[self.engine.index[name]]]

    def leave(self, name: str):
        """Remove a member; orphans are reattached, churn is counted."""
        if self.engine is not None:
            obs.add("overlay.leaves.total")
            self.last_receipt = self.engine.leave(name)
            return
        if name == "__source__":
            raise ValueError("the source cannot leave its own session")
        if name not in self._index:
            raise ValueError(f"unknown member {name!r}")
        obs.add("overlay.leaves.total")
        victim = self._index[name]

        tree = self.tree()
        new_tree, index_map = repair_after_failure(
            tree, victim, self.max_out_degree, validate=self.validate
        )
        survivors = [i for i in range(self.n) if i != victim]
        self._names = [self._names[i] for i in survivors]
        self._points = [self._points[i] for i in survivors]
        self._index = {nm: i for i, nm in enumerate(self._names)}
        self._parent = new_tree.parent.tolist()
        self._delay = new_tree.root_delays().tolist()
        self._degree = new_tree.out_degrees().tolist()
        self._churn_since_rebuild += 1
        self._maybe_rebuild()
        self._after_event()

    # ------------------------------------------------------------------
    # congestion feedback
    # ------------------------------------------------------------------

    def effective_radius(self, offered_load: float | None = None) -> float:
        """Effective radius under the configured cost model.

        ``offered_load=None`` evaluates the idle network; a load uses
        the static uplink model at this overlay's ``capacity``. Without
        a configured cost model this is the plain Euclidean radius.
        """
        tree = self.tree()
        if self.cost_model is None:
            return tree.radius()
        utilization = (
            None
            if offered_load is None
            else link_utilization(tree, offered_load, self.capacity)
        )
        return effective_radius(tree, self.cost_model, utilization)

    def observe_load(self, offered_load: float) -> CongestionReceipt:
        """Feed an offered-load observation into the rebuild policy.

        Computes the inflation factor (loaded over idle effective
        radius) of the current tree under the configured cost model; if
        it exceeds ``congestion_threshold``, triggers a full rebuild.
        The inflation is recorded in the ``overlay.congestion.inflation``
        histogram either way; triggers and rebuilds bump
        ``overlay.congestion.{trigger,rebuild}.total``.

        The rebuild is **make-before-break**: a fresh polar-grid tree is
        built off to the side and adopted only if it improves the loaded
        effective radius, so ``radius_after <= radius_before`` always
        holds — a trigger can never make service worse. (Greedy mode
        only; the incremental engine's full rebuild is in-place, so
        there the fresh tree is adopted unconditionally.) Triggers that
        did not improve anything still count toward
        ``congestion_triggers``; only adopted trees count as rebuilds.
        """
        if offered_load < 0:
            raise ValueError("offered_load must be non-negative")
        model = self.cost_model if self.cost_model is not None else CongestionCost()
        tree = self.tree()
        utilization = link_utilization(tree, offered_load, self.capacity)
        inflation = inflation_factor(tree, model, utilization)
        obs.observe("overlay.congestion.inflation", inflation)
        radius_before = effective_radius(tree, model, utilization)

        triggered = (
            self.congestion_threshold is not None
            and inflation > self.congestion_threshold
        )
        rebuilt = False
        radius_after = radius_before
        if triggered:
            obs.add("overlay.congestion.trigger.total")
            self.congestion_triggers += 1
            if self.n >= 3:
                rebuilt, radius_after = self._congestion_rebuild(
                    model, offered_load, radius_before
                )
        return CongestionReceipt(
            offered_load=float(offered_load),
            inflation=float(inflation),
            triggered=bool(triggered),
            rebuilt=rebuilt,
            radius_before=radius_before,
            radius_after=radius_after,
        )

    def _congestion_rebuild(
        self, model, offered_load: float, radius_before: float
    ) -> tuple[bool, float]:
        """Make-before-break rebuild; returns (adopted, loaded radius)."""
        if self.engine is not None:
            # The engine rebuilds in place; adopt unconditionally.
            self.rebuild()
            obs.add("overlay.congestion.rebuild.total")
            self.congestion_rebuilds += 1
            new_tree = self.tree()
            return True, effective_radius(
                new_tree,
                model,
                link_utilization(new_tree, offered_load, self.capacity),
            )
        points = np.asarray(self._points)
        fresh = build_polar_grid_tree(points, 0, self.max_out_degree).tree
        radius_fresh = effective_radius(
            fresh, model, link_utilization(fresh, offered_load, self.capacity)
        )
        if radius_fresh >= radius_before:
            return False, radius_before
        self._parent = fresh.parent.tolist()
        self._delay = fresh.root_delays().tolist()
        self._degree = fresh.out_degrees().tolist()
        self._churn_since_rebuild = 0
        self.rebuild_count += 1
        obs.add("overlay.rebuilds.total")
        obs.add("overlay.congestion.rebuild.total")
        self.congestion_rebuilds += 1
        self._after_event()
        return True, radius_fresh

    # ------------------------------------------------------------------

    def quality_gap(self) -> float:
        """Radius of the maintained tree over a fresh rebuild's radius.

        1.0 means maintenance has cost nothing; the gap grows with churn
        and resets on rebuild. This is the measurable trade-off the
        rebuild threshold controls.
        """
        if self.n <= 2:
            return 1.0
        if self.engine is not None:
            points = self.engine.tree().points
        else:
            points = np.asarray(self._points)
        fresh = build_polar_grid_tree(points, 0, self.max_out_degree)
        if fresh.radius == 0.0:
            return 1.0
        return self.radius() / fresh.radius
