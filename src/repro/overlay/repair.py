"""Tree repair after a host departure.

When a non-root host leaves (failure or churn), the subtrees rooted at
its children are orphaned. The repair reattaches each orphan root to the
surviving node that minimises its new source-to-receiver delay among
nodes with spare fan-out that are *not inside the orphan's own subtree*
(which would create a cycle). Orphans are processed closest-to-source
first so early reattachments can serve as attachment points for later
ones.

This is the operational complement the paper leaves to "future work on a
decentralized version": it keeps the tree valid between full rebuilds.
"""

from __future__ import annotations

import time

import numpy as np

import repro.obs as obs
from repro.core.tree import MulticastTree

__all__ = ["repair_after_failure"]


def repair_after_failure(
    tree: MulticastTree,
    failed: int,
    max_out_degree,
    *,
    validate: bool = False,
) -> tuple[MulticastTree, np.ndarray]:
    """Remove ``failed`` from the tree and reattach its orphans.

    :param tree: the current distribution tree.
    :param failed: index of the departing node (must not be the root).
    :param max_out_degree: scalar fan-out bound, or per-node array
        aligned with the *original* indices.
    :param validate: run the independent structural oracle
        (:func:`repro.analysis.oracle.check_tree`) over the repaired
        tree — spanning, acyclicity, degree cap, recomputed delays —
        and raise :class:`~repro.core.tree.TreeInvariantError` on any
        violation. Churn simulations switch this on to self-check every
        repair they perform.
    :returns: ``(new_tree, index_map)`` where ``index_map[old] = new``
        position in the surviving tree and ``index_map[failed] == -1``.
    :raises ValueError: if the root fails (a multicast without its source
        cannot be repaired) or if no feasible attachment point remains.
    """
    with obs.span("overlay.repair", n=tree.n, failed=int(failed)):
        return _repair_impl(tree, failed, max_out_degree, validate=validate)


def _repair_impl(
    tree: MulticastTree,
    failed: int,
    max_out_degree,
    *,
    validate: bool,
) -> tuple[MulticastTree, np.ndarray]:
    failed = int(failed)
    if failed == tree.root:
        raise ValueError("cannot repair the failure of the source itself")
    if not 0 <= failed < tree.n:
        raise ValueError(f"node index {failed} out of range")

    n = tree.n
    if np.isscalar(max_out_degree):
        budgets = np.full(n, int(max_out_degree), dtype=np.int64)
    else:
        budgets = np.asarray(max_out_degree, dtype=np.int64)
        if budgets.shape != (n,):
            raise ValueError(f"budgets must have shape ({n},)")

    parent = tree.parent.copy()
    orphans = np.flatnonzero(parent == failed)
    orphans = orphans[orphans != failed]

    delays = tree.root_delays().copy()
    degrees = tree.out_degrees().copy()
    degrees[tree.parent[failed]] -= 1  # the failed node's own uplink frees

    # Mark the failed node unusable as an attachment point.
    usable = np.ones(n, dtype=bool)
    usable[failed] = False

    # Closest-to-source orphans first: their reattachment restores short
    # paths that deeper orphans can then hang from.
    orphans = orphans[np.argsort(delays[orphans], kind="stable")]

    # No orphan may adopt into a subtree that is itself still detached —
    # two orphan subtrees adopting into each other forms a cycle. Mark
    # every orphan subtree forbidden up front and release each one as it
    # reconnects.
    subtrees = {int(o): tree.subtree_nodes(int(o)) for o in orphans}
    detached = np.zeros(n, dtype=bool)
    for nodes in subtrees.values():
        detached[nodes] = True

    obs.add("overlay.repairs.total")
    obs.add("overlay.orphans.total", int(orphans.size))
    obs.observe("overlay.orphan_subtree_nodes", int(detached.sum()))

    for orphan in orphans:
        orphan = int(orphan)
        subtree = subtrees[orphan]
        candidates = np.flatnonzero(
            usable & ~detached & (degrees < budgets)
        )
        if candidates.size == 0:
            raise ValueError(
                "no surviving node has spare fan-out to adopt the orphan"
            )
        dist = np.sqrt(
            np.sum((tree.points[candidates] - tree.points[orphan]) ** 2, axis=1)
        )
        cost = delays[candidates] + dist
        pick = int(np.argmin(cost))
        adopter = int(candidates[pick])
        parent[orphan] = adopter
        degrees[adopter] += 1
        # Update delays throughout the orphan's subtree for later orphans
        # and release it as a legitimate attachment region.
        shift = float(cost[pick]) - float(delays[orphan])
        delays[subtree] += shift
        detached[subtree] = False

    # Compact indices: drop the failed node.
    index_map = np.full(n, -1, dtype=np.int64)
    survivors = np.flatnonzero(np.arange(n) != failed)
    index_map[survivors] = np.arange(survivors.size)

    new_parent = index_map[parent[survivors]]
    new_tree = MulticastTree(
        points=tree.points[survivors],
        parent=new_parent,
        root=int(index_map[tree.root]),
    )
    if validate:
        # Lazy import: analysis depends on core, not the other way round.
        from repro.analysis.oracle import check_tree

        t0 = time.perf_counter()
        check_tree(new_tree, d_max=budgets[survivors]).raise_if_failed()
        obs.observe("overlay.validation.seconds", time.perf_counter() - t0)
    return new_tree, index_map
