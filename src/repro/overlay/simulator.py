"""Event-driven dissemination simulator.

Replays one multicast through a distribution tree: the source emits a
packet at time zero; each host receives it after its parent's send time
plus the link delay, spends its per-hop processing delay, then forwards
to its children (sequentially, if a serialisation delay is configured —
modelling the fact that a host with fan-out 6 cannot put six copies on
the wire at the same instant).

With zero processing and serialisation delays the receive times collapse
to the tree's analytic root delays — the identity the test suite checks —
so the simulator doubles as an independent oracle for the delay math.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.core.tree import MulticastTree

__all__ = ["DisseminationResult", "simulate_dissemination"]


@dataclass
class DisseminationResult:
    """Outcome of one simulated dissemination.

    :param receive_time: per-node packet arrival time (source gets 0).
    :param completion_time: when the last receiver got the packet.
    :param events: number of processed simulator events.
    """

    receive_time: np.ndarray
    completion_time: float
    events: int
    order: list[int] = field(default_factory=list, repr=False)

    def delay_of(self, node: int) -> float:
        return float(self.receive_time[node])


def simulate_dissemination(
    tree: MulticastTree,
    processing_delay=0.0,
    serialization_delay: float = 0.0,
) -> DisseminationResult:
    """Simulate one packet flooding down ``tree``.

    :param tree: the distribution tree to replay.
    :param processing_delay: scalar or per-node array of forwarding
        latencies charged once when a host starts relaying.
    :param serialization_delay: extra delay between *consecutive* child
        transmissions of the same host (child i starts ``i * s`` after
        the first). Captures uplink serialisation; 0 restores the
        paper's pure-distance model.
    :returns: a :class:`DisseminationResult`.
    """
    n = tree.n
    if np.isscalar(processing_delay):
        proc = np.full(n, float(processing_delay))
    else:
        proc = np.asarray(processing_delay, dtype=np.float64)
        if proc.shape != (n,):
            raise ValueError(
                f"processing_delay must be scalar or shape ({n},); got {proc.shape}"
            )
    if np.any(proc < 0) or serialization_delay < 0:
        raise ValueError("delays cannot be negative")

    children = tree.children_lists()
    edge_len = tree.edge_lengths()

    receive = np.full(n, np.inf)
    receive[tree.root] = 0.0
    order: list[int] = []
    events = 0

    # Heap of (time, node) at which `node` has the packet in hand.
    heap: list[tuple[float, int]] = [(0.0, tree.root)]
    while heap:
        now, node = heapq.heappop(heap)
        events += 1
        order.append(node)
        kids = children[node]
        if not kids:
            continue
        send_base = now + float(proc[node])
        for slot, child in enumerate(kids):
            arrival = send_base + slot * serialization_delay + float(edge_len[child])
            receive[child] = arrival
            heapq.heappush(heap, (arrival, child))

    if np.any(np.isinf(receive)):
        unreached = int(np.flatnonzero(np.isinf(receive))[0])
        raise ValueError(f"node {unreached} is unreachable from the root")

    obs.add("overlay.simulations.total")
    obs.add("overlay.sim_events.total", events)
    return DisseminationResult(
        receive_time=receive,
        completion_time=float(receive.max()),
        events=events,
        order=order,
    )
