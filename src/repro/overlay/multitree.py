"""Striped multi-tree delivery (SplitStream-style) on the polar grid.

A single tree concentrates forwarding load on its interior nodes while
its leaves contribute nothing. Splitting the stream into ``k`` stripes,
each delivered over its *own* tree, spreads the load — provided the
trees use different interior nodes.

The polar grid gives a natural way to diversify: the grid's cell
boundaries are arbitrary up to a global angular rotation, and rotating
the frame changes which members land near cell anchors and therefore
which become representatives/forwarders. Stripe ``i`` is built on
coordinates rotated by ``i / k`` of a cell, with a per-stripe fan-out
budget of ``floor(total_budget / k)`` so the *sum* of a node's degrees
across stripes respects its real uplink.

Quality: each stripe tree is still a polar-grid tree (rotation is an
isometry), so per-stripe delay keeps the asymptotic guarantee for the
per-stripe budget. Load: measured by :meth:`MultiTree.load_stats` —
the interesting number is the fraction of members that forward in *at
least one* stripe, vs the single-tree interior fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import build_polar_grid_tree
from repro.core.tree import MulticastTree
from repro.geometry.points import validate_points

__all__ = ["MultiTree", "build_striped_trees"]


def _rotate_2d(points: np.ndarray, center: np.ndarray, angle: float):
    """Rotate points around ``center`` by ``angle`` (2-D only)."""
    cos, sin = np.cos(angle), np.sin(angle)
    rel = points - center
    return center + rel @ np.array([[cos, sin], [-sin, cos]])


@dataclass
class MultiTree:
    """``k`` stripe trees over one membership."""

    trees: list = field(default_factory=list)
    stripe_budget: int = 0

    @property
    def stripes(self) -> int:
        return len(self.trees)

    @property
    def n(self) -> int:
        return self.trees[0].n if self.trees else 0

    def total_out_degrees(self) -> np.ndarray:
        """Per-node forwarding load summed over all stripes."""
        total = np.zeros(self.n, dtype=np.int64)
        for tree in self.trees:
            total += tree.out_degrees()
        return total

    def validate(self, total_budget: int):
        """Every stripe a valid tree; summed degrees within budget."""
        for tree in self.trees:
            tree.validate(max_out_degree=self.stripe_budget)
        worst = int(self.total_out_degrees().max()) if self.n else 0
        if worst > total_budget:
            raise ValueError(
                f"summed stripe degree {worst} exceeds the budget "
                f"{total_budget}"
            )
        return self

    def stripe_radii(self) -> list[float]:
        return [tree.radius() for tree in self.trees]

    def completion_radius(self) -> float:
        """Delay until a receiver holds *every* stripe, worst case:
        per node, the max over stripes; over nodes, the max."""
        per_node = np.zeros(self.n)
        for tree in self.trees:
            np.maximum(per_node, tree.root_delays(), out=per_node)
        return float(per_node.max()) if self.n else 0.0

    def load_stats(self) -> dict:
        """How well forwarding is spread across the membership."""
        total = self.total_out_degrees()
        root = self.trees[0].root if self.trees else 0
        members = np.ones(self.n, dtype=bool)
        members[root] = False
        forwarding = (total > 0) & members
        return {
            "forwarding_fraction": float(forwarding.sum())
            / max(int(members.sum()), 1),
            "max_total_degree": int(total.max()) if self.n else 0,
            "mean_total_degree": float(total[members].mean())
            if members.any()
            else 0.0,
        }


def build_striped_trees(
    points,
    source: int = 0,
    total_budget: int = 6,
    stripes: int = 2,
) -> MultiTree:
    """Build ``stripes`` rotated polar-grid trees sharing one budget.

    :param points: ``(n, 2)`` coordinates (rotation diversification is
        2-D; higher dimensions would rotate the azimuth).
    :param total_budget: each node's uplink across *all* stripes.
    :param stripes: number of stripe trees; each gets
        ``total_budget // stripes`` fan-out, which must be >= 2.
    :raises ValueError: for budgets too small to split.
    """
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    validate_points(points, dim=2)
    if stripes < 1:
        raise ValueError("need at least one stripe")
    stripe_budget = total_budget // stripes
    if stripe_budget < 2:
        raise ValueError(
            f"budget {total_budget} cannot give {stripes} stripes >= 2 "
            "fan-out each"
        )
    n = points.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")

    center = points[source]
    trees = []
    golden = (np.sqrt(5.0) - 1.0) / 2.0  # ~0.618, maximally non-dyadic
    for stripe in range(stripes):
        # Rotate by a non-dyadic fraction of the circle. Dyadic angles
        # (like pi/4) merely *relabel* the grid's cells at deeper rings
        # — the boundaries are 2^i-fold symmetric — leaving the stripe
        # trees nearly identical; the golden-ratio angle shifts every
        # ring's boundaries genuinely.
        angle = 2.0 * np.pi * golden * stripe / stripes
        rotated = _rotate_2d(points, center, angle)
        result = build_polar_grid_tree(rotated, source, stripe_budget)
        # Re-home the tree onto the *original* coordinates: rotation is
        # an isometry, so delays are identical; only the frame differs.
        trees.append(
            MulticastTree(
                points=points, parent=result.tree.parent, root=source
            )
        )
    return MultiTree(trees=trees, stripe_budget=stripe_budget)
