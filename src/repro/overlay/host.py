"""End-host model for overlay multicast sessions.

A :class:`Host` is a participant identified by name, positioned in the
delay space (network coordinates, see :mod:`repro.embedding`), with a
fan-out budget — the paper's "fixed bound on the number of hosts to which
it can communicate", derived from its uplink bandwidth divided by the
stream rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Host", "fanout_from_bandwidth"]


def fanout_from_bandwidth(uplink_kbps: float, stream_kbps: float) -> int:
    """Fan-out budget implied by an uplink: ``floor(uplink / stream)``.

    This is the bandwidth-to-degree translation of the paper's
    introduction. A host that cannot even sustain one copy gets fan-out
    0 (it can only be a leaf).
    """
    if stream_kbps <= 0:
        raise ValueError("stream rate must be positive")
    if uplink_kbps < 0:
        raise ValueError("uplink bandwidth cannot be negative")
    return int(uplink_kbps // stream_kbps)


@dataclass(frozen=True)
class Host:
    """One overlay participant.

    :param name: unique identifier (hostname, peer id, ...).
    :param coords: position in the Euclidean delay space.
    :param max_fanout: out-degree budget in the distribution tree.
    :param processing_delay: per-hop forwarding latency added by this
        host when it relays the stream (same unit as coordinates).
    """

    name: str
    coords: tuple
    max_fanout: int = 6
    processing_delay: float = 0.0

    def __post_init__(self):
        coords = tuple(float(c) for c in self.coords)
        if len(coords) < 1:
            raise ValueError("host coordinates must have at least one axis")
        if not all(np.isfinite(coords)):
            raise ValueError(f"host {self.name!r} has non-finite coordinates")
        if self.max_fanout < 0:
            raise ValueError(f"host {self.name!r} has negative fan-out")
        if self.processing_delay < 0:
            raise ValueError(f"host {self.name!r} has negative processing delay")
        object.__setattr__(self, "coords", coords)

    @property
    def dim(self) -> int:
        return len(self.coords)

    def distance_to(self, other: "Host") -> float:
        """Euclidean delay estimate between two hosts."""
        a = np.asarray(self.coords)
        b = np.asarray(other.coords)
        if a.shape != b.shape:
            raise ValueError(
                f"hosts {self.name!r} and {other.name!r} live in different spaces"
            )
        return float(np.linalg.norm(a - b))
