"""Cell-local incremental maintenance of polar-grid trees under churn.

The paper's Algorithm Polar_Grid assumes a static host set; the dynamic
layers so far either reattach greedily (:class:`~repro.overlay.dynamic.
DynamicOverlay`) or rebuild from scratch. This module keeps the *grid
structure itself* alive across membership events: a ``join`` or
``leave`` touches only its own grid cell — re-pick the cell's
representative, re-wire the cell chain through the core tree, patch the
affected delay subtree — in the spirit of Andreica et al.'s
decentralised construction over virtual geometric coordinates
(arXiv 1009.0862).

Event handling, per cell ``(ring, cell)``:

* **join** — assign the newcomer to its cell (one ``assign_point``
  call), then re-wire that cell: representative = member closest to the
  cell's inner anchor (Section III-B, same rule as the builder), in-cell
  bisection under the representative (the Section II machinery, reused
  verbatim via ``_bisect_in_cell``), dependents re-pointed at the new
  representative;
* **leave** — remove the member and re-wire the cell the same way; the
  *last* member's departure drops the cell entirely — including its
  representative entry — and re-points the cells that chained through
  it to the nearest occupied ancestor.

**Chains over holes.** The static construction requires property 3
(every interior cell occupied). Under churn that breaks: leaves empty
interior cells, escapee joins land beyond ``r_max``. Each such
*structural drift event* bumps an amortized-cost counter; chains simply
skip holes (a cell attaches to its nearest *occupied* ancestor), and
degree pressure from hole-skipping falls back to the best open node
(recorded in the fallback registry). When the counter reaches
``drift_limit`` (default ``max(8, 2k)``), the engine performs a
**bounded partial rebuild** of only the drifted annulus — rings
``[min drifted ring .. k]`` — inside the existing grid, and resets the
counter. A full rebuild (fresh grid, fresh ``k``) happens only when the
membership doubles or halves against the last full build, keeping the
incremental tree differentially equivalent (bounded delay drift, same
degree/radius invariants) to a from-scratch build.

Only the *full* construction (``max_out_degree >= 2^d + 2``) is
supported: its forward node is always the representative, so the core
chain can be re-derived from cell state alone. The binary mode's
forwarder/hub roles are not recoverable cell-locally; use full rebuilds
there.

Observability: per-event counters ``overlay.incremental.join.total``,
``overlay.incremental.leave.total``,
``overlay.incremental.partial_rebuild.total`` and the drift counter
``overlay.incremental.drift.total``; no ``polar_grid.cell_layout`` /
``polar_grid.wire_cells`` span is emitted on the incremental path —
their absence is how tests prove an event did cell-local work only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.core.builder import BuildResult, build_polar_grid_tree
from repro.core.core_network import _bisect_in_cell
from repro.core.grid import CellTable
from repro.core.tree import MulticastTree

__all__ = [
    "DELAY_DRIFT_BOUND",
    "EventReceipt",
    "IncrementalGridTree",
]

#: Documented differential-equivalence bound: the incremental tree's
#: radius stays within this factor of a from-scratch build over the same
#: membership (the grid's ``k`` is frozen between full rebuilds while a
#: fresh build re-chooses it, so exact equality is not expected). The
#: churn-trace suite asserts the bound after every event. Enforced by
#: the geometry trigger (:meth:`IncrementalGridTree._geometry_broken`):
#: any fresh radius is at least the peak live ``rho``, so peak delay
#: exceeding ``DELAY_DRIFT_BOUND`` times peak ``rho`` is a conservative
#: superset of every possible violation, and firing a refit there keeps
#: the bound. 3.0 leaves headroom above the ~2.4 delay-to-``rho`` ratio
#: a fresh 3-d build already exhibits on uniform clouds, so the trigger
#: stays dormant in the stationary regime and joins/leaves stay
#: cell-local.
DELAY_DRIFT_BOUND = 3.0

#: Membership growth/shrink factor against the last full build that
#: triggers a fresh grid (new ``k``); keeps the frozen-``k`` drift and
#: therefore :data:`DELAY_DRIFT_BOUND` honest across large size swings.
FULL_REBUILD_FACTOR = 2.0


@dataclass
class EventReceipt:
    """What one membership event touched — the cell-locality evidence.

    ``cell_size`` counts the members of the re-wired cell,
    ``chain_hops`` the ancestor cells walked to find the uplink,
    ``deps_repointed`` the dependent cells re-attached, and
    ``delay_patched`` the nodes whose cached delay was recomputed (the
    affected delay cone). ``partial_rebuild`` / ``full_rebuild`` flag
    the amortized maintenance this event triggered.
    """

    action: str
    name: str
    gid: int = -1
    ring: int = -1
    parent: int | None = None
    cell_size: int = 0
    chain_hops: int = 0
    deps_repointed: int = 0
    delay_patched: int = 0
    fallback: bool = False
    created_hole: bool = False
    filled_hole: bool = False
    escaped: bool = False
    partial_rebuild: bool = False
    full_rebuild: bool = False
    drift_events: int = 0


@dataclass
class _Snapshot:
    """Compacted view of the live membership (source first)."""

    tree: MulticastTree
    names: list[str]
    slots: list[int]  # snapshot index -> engine slot


class IncrementalGridTree:
    """A polar-grid tree that absorbs joins/leaves cell-locally.

    Bootstraps from a full-mode :class:`~repro.core.builder.BuildResult`
    (one that carries its grid and representatives), then maintains the
    tree through membership events without global rebuilds.

    Public state (read-only by convention; the oracle's
    :func:`~repro.analysis.oracle.check_incremental_state` re-derives
    all of it independently):

    * ``grid`` / ``cells`` — the frozen grid and its mutable
      :class:`~repro.core.grid.CellTable`;
    * ``parent`` / ``children`` / ``delay`` — slot-indexed tree arrays
      (slots are stable across events; dead slots are recycled);
    * ``providers`` / ``fallbacks`` / ``holes`` — the chain registry:
      each occupied non-D0 cell's upstream cell, the cells attached off
      their proper representative for degree reasons, and the empty
      interior cells;
    * ``drift_events`` / ``drift_limit`` — the amortized-cost counter
      and its partial-rebuild trigger.

    :param result: a polar-grid build with ``grid`` and
        ``representatives`` populated, built in full mode
        (``max_out_degree >= 2^d + 2``).
    :param names: member names aligned with the result's point order
        (defaults to ``__source__`` plus ``n<i>``).
    :param drift_limit: structural drift events tolerated before a
        partial rebuild (default ``max(8, 2k)``).
    :param validate: run the incremental-state oracle after every event
        (O(n) per event; tests and simulations only).
    """

    def __init__(
        self,
        result: BuildResult,
        names: list[str] | None = None,
        *,
        drift_limit: int | None = None,
        validate: bool = False,
    ):
        """Adopt a finished build as the live incremental state."""
        grid = result.grid
        if grid is None:
            raise ValueError(
                "incremental maintenance needs a polar-grid build that "
                "carries its grid (degenerate/bisection builds do not)"
            )
        full_threshold = (1 << grid.dim) + 2
        if result.max_out_degree < full_threshold:
            raise ValueError(
                f"incremental maintenance supports the full construction "
                f"only (max_out_degree >= {full_threshold}); binary-mode "
                "forward roles cannot be re-derived cell-locally"
            )
        self.d_max = int(result.max_out_degree)
        self.validate = bool(validate)
        self._drift_limit_arg = drift_limit
        self.joins = 0
        self.leaves = 0
        self.partial_rebuilds = 0
        self.full_rebuilds = 0
        self._adopt(result, names)

    # ------------------------------------------------------------------
    # bootstrap / full rebuild
    # ------------------------------------------------------------------

    def _adopt(self, result: BuildResult, names: list[str] | None) -> None:
        grid = result.grid
        tree = result.tree
        points = np.asarray(tree.points, dtype=np.float64)
        n = points.shape[0]
        self.grid = grid
        self.source_slot = int(tree.root)
        if names is None:
            names = [
                "__source__" if i == self.source_slot else f"n{i}"
                for i in range(n)
            ]
        if len(names) != n:
            raise ValueError(f"need {n} names, got {len(names)}")
        self.names: list[str | None] = list(names)
        self.points: list[np.ndarray | None] = [points[i].copy() for i in range(n)]
        self.index: dict[str, int] = {nm: i for i, nm in enumerate(names)}
        self._free: list[int] = []
        self.parent: list[int] = tree.parent.tolist()
        self.delay: list[float] = tree.root_delays().tolist()
        self.children: list[list[int]] = [[] for _ in range(n)]
        for child, par in enumerate(self.parent):
            if child != self.source_slot:
                self.children[par].append(child)

        rho, t = grid.transform.transform(points, grid.center)
        rho[self.source_slot] = 0.0
        self.rho: list[float] = rho.tolist()
        self.t_axes: list[list[float]] = [
            t[:, j].tolist() for j in range(grid.dim - 1)
        ]

        ring, cell = grid.assign(rho, t)
        gid = grid.global_id(ring, cell)
        self.cell_of: list[int] = [-1] * n
        self.cells = CellTable(grid)
        for slot in range(n):
            if slot == self.source_slot:
                continue
            g = int(gid[slot])
            self.cell_of[slot] = g
            self.cells.add(g, slot)
        reps = np.asarray(result.representatives, dtype=np.int64)
        for rep in reps.tolist():
            self.cells.set_rep(self.cell_of[rep], rep)

        self.providers: dict[int, int] = {}
        self.dependents: dict[int, set[int]] = {}
        for g in self.cells.occupied_gids():
            if g == 0:
                continue
            r, c = grid.ring_of_global(g)
            p, _hops = self.cells.nearest_live_ancestor(r, c)
            self.providers[g] = p
            self.dependents.setdefault(p, set()).add(g)
        self.fallbacks: dict[int, int] = {}
        self.holes: set[int] = self.cells.interior_holes()

        self.drift_events = 0
        self._drifted_rings: set[int] = set()
        if self._drift_limit_arg is not None:
            self.drift_limit = int(self._drift_limit_arg)
        else:
            self.drift_limit = max(8, 2 * grid.k)
        if self.drift_limit < 1:
            raise ValueError("drift_limit must be >= 1")
        self._in_rebuild = False
        self._size_at_build = self.live_count
        self._recompute_peaks()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def live_count(self) -> int:
        """Live members including the source."""
        return len(self.names) - len(self._free)

    def members(self) -> list[str]:
        """Current member names, source first, then slot order."""
        out = [self.names[self.source_slot]]
        out.extend(
            nm
            for slot, nm in enumerate(self.names)
            if nm is not None and slot != self.source_slot
        )
        return out

    def snapshot(self) -> _Snapshot:
        """Compact the live slots into a :class:`MulticastTree`."""
        slots = [self.source_slot] + [
            s
            for s in range(len(self.names))
            if self.names[s] is not None and s != self.source_slot
        ]
        compact = {slot: i for i, slot in enumerate(slots)}
        pts = np.asarray([self.points[s] for s in slots])
        par = np.asarray([compact[self.parent[s]] for s in slots], dtype=np.int64)
        tree = MulticastTree(points=pts, parent=par, root=0)
        return _Snapshot(
            tree=tree, names=[self.names[s] for s in slots], slots=slots
        )

    def tree(self) -> MulticastTree:
        """Snapshot of the current distribution tree (compact ids)."""
        return self.snapshot().tree

    def radius(self) -> float:
        """Maximum cached source-to-member delay."""
        live = [
            self.delay[s]
            for s, nm in enumerate(self.names)
            if nm is not None
        ]
        return max(live) if live else 0.0

    def to_build_result(self, builder: str | None = "polar-grid") -> BuildResult:
        """The live state as a :class:`BuildResult` (cacheable snapshot).

        The snapshot carries the grid and per-cell representatives, so
        it can seed another :class:`IncrementalGridTree` — this is what
        the service's ``update`` op stores back into its cache.
        """
        snap = self.snapshot()
        compact = {slot: i for i, slot in enumerate(snap.slots)}
        reps = [
            compact[self.cells.rep(g)]
            for g in self.cells.occupied_gids()
            if g != 0 and self.cells.has_rep(g)
        ]
        reps_arr = np.asarray(sorted(reps), dtype=np.int64)
        delays = snap.tree.root_delays()
        core = float(delays[reps_arr].max()) if reps_arr.size else 0.0
        return BuildResult(
            tree=snap.tree,
            max_out_degree=self.d_max,
            rings=self.grid.k,
            core_delay=core,
            representative_count=int(reps_arr.size),
            grid=self.grid,
            representatives=reps_arr,
            builder=builder,
        )

    def check(self):
        """Run the incremental-state oracle; returns its report."""
        from repro.analysis.oracle import check_incremental_state

        return check_incremental_state(self)

    # ------------------------------------------------------------------
    # low-level tree surgery
    # ------------------------------------------------------------------

    def _dist(self, a: int, b: int) -> float:
        pa = self.points[a]
        pb = self.points[b]
        return float(np.sqrt(np.sum((pa - pb) ** 2)))

    def _detach(self, slot: int) -> None:
        par = self.parent[slot]
        if par >= 0 and par != slot:
            self.children[par].remove(slot)
        self.parent[slot] = -1

    def _patch_subtree(self, root: int) -> int:
        """Recompute cached delays below ``root`` (root's is current)."""
        patched = 0
        stack = [root]
        while stack:
            node = stack.pop()
            for child in self.children[node]:
                self.delay[child] = self.delay[node] + self._dist(node, child)
                if self.delay[child] > self._delay_peak:
                    self._delay_peak = self.delay[child]
                patched += 1
                stack.append(child)
        return patched

    def _place(self, slot: int, target: int) -> int:
        """Attach ``slot`` under ``target`` and patch its delay cone."""
        self.parent[slot] = target
        self.children[target].append(slot)
        self.delay[slot] = self.delay[target] + self._dist(target, slot)
        if self.delay[slot] > self._delay_peak:
            self._delay_peak = self.delay[slot]
        return 1 + self._patch_subtree(slot)

    def _recompute_peaks(self) -> None:
        """Exact peak live delay / rho (O(n): rebuilds and peak leaves)."""
        delay_peak = 0.0
        rho_peak = 0.0
        for slot, nm in enumerate(self.names):
            if nm is None:
                continue
            if self.delay[slot] > delay_peak:
                delay_peak = self.delay[slot]
            if self.rho[slot] > rho_peak:
                rho_peak = self.rho[slot]
        self._delay_peak = delay_peak
        self._rho_peak = rho_peak

    def _subtree(self, root: int) -> set[int]:
        seen = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for child in self.children[node]:
                seen.add(child)
                stack.append(child)
        return seen

    def _rep_of(self, gid: int) -> int:
        return self.source_slot if gid == 0 else self.cells.rep(gid)

    # ------------------------------------------------------------------
    # chain maintenance
    # ------------------------------------------------------------------

    def _drift(self, ring: int) -> None:
        if self._in_rebuild:
            return
        self.drift_events += 1
        self._drifted_rings.add(max(1, ring))
        obs.add("overlay.incremental.drift.total")

    def _set_provider(self, gid: int, provider: int) -> None:
        old = self.providers.get(gid)
        if old == provider:
            return
        if old is not None:
            deps = self.dependents.get(old)
            if deps is not None:
                deps.discard(gid)
                if not deps:
                    del self.dependents[old]
        self.providers[gid] = provider
        self.dependents.setdefault(provider, set()).add(gid)

    def _clear_cell_links(self, gid: int) -> None:
        old = self.providers.pop(gid, None)
        if old is not None:
            deps = self.dependents.get(old)
            if deps is not None:
                deps.discard(gid)
                if not deps:
                    del self.dependents[old]
        self.fallbacks.pop(gid, None)

    def _attach_uplink(self, gid: int, receipt: EventReceipt) -> None:
        """Wire cell ``gid``'s representative to the core tree.

        First choice is the provider cell's representative (the static
        construction's edge); under degree pressure the search widens to
        open members of the provider cell, then to any open node —
        recorded in the fallback registry and counted as drift.
        """
        rep = self.cells.rep(gid)
        ring, cell = self.grid.ring_of_global(gid)
        provider, hops = self.cells.nearest_live_ancestor(ring, cell)
        receipt.chain_hops += hops
        self._set_provider(gid, provider)
        # The cell's own members are (or will be) inside rep's cone even
        # when still detached mid-rewire, so they can never be the uplink.
        forbidden = self._subtree(rep) | set(self.cells.members(gid))

        def open_for(node: int) -> bool:
            return node not in forbidden and len(self.children[node]) < self.d_max

        target = self._rep_of(provider)
        if open_for(target):
            self.fallbacks.pop(gid, None)
            receipt.delay_patched += self._place(rep, target)
            return
        # Degree pressure (hole-skipping piles dependents onto one rep):
        # best open member of the provider cell, else best open node
        # anywhere (greedy cost, like DynamicOverlay's join rule).
        candidates = [m for m in self.cells.members(provider) if open_for(m)]
        if not candidates:
            candidates = [
                s
                for s, nm in enumerate(self.names)
                if nm is not None and open_for(s)
            ]
        # A fan-out >= 2 guarantees an open node exists outside any
        # proper subtree; forbidden only excludes rep's own cone.
        choice = min(
            candidates, key=lambda s: self.delay[s] + self._dist(s, rep)
        )
        self.fallbacks[gid] = choice
        self._drift(ring)
        receipt.fallback = True
        receipt.delay_patched += self._place(rep, choice)

    def _clients_perched_on(self, slots: set[int]) -> list[int]:
        """Fallback cells currently attached at any of ``slots``."""
        return sorted(
            g for g, tgt in self.fallbacks.items() if tgt in slots
        )

    def _rewire_cell(self, gid: int, receipt: EventReceipt) -> None:
        """Rebuild one cell's local structure from its member set.

        Re-picks the representative (inner-anchor rule), re-runs the
        in-cell bisection, re-attaches the cell upstream and its
        dependent cells downstream. Touches only this cell's members,
        its chain neighbours, and their delay cones.
        """
        ring, cell = self.grid.ring_of_global(gid)
        members = self.cells.members(gid)
        receipt.cell_size = len(members)
        member_set = set(members)

        deps = sorted(self.dependents.get(gid, set()))
        perched = [
            g
            for g in self._clients_perched_on(member_set)
            if g != gid and g not in deps
        ]
        for g in deps + perched:
            self._detach(self.cells.rep(g))
        for m in members:
            self._detach(m)

        if gid == 0:
            # D0: the source is the representative; bisect members
            # under it (ring-1 dependents stay attached to the source).
            rep = self.source_slot
            anchor = self.grid.cell_anchor(0, 0, "inner")
            order = sorted(
                members,
                key=lambda m: (
                    float(np.sqrt(np.sum((self.points[m] - anchor) ** 2))),
                    m,
                ),
            )
            rest = order
        else:
            anchor = self.grid.cell_anchor(ring, cell, "inner")
            order = sorted(
                members,
                key=lambda m: (
                    float(np.sqrt(np.sum((self.points[m] - anchor) ** 2))),
                    m,
                ),
            )
            rep = order[0]
            rest = order[1:]
            self.cells.set_rep(gid, rep)
            self._attach_uplink(gid, receipt)

        if rest:
            _bisect_in_cell(
                self.grid,
                ring,
                cell,
                list(rest),
                rep,
                self.rho,
                tuple(self.t_axes),
                self.parent,
                binary=False,
            )
            for m in rest:
                par = self.parent[m]
                self.children[par].append(m)
                self.delay[m] = 0.0  # patched below
            receipt.delay_patched += self._patch_subtree(rep)

        for g in deps + perched:
            self._attach_uplink(g, receipt)
            receipt.deps_repointed += 1

    def _drop_cell(self, gid: int, removed: int, receipt: EventReceipt) -> None:
        """The last member of ``gid`` left; dissolve its chain entry."""
        ring, _cell = self.grid.ring_of_global(gid)
        deps = sorted(self.dependents.get(gid, set()))
        perched = [
            g
            for g in self._clients_perched_on({removed})
            if g != gid and g not in deps
        ]
        self._clear_cell_links(gid)
        if gid != 0 and 1 <= ring <= self.grid.k - 1:
            self.holes.add(gid)
            receipt.created_hole = True
            self._drift(ring)
        for g in deps + perched:
            self._detach(self.cells.rep(g))
            self._attach_uplink(g, receipt)
            receipt.deps_repointed += 1

    # ------------------------------------------------------------------
    # membership events
    # ------------------------------------------------------------------

    def _alloc(self, name: str, coords: np.ndarray) -> int:
        if self._free:
            slot = self._free.pop()
            self.names[slot] = name
            self.points[slot] = coords
            self.parent[slot] = -1
            self.children[slot] = []
            self.delay[slot] = 0.0
        else:
            slot = len(self.names)
            self.names.append(name)
            self.points.append(coords)
            self.parent.append(-1)
            self.children.append([])
            self.delay.append(0.0)
            self.rho.append(0.0)
            for axis in self.t_axes:
                axis.append(0.0)
            self.cell_of.append(-1)
        self.index[name] = slot
        return slot

    def _hide(self, slot: int) -> None:
        """Remove ``slot`` from the name index and candidate scans.

        Its adjacency is kept until :meth:`_reclaim` so the rewiring can
        still detach nodes that hang off it.
        """
        del self.index[self.names[slot]]
        self.names[slot] = None

    def _reclaim(self, slot: int) -> None:
        self.points[slot] = None
        self.cell_of[slot] = -1
        self.parent[slot] = -1
        self.children[slot] = []
        self._free.append(slot)

    def join(self, name: str, coords) -> EventReceipt:
        """Attach a new member cell-locally; returns the event receipt."""
        if name in self.index:
            raise ValueError(f"member {name!r} already in the session")
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape != (self.grid.dim,):
            raise ValueError(
                f"coords must have shape ({self.grid.dim},); "
                f"got {coords.shape}"
            )
        obs.add("overlay.incremental.join.total")
        self.joins += 1
        receipt = EventReceipt(action="join", name=name)

        ring, cell, rho, t = self.grid.assign_point(coords)
        gid = int(self.grid.global_id(ring, cell))
        receipt.gid, receipt.ring = gid, ring
        receipt.escaped = rho > self.grid.r_max * (1.0 + 1e-12)

        slot = self._alloc(name, coords)
        self.rho[slot] = rho
        if rho > self._rho_peak:
            self._rho_peak = rho
        for axis, value in zip(self.t_axes, t.tolist()):
            axis[slot] = value
        self.cell_of[slot] = gid
        spawned = self.cells.add(gid, slot)

        if receipt.escaped:
            # Beyond the grid: clipped into ring k; geometry assumption
            # broken, so the event is charged to the drift counter.
            self._drift(ring)
        if spawned and gid in self.holes:
            self.holes.discard(gid)
            receipt.filled_hole = True
            self._drift(ring)

        self._rewire_cell(gid, receipt)
        if spawned and gid != 0:
            self._repoint_frontier(gid, receipt)

        self._finish_event(receipt)
        # A full rebuild renumbers slots; resolve through the name index.
        receipt.parent = self.parent[self.index[name]]
        return receipt

    def leave(self, name: str) -> EventReceipt:
        """Remove a member cell-locally; returns the event receipt."""
        slot = self.index.get(name)
        if slot is None:
            raise ValueError(f"unknown member {name!r}")
        if slot == self.source_slot:
            raise ValueError("the source cannot leave its own session")
        obs.add("overlay.incremental.leave.total")
        self.leaves += 1
        gid = self.cell_of[slot]
        ring, _ = self.grid.ring_of_global(gid)
        receipt = EventReceipt(action="leave", name=name, gid=gid, ring=ring)
        held_peak = (
            self.rho[slot] >= self._rho_peak
            or self.delay[slot] >= self._delay_peak
        )

        self._detach(slot)
        emptied = self.cells.remove(gid, slot)
        # Fallback cells perched on the leaving member itself are not
        # reachable through the surviving member set, so re-home them
        # explicitly (the emptied path's _drop_cell does this itself).
        if emptied:
            stranded = []
        else:
            deps_of_cell = self.dependents.get(gid, set())
            stranded = [
                g
                for g in self._clients_perched_on({slot})
                if g not in deps_of_cell
            ]
        for g in stranded:
            self._detach(self.cells.rep(g))
        self._hide(slot)
        if emptied:
            self._drop_cell(gid, slot, receipt)
        else:
            self._rewire_cell(gid, receipt)
            for g in stranded:
                self._attach_uplink(g, receipt)
                receipt.deps_repointed += 1
        self._reclaim(slot)
        if held_peak:
            self._recompute_peaks()

        self._finish_event(receipt)
        return receipt

    def _repoint_frontier(self, gid: int, receipt: EventReceipt) -> None:
        """A cell spawned: dependents chaining past it re-point to it.

        Only the new cell's own provider's dependents can be affected —
        a dependent whose ancestor chain passes through ``gid`` was
        skipping it as a hole until now.
        """
        provider = self.providers.get(gid)
        if provider is None:
            return
        for dep in sorted(self.dependents.get(provider, set())):
            if dep == gid:
                continue
            r, c = self.grid.ring_of_global(dep)
            ancestors = {
                int(self.grid.global_id(ar, ac))
                for ar, ac in self.grid.ancestor_cells(r, c)
            }
            if gid in ancestors:
                self._detach(self.cells.rep(dep))
                self._attach_uplink(dep, receipt)
                receipt.deps_repointed += 1

    def _geometry_broken(self) -> bool:
        """The live tree drifted past the delay bound the fit promised.

        Fires when the peak cached delay exceeds
        :data:`DELAY_DRIFT_BOUND` times the peak live ``rho``. Any
        from-scratch build must reach the farthest member, so its radius
        is at least the peak ``rho`` — this test is a conservative
        superset of every possible differential-bound violation, and a
        refit here restores the bound. On the rare membership whose
        *fresh* build is itself over the bound (near-antipodal members
        sharing one wide outer cell at tiny ``k``), the trigger re-fires
        until those members churn away; each refit leaves the live tree
        exactly equal to the from-scratch one, so equivalence holds with
        rebuild cost, not with a broken bound.
        """
        if self._rho_peak <= 0.0:
            return False
        return self._delay_peak > DELAY_DRIFT_BOUND * self._rho_peak

    def _finish_event(self, receipt: EventReceipt) -> None:
        receipt.drift_events = self.drift_events
        if self._maybe_full_rebuild():
            receipt.full_rebuild = True
        elif self._geometry_broken():
            # Stale geometry (typically an escapee fitted into a clipped
            # outer cell): only a refit restores the delay bound. A
            # degenerate membership (full_rebuild() -> False) retries on
            # the next event; such sets are tiny, so the failed build
            # attempt costs less than the event itself.
            if self.full_rebuild():
                receipt.full_rebuild = True
        elif self.drift_events >= self.drift_limit:
            self.partial_rebuild()
            receipt.partial_rebuild = True
        receipt.drift_events = self.drift_events
        if self.validate:
            self.check().raise_if_failed()

    # ------------------------------------------------------------------
    # amortized maintenance
    # ------------------------------------------------------------------

    def partial_rebuild(self) -> int:
        """Rebuild only the drifted annulus inside the existing grid.

        Re-wires every occupied cell of rings ``[min drifted ring .. k]``
        inner-to-outer (providers before dependents), leaving the rings
        below untouched, then resets the drift counter. Returns the
        number of cells re-wired.
        """
        lo = min(self._drifted_rings) if self._drifted_rings else 1
        annulus = [
            g
            for g in self.cells.occupied_gids()
            if g != 0 and self.grid.ring_of_global(g)[0] >= lo
        ]
        obs.add("overlay.incremental.partial_rebuild.total")
        with obs.span(
            "overlay.incremental.partial_rebuild",
            lo_ring=lo,
            cells=len(annulus),
        ):
            self._in_rebuild = True
            try:
                for g in annulus:
                    scratch = EventReceipt(action="partial_rebuild", name="")
                    self._rewire_cell(g, scratch)
            finally:
                self._in_rebuild = False
        self.drift_events = 0
        self._drifted_rings.clear()
        self.partial_rebuilds += 1
        self._recompute_peaks()
        return len(annulus)

    def _maybe_full_rebuild(self) -> bool:
        live = self.live_count
        if live < 8 or self._size_at_build < 2:
            return False
        factor = FULL_REBUILD_FACTOR
        if self._size_at_build / factor <= live <= self._size_at_build * factor:
            return False
        return self.full_rebuild()

    def full_rebuild(self) -> bool:
        """Fresh grid over the live membership (new ``k``).

        Returns False (state unchanged) when the membership is too
        degenerate for a grid — e.g. every member coincides with the
        source; incremental maintenance simply continues on the old one.
        """
        snap = self.snapshot()
        result = build_polar_grid_tree(
            snap.tree.points, 0, self.d_max
        )
        if result.grid is None:
            return False
        obs.add("overlay.incremental.full_rebuild.total")
        self._adopt(result, snap.names)
        self.full_rebuilds += 1
        return True
