"""Multicast sessions: the user-facing orchestration object.

A :class:`MulticastSession` owns a set of :class:`~repro.overlay.host.Host`
objects, builds a distribution tree with a chosen algorithm, evaluates
it, simulates disseminations, and survives host departures via the
repair module. It is the layer an application embeds; everything below
it works on bare index arrays.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import build
from repro.core.tree import MulticastTree
from repro.overlay.host import Host
from repro.overlay.metrics import TreeMetrics, evaluate_tree
from repro.overlay.repair import repair_after_failure
from repro.overlay.simulator import DisseminationResult, simulate_dissemination

__all__ = ["MulticastSession", "ALGORITHMS"]

ALGORITHMS = (
    "polar-grid",
    "bisection",
    "compact-tree",
    "bandwidth-latency",
    "capped-star",
    "random",
)


class MulticastSession:
    """One multicast group: a source host plus receivers.

    :param hosts: participating hosts; names must be unique.
    :param source: name (or index) of the source host.
    :param algorithm: one of :data:`ALGORITHMS`. The grid and bisection
        algorithms use the group's *minimum* fan-out budget (they need a
        uniform degree bound); the baseline heuristics honour per-host
        budgets.
    """

    def __init__(self, hosts, source=0, algorithm: str = "polar-grid"):
        hosts = list(hosts)
        if len(hosts) < 1:
            raise ValueError("a session needs at least the source host")
        names = [h.name for h in hosts]
        if len(set(names)) != len(names):
            raise ValueError("host names must be unique")
        dims = {h.dim for h in hosts}
        if len(dims) != 1:
            raise ValueError("all hosts must share one coordinate space")
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
            )

        self.hosts: list[Host] = hosts
        self.algorithm = algorithm
        self._by_name = {h.name: i for i, h in enumerate(hosts)}
        if isinstance(source, str):
            if source not in self._by_name:
                raise ValueError(f"unknown source host {source!r}")
            self.source_index = self._by_name[source]
        else:
            source = int(source)
            if not 0 <= source < len(hosts):
                raise ValueError(f"source index {source} out of range")
            self.source_index = source
        self.tree: MulticastTree | None = None

    # ------------------------------------------------------------------

    @property
    def source(self) -> Host:
        return self.hosts[self.source_index]

    @property
    def n(self) -> int:
        return len(self.hosts)

    def index_of(self, name: str) -> int:
        if name not in self._by_name:
            raise ValueError(f"unknown host {name!r}")
        return self._by_name[name]

    def points(self) -> np.ndarray:
        return np.asarray([h.coords for h in self.hosts], dtype=np.float64)

    def fanout_budgets(self) -> np.ndarray:
        return np.asarray([h.max_fanout for h in self.hosts], dtype=np.int64)

    def _uniform_budget(self) -> int:
        budget = int(self.fanout_budgets().min())
        if budget < 2:
            raise ValueError(
                "this algorithm needs fan-out >= 2 on every host; "
                "'polar-grid' (heterogeneous backbone), 'compact-tree' and "
                "'bandwidth-latency' handle mixed populations with leaves"
            )
        return budget

    # ------------------------------------------------------------------

    def build(self, seed=None, **kwargs) -> MulticastTree:
        """Build (or rebuild) the distribution tree.

        Every algorithm dispatches through :func:`repro.build`; the
        session only decides what degree argument each registered
        builder receives (uniform minimum, per-host budgets, or the
        heterogeneous backbone split).
        """
        points = self.points()
        src = self.source_index
        budgets = self.fanout_budgets()
        if self.algorithm == "polar-grid" and int(budgets.min()) < 2:
            # Mixed population with leaf-only hosts: binary backbone
            # over the forwarders, leaves attached to spare slots.
            result = build(
                points, src, "heterogeneous", budgets=budgets, **kwargs
            )
        elif self.algorithm in ("polar-grid", "bisection"):
            result = build(
                points,
                src,
                self.algorithm,
                max_out_degree=self._uniform_budget(),
                **kwargs,
            )
        elif self.algorithm in ("compact-tree", "bandwidth-latency"):
            if self.algorithm == "bandwidth-latency":
                kwargs = {"seed": seed, **kwargs}
            result = build(
                points,
                src,
                self.algorithm,
                max_out_degree=budgets,
                **kwargs,
            )
        else:  # "capped-star", "random"
            if self.algorithm == "random":
                kwargs = {"seed": seed, **kwargs}
            result = build(
                points,
                src,
                self.algorithm,
                max_out_degree=self._uniform_budget(),
                **kwargs,
            )
        self.tree = result.tree
        self.last_build = result
        return self.tree

    def _require_tree(self) -> MulticastTree:
        if self.tree is None:
            raise RuntimeError("call build() before using the tree")
        return self.tree

    def metrics(self) -> TreeMetrics:
        """Quality metrics of the current tree."""
        return evaluate_tree(self._require_tree())

    def parent_of(self, name: str) -> str | None:
        """Name of the host feeding ``name`` (None for the source)."""
        tree = self._require_tree()
        idx = self.index_of(name)
        if idx == tree.root:
            return None
        return self.hosts[int(tree.parent[idx])].name

    def simulate(self, serialization_delay: float = 0.0) -> DisseminationResult:
        """Replay one dissemination using each host's processing delay."""
        tree = self._require_tree()
        proc = np.asarray(
            [h.processing_delay for h in self.hosts], dtype=np.float64
        )
        return simulate_dissemination(
            tree, processing_delay=proc, serialization_delay=serialization_delay
        )

    def handle_departure(self, name: str) -> MulticastTree:
        """Remove a host and repair the tree in place.

        The departing host's orphans are reattached greedily (see
        :func:`repro.overlay.repair.repair_after_failure`); the session's
        host list, indices and tree are updated consistently.
        """
        tree = self._require_tree()
        idx = self.index_of(name)
        new_tree, index_map = repair_after_failure(
            tree, idx, self.fanout_budgets()
        )
        self.hosts = [h for h in self.hosts if h.name != name]
        self._by_name = {h.name: i for i, h in enumerate(self.hosts)}
        self.source_index = int(index_map[tree.root])
        self.tree = new_tree
        self.last_build = None
        return new_tree
