"""A decentralised join/leave protocol, simulated at message level.

:class:`repro.overlay.dynamic.DynamicOverlay` maintains membership with
*global* knowledge (it scans every member on a join). A real deployment
cannot: the paper's closing remark — "in practice, there is interest in
a decentralized version of the algorithm" — is about exactly this gap.

This module simulates the classic decentralised discipline (HMTP /
Overcast style) so the cost of decentralisation is measurable:

* **join**: the newcomer starts at the source and walks down the tree.
  At each member it probes the member and its children (one message
  each), then either attaches (if the member has spare fan-out and no
  child offers a strictly better delay) or descends to the child whose
  subtree promises the lowest delay. Each join costs O(depth × fan-out)
  messages instead of O(n).
* **leave**: each orphaned child re-runs the join walk starting from
  its *grandparent* (the HMTP recovery rule) — again local knowledge
  only.

The protocol's trees are worse than the centralised greedy's and far
worse than a fresh polar-grid build at scale; the benchmarks quantify
both gaps together with the message counts that justify them.

:class:`CellRoutedProtocol` is the grid-aware alternative: it costs each
membership event as the cell-local maintenance engine
(:mod:`repro.overlay.incremental`) would route it in a deployment —
probe the members of one cell, walk the ancestor-cell chain to find the
uplink — so the message budget scales with cell size and ring count,
not with tree depth times fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import MulticastTree
from repro.overlay.dynamic import DynamicOverlay

__all__ = ["DistributedJoinProtocol", "JoinOutcome", "CellRoutedProtocol"]


@dataclass(frozen=True)
class JoinOutcome:
    """What one join cost and where it landed."""

    parent: str
    probes: int
    hops: int


class DistributedJoinProtocol:
    """Message-level simulation of decentralised tree maintenance.

    :param source_coords: position of the session source.
    :param max_out_degree: uniform fan-out budget (>= 2, so a member
        with no spare slot always has children to descend into).
    """

    def __init__(self, source_coords, max_out_degree: int = 6):
        coords = np.asarray(source_coords, dtype=np.float64)
        if coords.ndim != 1 or coords.shape[0] < 2:
            raise ValueError("source_coords must be a (d,) vector, d >= 2")
        if max_out_degree < 2:
            raise ValueError("max_out_degree must be at least 2")
        self.max_out_degree = int(max_out_degree)
        self._names = ["__source__"]
        self._index = {"__source__": 0}
        self._points = [coords]
        self._parent = [0]
        self._children: list[list[int]] = [[]]
        self._delay = [0.0]
        self.total_messages = 0
        self.join_count = 0

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._names)

    @property
    def dim(self) -> int:
        return self._points[0].shape[0]

    def tree(self) -> MulticastTree:
        return MulticastTree(
            points=np.asarray(self._points),
            parent=np.asarray(self._parent, dtype=np.int64),
            root=0,
        )

    def radius(self) -> float:
        return max(self._delay) if self.n > 1 else 0.0

    def mean_messages_per_join(self) -> float:
        return self.total_messages / self.join_count if self.join_count else 0.0

    # ------------------------------------------------------------------

    def _dist(self, idx: int, coords: np.ndarray) -> float:
        return float(np.linalg.norm(self._points[idx] - coords))

    def _walk(self, start: int, coords: np.ndarray) -> tuple[int, int, int]:
        """The join walk: returns (attach_point, probes, hops).

        At each step the walker knows only the current member and its
        children (each probe = 1 message). It attaches when the current
        member has a spare slot and no child improves on the direct
        offer; otherwise it descends into the best child.
        """
        current = start
        probes = 0
        hops = 0
        while True:
            kids = self._children[current]
            probes += 1 + len(kids)  # ask current + each child for offers
            direct = self._delay[current] + self._dist(current, coords)
            best_child = None
            best_cost = np.inf
            for child in kids:
                cost = self._delay[child] + self._dist(child, coords)
                if cost < best_cost:
                    best_cost = cost
                    best_child = child
            has_room = len(kids) < self.max_out_degree
            if has_room and direct <= best_cost:
                return current, probes, hops
            if best_child is None:
                # Full leaf cannot exist (full => children); guard anyway.
                return current, probes, hops
            current = best_child
            hops += 1

    def join(self, name: str, coords) -> JoinOutcome:
        """Run the decentralised join walk for a newcomer."""
        if name in self._index:
            raise ValueError(f"member {name!r} already joined")
        coords = np.asarray(coords, dtype=np.float64)
        if coords.shape != (self.dim,):
            raise ValueError(
                f"coords must have shape ({self.dim},); got {coords.shape}"
            )
        attach, probes, hops = self._walk(0, coords)

        idx = self.n
        self._index[name] = idx
        self._names.append(name)
        self._points.append(coords)
        self._parent.append(attach)
        self._children.append([])
        self._children[attach].append(idx)
        self._delay.append(self._delay[attach] + self._dist(attach, coords))
        self.total_messages += probes
        self.join_count += 1
        return JoinOutcome(
            parent=self._names[attach], probes=probes, hops=hops
        )

    # ------------------------------------------------------------------

    def _refresh_subtree_delays(self, root_idx: int):
        """Recompute delays below ``root_idx`` after a reattachment."""
        stack = [root_idx]
        while stack:
            node = stack.pop()
            for child in self._children[node]:
                self._delay[child] = self._delay[node] + float(
                    np.linalg.norm(self._points[child] - self._points[node])
                )
                stack.append(child)

    def leave(self, name: str) -> int:
        """Handle a departure; returns the messages the recovery cost.

        Each orphan re-runs the join walk from its grandparent,
        reattaching its whole subtree.
        """
        if name == "__source__":
            raise ValueError("the source cannot leave its own session")
        if name not in self._index:
            raise ValueError(f"unknown member {name!r}")
        victim = self._index[name]
        grandparent = self._parent[victim]
        orphans = list(self._children[victim])
        self._children[victim] = []
        self._children[grandparent].remove(victim)

        messages = 0
        for orphan in orphans:
            coords = self._points[orphan]
            # The orphan must not attach inside its own dangling subtree.
            forbidden = set()
            stack = [orphan]
            while stack:
                node = stack.pop()
                forbidden.add(node)
                stack.extend(self._children[node])
            attach, probes, _hops = self._walk_avoiding(
                grandparent, coords, forbidden
            )
            messages += probes
            self._parent[orphan] = attach
            self._children[attach].append(orphan)
            self._delay[orphan] = self._delay[attach] + self._dist(
                attach, coords
            )
            self._refresh_subtree_delays(orphan)

        # Compact the victim out of every array.
        self._drop_index(victim)
        self.total_messages += messages
        return messages

    def _walk_avoiding(self, start, coords, forbidden) -> tuple[int, int, int]:
        """Join walk that never enters ``forbidden`` nodes."""
        current = start
        probes = 0
        hops = 0
        while True:
            kids = [c for c in self._children[current] if c not in forbidden]
            probes += 1 + len(kids)
            direct = self._delay[current] + self._dist(current, coords)
            best_child = None
            best_cost = np.inf
            for child in kids:
                cost = self._delay[child] + self._dist(child, coords)
                if cost < best_cost:
                    best_cost = cost
                    best_child = child
            has_room = len(self._children[current]) < self.max_out_degree
            if has_room and direct <= best_cost:
                return current, probes, hops
            if best_child is None:
                if has_room:
                    return current, probes, hops
                raise RuntimeError(
                    "join walk trapped at a full member with no admissible "
                    "children — fan-out budget too tight for recovery"
                )
            current = best_child
            hops += 1

    def _drop_index(self, victim: int):
        """Remove a (childless) index and renumber everything above it."""
        assert not self._children[victim]
        name = self._names[victim]
        del self._names[victim]
        del self._points[victim]
        del self._parent[victim]
        del self._children[victim]
        del self._delay[victim]
        del self._index[name]

        def shift(idx: int) -> int:
            return idx - 1 if idx > victim else idx

        self._parent = [shift(p) for p in self._parent]
        self._children = [
            [shift(c) for c in kids] for kids in self._children
        ]
        self._index = {nm: i for i, nm in enumerate(self._names)}


class CellRoutedProtocol:
    """Cell-routed join/leave, costed at message level.

    Routes every membership event through the cell-local maintenance
    engine (a :class:`~repro.overlay.dynamic.DynamicOverlay` in
    ``"incremental"`` mode) and reports what the event would cost in a
    deployment: one probe per member of the touched cell (the cell
    re-wiring), one message per ancestor-cell hop of the chain walk, and
    one per dependent cell re-pointed. Until the group reaches
    ``bootstrap`` members the newcomer attaches greedily and is charged
    one probe per member, like a source-assisted bootstrap would.

    :param source_coords: position of the session source.
    :param max_out_degree: fan-out budget; must cover the full
        construction (``>= 2^d + 2``).
    :param bootstrap: group size at which the grid structure is seeded.
    """

    def __init__(self, source_coords, max_out_degree: int = 6, bootstrap: int = 16):
        self._overlay = DynamicOverlay(
            source_coords,
            max_out_degree=max_out_degree,
            rebuild_threshold=None,
            mode="incremental",
            bootstrap=bootstrap,
        )
        self.max_out_degree = self._overlay.max_out_degree
        self.total_messages = 0
        self.join_count = 0

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._overlay.n

    @property
    def dim(self) -> int:
        return self._overlay.dim

    def tree(self) -> MulticastTree:
        """Snapshot of the current distribution tree."""
        return self._overlay.tree()

    def radius(self) -> float:
        """Maximum source-to-member delay of the maintained tree."""
        return self._overlay.radius()

    def mean_messages_per_join(self) -> float:
        """Average message cost over the joins handled so far."""
        return self.total_messages / self.join_count if self.join_count else 0.0

    def _event_cost(self) -> int:
        receipt = self._overlay.last_receipt
        if receipt is None:
            # Greedy bootstrap phase: the source probes every member on
            # the newcomer's behalf.
            return max(1, self._overlay.n - 1)
        cost = receipt.cell_size + receipt.chain_hops + receipt.deps_repointed
        if receipt.partial_rebuild or receipt.full_rebuild:
            # Amortized maintenance touches the whole drifted region;
            # charge one message per live member, the upper bound.
            cost += self._overlay.n
        return max(1, cost)

    def join(self, name: str, coords) -> JoinOutcome:
        """Route a join through the cell-local path; returns its cost."""
        before = self._overlay.last_receipt
        parent = self._overlay.join(name, coords)
        receipt = self._overlay.last_receipt
        if receipt is before:  # greedy bootstrap handled it
            probes, hops = max(1, self.n - 1), 0
        else:
            probes = self._event_cost()
            hops = receipt.chain_hops
        self.total_messages += probes
        self.join_count += 1
        return JoinOutcome(parent=parent, probes=probes, hops=hops)

    def leave(self, name: str) -> int:
        """Route a leave through the cell-local path; returns its cost."""
        before = self._overlay.last_receipt
        self._overlay.leave(name)
        receipt = self._overlay.last_receipt
        if receipt is before:
            messages = max(1, self.n - 1)
        else:
            messages = self._event_cost()
        self.total_messages += messages
        return messages
