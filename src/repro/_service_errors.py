"""Unified service error hierarchy with a structured wire encoding.

Every error the service can hand back over the TCP protocol subclasses
:class:`ServiceError` and encodes uniformly as::

    {"error": {"type": "<ClassName>", "message": "<human text>",
               "fields": {...machine-readable details...}}}

The concrete classes keep their historical secondary bases
(``RuntimeError`` / ``TimeoutError``) so existing ``except`` clauses in
1.x callers keep working unchanged.  This module is a dependency-free
leaf: ``repro.packing`` imports :class:`ServiceError` from here without
pulling in the asyncio service.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ServiceError",
    "ServiceOverload",
    "DeadlineExceeded",
    "UnknownUpdateKey",
    "UpdateUnsupported",
    "UnknownGroup",
    "PackingUnavailable",
]


class ServiceError(Exception):
    """Base for every structured service-level failure.

    Subclasses populate :attr:`fields` with the machine-readable detail
    that crosses the wire; :meth:`to_wire` renders the uniform
    ``{"type", "message", "fields"}`` envelope.
    """

    def __init__(self, message: str, **fields: Any) -> None:
        super().__init__(message)
        self.fields: dict[str, Any] = fields

    def to_wire(self) -> dict[str, Any]:
        return {
            "type": type(self).__name__,
            "message": str(self),
            "fields": dict(self.fields),
        }


class ServiceOverload(ServiceError, RuntimeError):
    """Raised when admission control rejects a request."""

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"service overloaded: {pending} builds in flight "
            f"(limit {limit}); retry later",
            pending=pending,
            limit=limit,
        )
        self.pending = pending
        self.limit = limit


class DeadlineExceeded(ServiceError, TimeoutError):
    """Raised when a request misses its deadline."""

    def __init__(self, key: str, deadline: float) -> None:
        super().__init__(
            f"build {key[:12]}… missed its {deadline}s deadline "
            "(still building; a retry may hit the cache)",
            key=key,
            deadline=deadline,
        )
        self.key = key
        self.deadline = deadline


class UnknownUpdateKey(ServiceError, RuntimeError):
    """Raised when an ``update`` names a key the cache no longer holds."""

    def __init__(self, key: str) -> None:
        super().__init__(
            f"no cached tree under key {key[:12]}…; build it first, then "
            "update the key the build response returns",
            key=key,
        )
        self.key = key


class UpdateUnsupported(ServiceError, RuntimeError):
    """Raised when a cached entry cannot take incremental updates."""

    def __init__(self, key: str, reason: str) -> None:
        super().__init__(
            f"cached tree {key[:12]}… cannot be updated in place: {reason}",
            key=key,
            reason=reason,
        )
        self.key = key
        self.reason = reason


class UnknownGroup(ServiceError, KeyError):
    """Raised when ``evict`` (or a session lookup) names no live group."""

    def __init__(self, group_id: str, live: list[str] | None = None) -> None:
        super().__init__(
            f"no live session for group {group_id!r}",
            group=group_id,
            live=sorted(live or []),
        )
        self.group_id = group_id

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]


class PackingUnavailable(ServiceError, RuntimeError):
    """Raised when admit/evict hits a service with no shared population."""

    def __init__(self) -> None:
        super().__init__(
            "service was started without a shared host population; "
            "pass population=/host_caps= (or serve --packing-hosts)",
        )
