"""Global Network Positioning (Ng & Zhang [12]) landmark embedding.

Two phases, as in the paper the reproduction target cites for its
coordinate assumption:

1. a small set of landmarks embeds itself by minimising the squared
   relative error between landmark-landmark delays and distances;
2. every other host solves its own small least-squares problem against
   the fixed landmark coordinates.

Landmarks are chosen by greedy maximin (farthest-point) selection on the
delay matrix, which is what deployed GNP variants do to spread landmarks
out. Uses :func:`scipy.optimize.least_squares` for both phases.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import least_squares

__all__ = ["gnp_embedding", "select_landmarks"]


def select_landmarks(delays: np.ndarray, count: int, seed=None) -> np.ndarray:
    """Greedy maximin landmark selection.

    Starts from the host with the largest total delay (a periphery node)
    and repeatedly adds the host farthest from the chosen set.
    """
    n = delays.shape[0]
    if not 1 <= count <= n:
        raise ValueError(f"landmark count must be in [1, {n}]")
    first = int(np.argmax(delays.sum(axis=1)))
    chosen = [first]
    min_dist = delays[first].copy()
    for _ in range(count - 1):
        nxt = int(np.argmax(min_dist))
        chosen.append(nxt)
        np.minimum(min_dist, delays[nxt], out=min_dist)
    return np.asarray(chosen, dtype=np.int64)


def _relative_residuals(distances: np.ndarray, delays: np.ndarray) -> np.ndarray:
    """GNP's relative-error objective, guarded against zero delays."""
    scale = np.where(delays > 0, delays, 1.0)
    return (distances - delays) / scale


def _classical_mds(delays: np.ndarray, dim: int) -> np.ndarray:
    """Classical (Torgerson) MDS: the closed-form Euclidean embedding.

    Used to initialise the landmark optimisation: starting from the MDS
    solution instead of a random point makes the refinement land in the
    same basin every run (a random start plus a chaotic least-squares
    descent occasionally picked a different local optimum — observed as
    run-to-run nondeterminism).
    """
    m = delays.shape[0]
    sq = delays**2
    centering = np.eye(m) - np.ones((m, m)) / m
    gram = -0.5 * centering @ sq @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1][:dim]
    components = eigenvectors[:, order] * np.sqrt(
        np.maximum(eigenvalues[order], 0.0)
    )
    if components.shape[1] < dim:
        components = np.pad(
            components, ((0, 0), (0, dim - components.shape[1]))
        )
    # Fix the rotation/reflection gauge so the output is canonical.
    for axis in range(components.shape[1]):
        if components[:, axis].sum() < 0:
            components[:, axis] *= -1.0
    return components


def _trilaterate(
    lm_coords: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Linear least-squares position from landmark distances.

    Subtracting the first landmark's sphere equation from the others
    linearises the system; the solution is the standard multilateration
    initialiser (exact for consistent distances, robust otherwise).
    """
    ref = lm_coords[0]
    rows = 2.0 * (lm_coords[1:] - ref)
    rhs = (
        np.sum(lm_coords[1:] ** 2, axis=1)
        - np.sum(ref**2)
        - targets[1:] ** 2
        + targets[0] ** 2
    )
    solution, *_ = np.linalg.lstsq(rows, rhs, rcond=None)
    return solution


def gnp_embedding(
    delays: np.ndarray,
    dim: int = 2,
    n_landmarks: int | None = None,
    seed=None,
) -> np.ndarray:
    """Embed a delay matrix into ``R^dim`` with the GNP procedure.

    :param delays: symmetric ``(n, n)`` delay matrix, zero diagonal.
    :param dim: target dimensionality (the cited work uses 2-8; 2 and 3
        feed this package's tree algorithms directly).
    :param n_landmarks: landmarks to use; defaults to ``2 * dim + 1``
        (enough for a rigid fit plus redundancy), capped at ``n``.
    :returns: ``(n, dim)`` coordinates.
    """
    delays = np.asarray(delays, dtype=np.float64)
    n = delays.shape[0]
    if delays.shape != (n, n):
        raise ValueError("delays must be a square matrix")
    if n < 2:
        raise ValueError("need at least two hosts to embed")
    if dim < 1:
        raise ValueError("dim must be positive")
    if not np.allclose(delays, delays.T, rtol=1e-8, atol=1e-10):
        raise ValueError("delay matrix must be symmetric")
    if np.any(delays < 0):
        raise ValueError("delays cannot be negative")

    if n_landmarks is None:
        n_landmarks = min(n, 2 * dim + 1)
    n_landmarks = min(n_landmarks, n)
    landmarks = select_landmarks(delays, n_landmarks, seed=seed)
    lm_delays = delays[np.ix_(landmarks, landmarks)]

    # Phase 1: joint landmark embedding — classical MDS start, then a
    # least-squares refinement of GNP's relative-error objective. The
    # deterministic start keeps repeated runs in one optimisation basin
    # (``seed`` only influences tie-breaking in landmark selection).
    iu = np.triu_indices(n_landmarks, k=1)

    def landmark_cost(flat: np.ndarray) -> np.ndarray:
        coords = flat.reshape(n_landmarks, dim)
        diff = coords[iu[0]] - coords[iu[1]]
        dist = np.sqrt(np.sum(diff * diff, axis=1))
        return _relative_residuals(dist, lm_delays[iu])

    start = _classical_mds(lm_delays, dim).ravel()
    fit = least_squares(landmark_cost, start, method="lm", max_nfev=2000)
    lm_coords = fit.x.reshape(n_landmarks, dim)

    # Phase 2: each host against the fixed landmarks, initialised by
    # linear multilateration (deterministic and usually near-optimal).
    coords = np.zeros((n, dim))
    coords[landmarks] = lm_coords
    landmark_set = set(landmarks.tolist())
    for host in range(n):
        if host in landmark_set:
            continue
        targets = delays[host, landmarks]

        def host_cost(x: np.ndarray, targets=targets) -> np.ndarray:
            dist = np.sqrt(np.sum((lm_coords - x) ** 2, axis=1))
            return _relative_residuals(dist, targets)

        guess = _trilaterate(lm_coords, targets)
        sol = least_squares(host_cost, guess, method="lm", max_nfev=500)
        coords[host] = sol.x
    return coords
