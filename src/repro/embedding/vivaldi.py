"""Vivaldi-style spring-relaxation network coordinates.

A decentralised alternative to GNP: every host adjusts its coordinate a
little toward (or away from) each sampled neighbour so the spring system
relaxes to an embedding of the delay matrix. This implementation runs the
synchronous, full-information variant — appropriate for a simulator —
with an adaptive step size, vectorised over all pairs per round.

Included because the reproduction target's "future work" asks how the
tree algorithm behaves under imperfect coordinates: Vivaldi's error
profile (local accuracy, global drift) differs usefully from GNP's.
"""

from __future__ import annotations

import numpy as np

__all__ = ["vivaldi_embedding"]


def vivaldi_embedding(
    delays: np.ndarray,
    dim: int = 2,
    rounds: int = 100,
    step: float = 0.25,
    seed=None,
) -> np.ndarray:
    """Relax spring coordinates for a delay matrix.

    :param delays: symmetric ``(n, n)`` matrix, zero diagonal.
    :param dim: embedding dimensionality.
    :param rounds: synchronous relaxation rounds; each considers all
        pairs (O(n^2) per round — simulator scale, not planet scale).
    :param step: initial step size, decayed linearly to 5% of itself.
    :returns: ``(n, dim)`` coordinates centred on the origin.
    """
    delays = np.asarray(delays, dtype=np.float64)
    n = delays.shape[0]
    if delays.shape != (n, n):
        raise ValueError("delays must be a square matrix")
    if n < 2:
        raise ValueError("need at least two hosts")
    if rounds < 1:
        raise ValueError("rounds must be positive")
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")

    rng = np.random.default_rng(seed)
    scale = float(delays.max()) or 1.0
    coords = rng.normal(scale=scale / 4.0, size=(n, dim))

    for r in range(rounds):
        eta = step * (1.0 - 0.95 * r / rounds)
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=2))
        np.fill_diagonal(dist, 1.0)  # avoid 0/0 on the diagonal
        # Spring force: positive error pushes apart, negative pulls in.
        error = delays - dist
        np.fill_diagonal(error, 0.0)
        direction = diff / dist[:, :, None]
        force = (error[:, :, None] * direction).sum(axis=1)
        coords += eta * force / max(n - 1, 1)

    return coords - coords.mean(axis=0)
