"""Network-coordinate substrates: producing the Euclidean embedding.

The paper *assumes* hosts are already mapped to Euclidean space so that
unicast delay is approximated by distance, citing GNP-style measurement
embeddings [12] and geographic mappings [16]/[10]. This package builds
that assumed layer:

* :mod:`repro.embedding.delay_models` — synthetic but structured
  delay matrices (noisy-Euclidean, and transit-stub topologies via
  networkx) standing in for Internet measurements we cannot take;
* :mod:`repro.embedding.gnp` — Global Network Positioning: landmark
  least-squares embedding into ``R^d``;
* :mod:`repro.embedding.vivaldi` — decentralised spring-relaxation
  coordinates, as a second embedding with different error behaviour.

Together with :mod:`repro.core` this closes the loop the paper leaves to
future work: "how well the algorithm performs in combination with the
mapping" (see ``benchmarks/test_embedding.py``).
"""

from repro.embedding.delay_models import (
    embedding_distortion,
    noisy_euclidean_delays,
    transit_stub_delays,
)
from repro.embedding.gnp import gnp_embedding
from repro.embedding.underlay import TransitStubNetwork
from repro.embedding.vivaldi import vivaldi_embedding

__all__ = [
    "TransitStubNetwork",
    "embedding_distortion",
    "gnp_embedding",
    "noisy_euclidean_delays",
    "transit_stub_delays",
    "vivaldi_embedding",
]
