"""Underlay topology model: the physical network beneath the overlay.

Overlay multicast sends each tree edge as a unicast flow across the
*underlay* (router-level) network. Two classic questions about an
overlay tree need the underlay, not just the delay matrix:

* **link stress** — how many overlay flows cross one physical link
  (IP multicast achieves stress 1; overlay trees pay more);
* **path inflation** — overlay-path delay over direct underlay delay.

:class:`TransitStubNetwork` generates the two-level GT-ITM-style
topology the 2000s overlay literature evaluated on (transit core ring +
chords, stub domains, host access links) and answers routing queries.
:func:`repro.embedding.delay_models.transit_stub_delays` is the
matrix-only convenience view of the same generator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TransitStubNetwork"]


class TransitStubNetwork:
    """A transit-stub underlay with attached end hosts.

    Use :meth:`generate`; the constructor takes prebuilt parts.

    :ivar graph: the weighted :class:`networkx.Graph` of routers+hosts.
    :ivar hosts: node labels of the end hosts, index-aligned with the
        delay matrix.
    """

    def __init__(self, graph, hosts):
        import networkx as nx

        if not isinstance(graph, nx.Graph):
            raise TypeError("graph must be a networkx.Graph")
        self.graph = graph
        self.hosts = list(hosts)
        if len(self.hosts) < 2:
            raise ValueError("an underlay needs at least two hosts")
        self._paths = None
        self._lengths = None

    @classmethod
    def generate(
        cls,
        n_hosts: int,
        n_transit: int = 8,
        stubs_per_transit: int = 3,
        transit_delay: float = 20.0,
        stub_delay: float = 5.0,
        access_delay: float = 2.0,
        seed=None,
    ) -> "TransitStubNetwork":
        """Generate the topology (same parameters and distributions as
        :func:`~repro.embedding.delay_models.transit_stub_delays`)."""
        import networkx as nx

        if n_hosts < 2:
            raise ValueError("need at least two hosts")
        if n_transit < 2 or stubs_per_transit < 1:
            raise ValueError("need at least 2 transit routers and 1 stub each")
        rng = np.random.default_rng(seed)
        graph = nx.Graph()

        transits = [("t", i) for i in range(n_transit)]
        for i in range(n_transit):
            graph.add_edge(
                transits[i],
                transits[(i + 1) % n_transit],
                weight=transit_delay * (0.5 + rng.random()),
            )
        for _ in range(max(1, n_transit // 2)):
            a, b = rng.choice(n_transit, size=2, replace=False)
            graph.add_edge(
                transits[int(a)],
                transits[int(b)],
                weight=transit_delay * (0.5 + rng.random()),
            )

        stubs = []
        for i in range(n_transit):
            for j in range(stubs_per_transit):
                stub = ("s", i, j)
                stubs.append(stub)
                graph.add_edge(
                    transits[i], stub, weight=stub_delay * (0.5 + rng.random())
                )

        hosts = []
        for h in range(n_hosts):
            stub = stubs[int(rng.integers(0, len(stubs)))]
            host = ("h", h)
            hosts.append(host)
            graph.add_edge(
                stub, host, weight=access_delay * (0.5 + rng.random())
            )
        return cls(graph, hosts)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _ensure_routes(self):
        if self._paths is None:
            import networkx as nx

            self._paths = {}
            self._lengths = {}
            for host in self.hosts:
                lengths, paths = nx.single_source_dijkstra(
                    self.graph, host, weight="weight"
                )
                self._paths[host] = paths
                self._lengths[host] = lengths

    def delay_matrix(self) -> np.ndarray:
        """Symmetric host-to-host shortest-path delays."""
        self._ensure_routes()
        n = len(self.hosts)
        delays = np.zeros((n, n))
        for i, hi in enumerate(self.hosts):
            row = self._lengths[hi]
            for j, hj in enumerate(self.hosts):
                if i != j:
                    delays[i, j] = row[hj]
        return (delays + delays.T) / 2.0

    def route(self, i: int, j: int) -> list:
        """Router-level path between hosts ``i`` and ``j`` (node labels)."""
        self._ensure_routes()
        return self._paths[self.hosts[i]][self.hosts[j]]

    # ------------------------------------------------------------------
    # overlay analysis
    # ------------------------------------------------------------------

    def link_stress(self, tree) -> dict:
        """Physical-link stress of an overlay tree.

        Maps every overlay edge onto its underlay route and counts how
        many overlay flows traverse each physical link.

        :param tree: a :class:`~repro.core.tree.MulticastTree` whose node
            indices align with :attr:`hosts`.
        :returns: dict with ``max``, ``mean`` (over links carrying at
            least one flow), ``links_used`` and the per-link ``counts``
            mapping (frozenset endpoint pair -> flows).
        """
        if tree.n != len(self.hosts):
            raise ValueError(
                f"tree has {tree.n} nodes but the underlay hosts "
                f"{len(self.hosts)}"
            )
        counts: dict[frozenset, int] = {}
        for parent_idx, child_idx in tree.edges().tolist():
            path = self.route(parent_idx, child_idx)
            for a, b in zip(path, path[1:]):
                key = frozenset((a, b))
                counts[key] = counts.get(key, 0) + 1
        if not counts:
            return {"max": 0, "mean": 0.0, "links_used": 0, "counts": {}}
        values = list(counts.values())
        return {
            "max": max(values),
            "mean": sum(values) / len(values),
            "links_used": len(values),
            "counts": counts,
        }

    def ip_multicast_baseline(self, source: int = 0) -> dict:
        """What network-supported IP multicast would achieve.

        IP multicast delivers along the underlay's shortest-path tree
        from the source: every physical link carries at most one copy
        (stress 1) and every host receives at its unicast delay. The
        paper's introduction motivates overlay multicast as the
        deployable approximation of exactly this ideal; this method
        computes the ideal so the gap is measurable.

        :returns: dict with ``max_delay`` (the radius IP multicast
            achieves), ``mean_delay``, and ``stress`` (always 1 by
            construction, included for symmetric reporting).
        """
        self._ensure_routes()
        src = self.hosts[source]
        lengths = self._lengths[src]
        delays = np.array(
            [lengths[h] for h in self.hosts if h != src], dtype=np.float64
        )
        return {
            "max_delay": float(delays.max()) if delays.size else 0.0,
            "mean_delay": float(delays.mean()) if delays.size else 0.0,
            "stress": 1,
        }

    def overlay_vs_ip_multicast(self, tree) -> dict:
        """Head-to-head: an overlay tree against the IP-multicast ideal.

        :returns: dict with the overlay's true-delay radius, the IP
            radius, their ratio (>= 1: the price of deployability), and
            the overlay's max link stress (vs IP's 1).
        """
        ip = self.ip_multicast_baseline(source=tree.root)
        delays = self.delay_matrix()
        worst = 0.0
        parent = tree.parent
        for node in range(tree.n):
            total, walk = 0.0, node
            while walk != tree.root:
                total += delays[walk, int(parent[walk])]
                walk = int(parent[walk])
            worst = max(worst, total)
        stress = self.link_stress(tree)
        return {
            "overlay_max_delay": worst,
            "ip_max_delay": ip["max_delay"],
            "delay_ratio": worst / ip["max_delay"]
            if ip["max_delay"]
            else 1.0,
            "overlay_max_stress": stress["max"],
            "ip_max_stress": 1,
        }

    def path_inflation(self, tree) -> np.ndarray:
        """Per-receiver overlay delay over direct underlay delay (RDP
        against the *real* network rather than the embedding)."""
        self._ensure_routes()
        delays = self.delay_matrix()
        inflation = np.ones(tree.n)
        root = tree.root
        parent = tree.parent
        for node in range(tree.n):
            if node == root:
                continue
            total, walk = 0.0, node
            while walk != root:
                total += delays[walk, int(parent[walk])]
                walk = int(parent[walk])
            direct = delays[node, root]
            inflation[node] = total / direct if direct > 0 else 1.0
        return inflation
