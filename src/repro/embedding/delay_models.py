"""Synthetic unicast-delay matrices.

The paper's pipeline starts from *measured* pairwise Internet delays. We
cannot measure the 2004 Internet, so these models generate delay matrices
with the structure the embedding literature cares about: triangle-
inequality violations of controlled magnitude (noisy Euclidean) and
hierarchical routing detours (transit-stub graphs). Both exercise the
same code path the real measurements would: matrix in, coordinates out,
tree built on the coordinates, quality judged against the *true* delays.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import pairwise_distances, validate_points

__all__ = [
    "noisy_euclidean_delays",
    "transit_stub_delays",
    "embedding_distortion",
]


def noisy_euclidean_delays(
    points: np.ndarray, noise: float = 0.1, seed=None
) -> np.ndarray:
    """Delays = distances times symmetric lognormal noise.

    :param points: ground-truth coordinates, shape ``(n, d)``.
    :param noise: sigma of the lognormal factor; 0 gives exact distances.
    :returns: symmetric ``(n, n)`` matrix with zero diagonal.
    """
    validate_points(points)
    if noise < 0:
        raise ValueError("noise must be non-negative")
    rng = np.random.default_rng(seed)
    base = pairwise_distances(points)
    factors = rng.lognormal(mean=0.0, sigma=noise, size=base.shape)
    # Symmetrise the noise so delay(i, j) == delay(j, i).
    factors = np.sqrt(factors * factors.T)
    delays = base * factors
    np.fill_diagonal(delays, 0.0)
    return delays


def transit_stub_delays(
    n_hosts: int,
    n_transit: int = 8,
    stubs_per_transit: int = 3,
    transit_delay: float = 20.0,
    stub_delay: float = 5.0,
    access_delay: float = 2.0,
    seed=None,
) -> np.ndarray:
    """Delays from a two-level transit-stub topology (GT-ITM style).

    A ring-plus-chords transit core connects stub domains; hosts attach
    to random stub routers. Delays are shortest paths in the weighted
    graph, which violate the triangle inequality structure of any
    Euclidean space — the hard case for embeddings.

    :param n_hosts: number of end hosts (the returned matrix size).
    :returns: symmetric ``(n_hosts, n_hosts)`` delay matrix.

    For the topology itself (link-stress analysis, routing queries) use
    :class:`repro.embedding.underlay.TransitStubNetwork`, of which this
    is the matrix-only view.
    """
    from repro.embedding.underlay import TransitStubNetwork

    network = TransitStubNetwork.generate(
        n_hosts,
        n_transit=n_transit,
        stubs_per_transit=stubs_per_transit,
        transit_delay=transit_delay,
        stub_delay=stub_delay,
        access_delay=access_delay,
        seed=seed,
    )
    return network.delay_matrix()


def embedding_distortion(
    delays: np.ndarray, coords: np.ndarray
) -> dict[str, float]:
    """How well coordinates reproduce a delay matrix.

    :returns: dict with ``median_ratio_error`` (the GNP paper's relative
        error median), ``mean_ratio_error`` and ``stress`` (normalised
        RMS error).
    """
    validate_points(coords)
    n = delays.shape[0]
    if delays.shape != (n, n) or coords.shape[0] != n:
        raise ValueError("delays must be (n, n) and coords (n, d)")
    est = pairwise_distances(coords)
    iu = np.triu_indices(n, k=1)
    actual = delays[iu]
    predicted = est[iu]
    positive = actual > 0
    ratio = np.abs(predicted[positive] - actual[positive]) / actual[positive]
    denom = float(np.sum(actual**2))
    stress = float(
        np.sqrt(np.sum((predicted - actual) ** 2) / denom) if denom else 0.0
    )
    return {
        "median_ratio_error": float(np.median(ratio)) if ratio.size else 0.0,
        "mean_ratio_error": float(ratio.mean()) if ratio.size else 0.0,
        "stress": stress,
    }
