"""Spawn, monitor, and kill a fleet of build-service shards.

:class:`ShardFleet` brings up N independent
:class:`~repro.service.core.TreeBuildService` instances on ephemeral
ports and hands out :class:`~repro.service.shard.ShardRouter`\\ s wired
to them. Two modes:

``thread`` (default)
    each shard is a :class:`~repro.service.server.BackgroundServer`
    daemon thread in this process — instant startup, direct access to
    each shard's ``service`` object for counter assertions. ``kill``
    stops the shard abruptly (listening socket closed, live
    connections dropped), which clients observe as
    :class:`~repro.service.client.ServiceUnavailable` — the same
    symptom as a dead process.

``process``
    each shard is a real ``python -m repro serve`` subprocess — the
    only mode where ``kill`` can deliver an honest ``SIGKILL``, which
    is exactly what the CI fleet-smoke does mid-run. Startup parses
    each child's "listening on host:port" line to learn its ephemeral
    port.

Fault drills reuse the :mod:`repro.testing.faults` plan format:
:meth:`ShardFleet.inject` interprets a sequence of
:class:`~repro.testing.faults.FaultSpec` entries with ``trial`` read as
the *shard index* — ``crash`` SIGKILLs (or abruptly stops) that shard,
``hang`` SIGSTOPs it (process mode), ``sleep`` is the inter-step brake.
The same vocabulary that kills trial workers in resilience drills kills
shards here.

>>> # doctest: +SKIP
>>> from repro.service.fleet import ShardFleet
>>> with ShardFleet(shards=3) as fleet:
...     with fleet.router() as router:
...         reply = router.build(workload={"kind": "unit-disk", "n": 500})
...         fleet.total_builds()
1
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.server import BackgroundServer
from repro.service.shard import ShardRouter

__all__ = ["ShardFleet", "run_fleet"]

_LISTENING = re.compile(r"listening on ([0-9.]+):([0-9]+)")


class _Shard:
    """One fleet member: its id, address, and underlying server handle."""

    def __init__(self, shard_id: str):
        self.shard_id = shard_id
        self.host: str | None = None
        self.port: int | None = None
        self.server: BackgroundServer | None = None  # thread mode
        self.process: subprocess.Popen | None = None  # process mode
        self.killed = False
        self._ready = threading.Event()

    def alive(self) -> bool:
        """Best-effort liveness: not killed and the backend still runs."""
        if self.killed:
            return False
        if self.process is not None:
            return self.process.poll() is None
        if self.server is not None and self.server._thread is not None:
            return self.server._thread.is_alive()
        return False


class ShardFleet:
    """N build-service shards on ephemeral ports, as one context manager.

    :param shards: fleet size (shard ids ``shard-0`` … ``shard-N-1``).
    :param mode: ``"thread"`` (in-process :class:`BackgroundServer`\\ s)
        or ``"process"`` (``python -m repro serve`` subprocesses that
        can be SIGKILLed).
    :param replication: preference-list length for routers this fleet
        hands out (see :class:`~repro.service.shard.HashRing`).
    :param vnodes: virtual nodes per shard on those routers' rings.
    :param max_workers: build threads per shard.
    :param max_pending: per-shard admission bound.
    :param start_timeout: seconds to wait for every shard to listen.
    """

    def __init__(
        self,
        shards: int = 3,
        mode: str = "thread",
        replication: int = 2,
        vnodes: int = 64,
        max_workers: int = 2,
        max_pending: int = 32,
        start_timeout: float = 60.0,
    ):
        """Configure (but do not yet start) the fleet."""
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        self.mode = mode
        self.replication = int(replication)
        self.vnodes = int(vnodes)
        self.max_workers = int(max_workers)
        self.max_pending = int(max_pending)
        self.start_timeout = float(start_timeout)
        self._shards = [_Shard(f"shard-{i}") for i in range(shards)]

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "ShardFleet":
        """Bring every shard up and wait until all of them listen."""
        for shard in self._shards:
            if self.mode == "thread":
                self._start_thread_shard(shard)
            else:
                self._start_process_shard(shard)
        deadline = time.monotonic() + self.start_timeout
        for shard in self._shards:
            remaining = max(0.0, deadline - time.monotonic())
            if not shard._ready.wait(timeout=remaining) or shard.port is None:
                self.stop()
                raise RuntimeError(
                    f"{shard.shard_id} failed to listen within "
                    f"{self.start_timeout}s"
                )
        return self

    def stop(self) -> None:
        """Stop every shard (idempotent; dead shards are skipped)."""
        for shard in self._shards:
            if shard.server is not None:
                shard.server.stop()
            if shard.process is not None and shard.process.poll() is None:
                shard.process.terminate()
        for shard in self._shards:
            if shard.process is not None:
                try:
                    shard.process.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    shard.process.kill()
                    shard.process.wait(timeout=10)
                if shard.process.stdout is not None:
                    shard.process.stdout.close()

    def __enter__(self) -> "ShardFleet":
        """Context-manager entry: start and wait for all shards."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the fleet on context exit."""
        self.stop()

    def _start_thread_shard(self, shard: _Shard) -> None:
        shard.server = BackgroundServer(
            port=0,
            max_workers=self.max_workers,
            max_pending=self.max_pending,
        ).start()
        shard.host = shard.server.host
        shard.port = shard.server.port
        shard._ready.set()

    def _start_process_shard(self, shard: _Shard) -> None:
        src = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        shard.process = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--workers",
                str(self.max_workers),
                "--max-pending",
                str(self.max_pending),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        watcher = threading.Thread(
            target=self._watch_stdout,
            args=(shard,),
            name=f"fleet-{shard.shard_id}",
            daemon=True,
        )
        watcher.start()

    @staticmethod
    def _watch_stdout(shard: _Shard) -> None:
        """Parse the child's listening line, then drain its output."""
        for line in shard.process.stdout:
            match = _LISTENING.search(line)
            if match and shard.port is None:
                shard.host = match.group(1)
                shard.port = int(match.group(2))
                shard._ready.set()
        shard._ready.set()  # EOF before listening = startup failure

    # -- monitoring ---------------------------------------------------

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """The fleet's shard ids, in index order."""
        return tuple(s.shard_id for s in self._shards)

    def addresses(self) -> dict[str, tuple[str, int]]:
        """Shard id → ``(host, port)``, the map routers are built from."""
        return {s.shard_id: (s.host, s.port) for s in self._shards}

    def alive(self) -> dict[str, bool]:
        """Per-shard liveness (killed shards report ``False``)."""
        return {s.shard_id: s.alive() for s in self._shards}

    def router(self, **kwargs) -> ShardRouter:
        """A fresh router over this fleet (one per client thread)."""
        kwargs.setdefault("replication", self.replication)
        kwargs.setdefault("vnodes", self.vnodes)
        return ShardRouter(self.addresses(), **kwargs)

    def fleet_stats(self) -> dict[str, dict | None]:
        """Every shard's ``stats`` response (``None`` for dead shards)."""
        stats: dict[str, dict | None] = {}
        for shard in self._shards:
            if shard.server is not None and shard.server.service is not None:
                # Thread mode: read the service object directly — works
                # even after an abrupt stop, when TCP would refuse.
                stats[shard.shard_id] = shard.server.service.stats()
                continue
            try:
                with ServiceClient(host=shard.host, port=shard.port) as client:
                    stats[shard.shard_id] = client.stats()
            except ServiceUnavailable:
                stats[shard.shard_id] = None
        return stats

    def total_builds(self) -> int:
        """Builds run fleet-wide.

        Thread-mode shards stay countable after a kill (their service
        object survives in-process); a SIGKILLed subprocess does not,
        and its builds died with it — exactly the loss failover must
        absorb.
        """
        return sum(
            s["builds"] for s in self.fleet_stats().values() if s is not None
        )

    # -- fault drills -------------------------------------------------

    def kill(self, shard_id: str) -> None:
        """Kill one shard: SIGKILL its process, or stop its thread dead.

        Idempotent; killing an already-dead shard is a no-op.
        """
        shard = self._get(shard_id)
        shard.killed = True
        if shard.process is not None:
            if shard.process.poll() is None:
                shard.process.kill()  # SIGKILL — no goodbye
                shard.process.wait(timeout=10)
        elif shard.server is not None:
            shard.server.stop()

    def inject(self, *specs) -> None:
        """Run a fault plan against the fleet, in order.

        Reuses the :class:`~repro.testing.faults.FaultSpec` vocabulary
        with ``trial`` read as the shard index: ``crash`` kills
        ``shard-<trial>`` (SIGKILL in process mode), ``hang`` SIGSTOPs
        it (process mode only), ``sleep`` pauses between steps.

        :raises ValueError: a kind this harness cannot express
            (``error``/``oom`` are worker-level faults), ``crash``/
            ``hang`` without a shard index, or ``hang`` in thread mode.
        """
        for spec in specs:
            if spec.kind == "sleep":
                time.sleep(spec.seconds if spec.seconds is not None else 0.1)
                continue
            if spec.trial is None:
                raise ValueError(
                    f"fleet fault {spec.kind!r} needs trial= (the shard index)"
                )
            shard = self._get(f"shard-{spec.trial}")
            if spec.kind == "crash":
                self.kill(shard.shard_id)
            elif spec.kind == "hang":
                if shard.process is None:
                    raise ValueError(
                        "hang needs mode='process' (SIGSTOP has no "
                        "thread-mode equivalent)"
                    )
                shard.process.send_signal(signal.SIGSTOP)
            else:
                raise ValueError(
                    f"fault kind {spec.kind!r} is not a fleet-level fault"
                )

    def _get(self, shard_id: str) -> _Shard:
        for shard in self._shards:
            if shard.shard_id == shard_id:
                return shard
        raise KeyError(f"unknown shard {shard_id!r}")


def run_fleet(
    shards: int = 3,
    max_workers: int = 2,
    max_pending: int = 32,
    poll_seconds: float = 1.0,
    log=print,
    _cycles: int | None = None,
) -> int:
    """Blocking entry point behind ``python -m repro serve-fleet``.

    Spawns a process-mode fleet on ephemeral ports, prints the shard
    map (feed it to :class:`~repro.service.shard.ShardRouter`), and
    monitors liveness until interrupted. A dead shard is reported but
    the fleet keeps serving — that is what replicas are for; exit code
    1 only when *every* shard is gone (``_cycles`` bounds the monitor
    loop for tests).
    """
    fleet = ShardFleet(
        shards=shards,
        mode="process",
        max_workers=max_workers,
        max_pending=max_pending,
    )
    with fleet:
        for shard_id, (host, port) in fleet.addresses().items():
            log(f"{shard_id} listening on {host}:{port}")
        log(f"fleet of {shards} shard(s) up; Ctrl+C to stop")
        reported: set[str] = set()
        cycle = 0
        try:
            while _cycles is None or cycle < _cycles:
                cycle += 1
                time.sleep(poll_seconds)
                alive = fleet.alive()
                for shard_id, up in alive.items():
                    if not up and shard_id not in reported:
                        reported.add(shard_id)
                        log(
                            f"{shard_id} died; routers fail over to its "
                            "replicas"
                        )
                if not any(alive.values()):
                    log("all shards dead; giving up")
                    return 1
        except KeyboardInterrupt:
            log("stopping fleet")
    return 0
