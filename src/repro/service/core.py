"""The tree-build service: one build per distinct request, ever.

:class:`TreeBuildService` fronts the builder registry
(:func:`repro.build`) with three request-collapsing layers:

1. **content-addressed cache** — a repeat of an earlier request is
   answered from :class:`~repro.service.cache.BuildCache` without
   building (``response.cached``);
2. **request coalescing** — concurrent *identical* requests share one
   in-flight build: the first becomes the owner, the rest await its
   future (``response.coalesced``). N clients asking for the same tree
   at once cost exactly one build;
3. **admission control** — distinct in-flight builds are bounded by
   ``max_pending``; past that, new work is rejected *immediately* with
   a structured :class:`ServiceOverload` (cache hits and coalesced
   joins are always admitted — they add no build work).

Per-request deadlines reuse the resilience layer's
:class:`~repro.experiments.resilience.ResiliencePolicy` as the config
carrier: the service-wide default is ``policy.timeout``, overridable
per request. A deadline that expires raises :class:`DeadlineExceeded`;
the underlying build keeps running and its result still lands in the
cache (late work is not wasted — the next request hits).

Builds run on a thread pool via ``loop.run_in_executor`` — the numpy
kernels release the GIL for their hot loops, so the event loop stays
responsive while trees build.

**Updates.** A warm cache entry does not have to be invalidated by
membership churn: :meth:`TreeBuildService.update` replays a batch of
join/leave events through the cell-local maintenance engine
(:mod:`repro.overlay.incremental`) against a cached polar-grid build and
stores the mutated tree under its new content address. The old entry
stays (the cache addresses content, and the old point set still hashes
to it); the response carries the new key plus the engine's per-op
counters. Only full-mode polar-grid entries (those carrying their grid)
support in-place mutation — anything else raises
:class:`UpdateUnsupported`.

**Sessions.** Constructed with a shared ``population`` (and per-host
``host_caps``), the service also runs multi-group admission: ``admit``
builds one group's tree against the *residual* budgets other groups
left in a shared :class:`~repro.packing.allocator
.DegreeBudgetAllocator` and atomically reserves the tree's per-host
out-degrees; ``evict`` releases them. A group that does not fit is
rejected with a structured
:class:`~repro.packing.allocator.BudgetExhausted` and no budget moves.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from functools import partial

import numpy as np

import repro.obs as obs
from repro.core.builder import BuildResult
from repro.core.registry import build
from repro.packing.allocator import BudgetExhausted, DegreeBudgetAllocator
from repro.service.cache import BuildCache, canonical_key
from repro.service.errors import (
    DeadlineExceeded,
    PackingUnavailable,
    ServiceError,
    ServiceOverload,
    UnknownGroup,
    UnknownUpdateKey,
    UpdateUnsupported,
)
from repro.service.session import GroupSession
from repro.workloads.generators import (
    clustered_disk,
    nonuniform_disk,
    unit_ball,
    unit_disk,
)

__all__ = [
    "WorkloadSpec",
    "BuildRequest",
    "BuildResponse",
    "UpdateResponse",
    "ServiceError",
    "ServiceOverload",
    "DeadlineExceeded",
    "UnknownUpdateKey",
    "UpdateUnsupported",
    "UnknownGroup",
    "PackingUnavailable",
    "BudgetExhausted",
    "TreeBuildService",
    "WORKLOAD_KINDS",
]


def _workload_disk(n, seed, dim):
    """Uniform unit-disk instance (``dim`` ignored: always 2-D)."""
    return unit_disk(n, seed=seed)


def _workload_ball(n, seed, dim):
    """Uniform unit-ball instance in ``dim`` dimensions (default 3)."""
    return unit_ball(n, dim=dim if dim else 3, seed=seed)


def _workload_clustered(n, seed, dim):
    """Clustered-disk instance (``dim`` ignored)."""
    return clustered_disk(n, seed=seed)


def _workload_nonuniform(n, seed, dim):
    """Density-tilted disk instance (``dim`` ignored)."""
    return nonuniform_disk(n, seed=seed)


#: Workload kinds a request may name instead of shipping raw points.
WORKLOAD_KINDS = {
    "unit-disk": _workload_disk,
    "unit-ball": _workload_ball,
    "clustered-disk": _workload_clustered,
    "nonuniform-disk": _workload_nonuniform,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, seeded point-set a request asks the service to generate.

    Materialisation is deterministic, so a workload request and a raw
    points request for the same coordinates share one cache key — the
    cache addresses *content*, not request phrasing.
    """

    kind: str = "unit-disk"
    n: int = 1000
    seed: int = 0
    dim: int = 0  # 0 = the kind's natural dimension

    def materialize(self) -> np.ndarray:
        """Generate the ``(n, d)`` coordinate array this spec names."""
        try:
            generator = WORKLOAD_KINDS[self.kind]
        except KeyError:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; known kinds: "
                + ", ".join(sorted(WORKLOAD_KINDS))
            ) from None
        return generator(self.n, self.seed, self.dim)


@dataclass
class BuildRequest:
    """One tree-build request: a point set (or workload) plus a builder.

    Exactly one of ``points`` / ``workload`` must be given. ``params``
    uses the registry's normalized vocabulary (``max_out_degree``,
    ``seed``, ...). ``deadline`` (seconds) overrides the service-wide
    default from its resilience policy; ``None`` inherits it.
    """

    points: np.ndarray | None = None
    workload: WorkloadSpec | None = None
    source: int = 0
    builder: str = "polar-grid"
    params: dict = field(default_factory=dict)
    deadline: float | None = None

    def resolve_points(self) -> np.ndarray:
        """The concrete coordinate array this request builds over."""
        if (self.points is None) == (self.workload is None):
            raise ValueError(
                "a BuildRequest needs exactly one of points= or workload="
            )
        if self.points is not None:
            return np.asarray(self.points, dtype=np.float64)
        return self.workload.materialize()


@dataclass
class BuildResponse:
    """What the service answers: the result plus how it was obtained.

    ``cached`` — served from the content-addressed cache (no build);
    ``coalesced`` — joined another request's in-flight build;
    ``service_seconds`` — request latency inside the service, queueing
    included (compare with ``result.build_seconds``, the build alone).
    """

    key: str
    result: BuildResult
    cached: bool = False
    coalesced: bool = False
    service_seconds: float = 0.0

    def to_dict(self, include_tree: bool = False) -> dict:
        """A JSON-safe summary (the wire format of the TCP server).

        With ``include_tree`` the payload carries ``points``, ``parent``
        and ``root`` — everything needed to reconstruct the
        :class:`~repro.core.tree.MulticastTree` and oracle-check it on
        the client side.
        """
        tree = self.result.tree
        payload = {
            "key": self.key,
            "builder": self.result.builder,
            "n": int(tree.n),
            "radius": float(tree.radius()),
            "max_out_degree": int(self.result.max_out_degree),
            "rings": self.result.rings,
            "core_delay": self.result.core_delay,
            "upper_bound": self.result.upper_bound,
            "build_seconds": float(self.result.build_seconds),
            "cached": self.cached,
            "coalesced": self.coalesced,
            "service_seconds": float(self.service_seconds),
        }
        if include_tree:
            payload["root"] = int(tree.root)
            payload["parent"] = tree.parent.tolist()
            payload["points"] = tree.points.tolist()
        return payload


@dataclass
class UpdateResponse:
    """What an in-place update answers: the mutated tree's new address.

    ``key`` is the *new* content address (the old entry survives —
    content addressing means the pre-churn point set still owns it);
    ``counters`` carries the engine's per-op totals for the batch
    (``joins``, ``leaves``, ``partial_rebuilds``, ``full_rebuilds``).
    """

    key: str
    old_key: str
    result: BuildResult
    events_applied: int = 0
    counters: dict = field(default_factory=dict)
    service_seconds: float = 0.0

    def to_dict(self, include_tree: bool = False) -> dict:
        """A JSON-safe summary (the wire format of the TCP server)."""
        tree = self.result.tree
        payload = {
            "key": self.key,
            "old_key": self.old_key,
            "n": int(tree.n),
            "radius": float(tree.radius()),
            "max_out_degree": int(self.result.max_out_degree),
            "rings": self.result.rings,
            "events_applied": int(self.events_applied),
            "counters": dict(self.counters),
            "service_seconds": float(self.service_seconds),
        }
        if include_tree:
            payload["root"] = int(tree.root)
            payload["parent"] = tree.parent.tolist()
            payload["points"] = tree.points.tolist()
        return payload


def _normalize_events(events) -> list[dict]:
    """Validate an update's event batch into ``{action, name?, ...}``."""
    if not isinstance(events, (list, tuple)) or not events:
        raise ValueError("events must be a non-empty list of event objects")
    normalized = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        action = ev.get("action")
        if action not in ("join", "leave"):
            raise ValueError(
                f"event {i}: action must be 'join' or 'leave', "
                f"got {action!r}"
            )
        known = {"action", "name", "coords", "index"}
        unknown = set(ev) - known
        if unknown:
            raise ValueError(
                f"event {i}: unknown field(s): " + ", ".join(sorted(unknown))
            )
        if action == "join":
            if "coords" not in ev:
                raise ValueError(f"event {i}: a join needs coords")
        elif "name" not in ev and "index" not in ev:
            raise ValueError(f"event {i}: a leave needs a name or an index")
        normalized.append(dict(ev))
    return normalized


def _apply_update_events(result: BuildResult, events: list[dict], serial: int):
    """Replay one update batch through the incremental engine (worker).

    Runs on the build thread pool. The engine's end state is
    oracle-checked before anything is returned, so a corrupt tree can
    never reach the cache.
    """
    from repro.overlay.incremental import IncrementalGridTree

    engine = IncrementalGridTree(result)
    for i, ev in enumerate(events):
        if ev["action"] == "join":
            name = ev.get("name") or f"u{serial}-{i}"
            engine.join(name, np.asarray(ev["coords"], dtype=np.float64))
        else:
            name = ev.get("name")
            if name is None:
                idx = int(ev["index"])
                if not 0 <= idx < len(engine.names) or engine.names[idx] is None:
                    raise ValueError(f"event {i}: no member at index {idx}")
                name = engine.names[idx]
            engine.leave(name)
    engine.check().raise_if_failed()
    return engine


def _mark_retrieved(future: asyncio.Future) -> None:
    """Consume a future's exception so asyncio never logs it as lost."""
    if not future.cancelled():
        future.exception()


class TreeBuildService:
    """Coalescing, caching, admission-controlled front end to the registry.

    :param cache: a :class:`~repro.service.cache.BuildCache` (a default
        256 MiB in-memory cache when ``None``).
    :param max_pending: bound on *distinct* in-flight builds; requests
        that would start build number ``max_pending + 1`` are rejected
        with :class:`ServiceOverload`.
    :param policy: a :class:`~repro.experiments.resilience
        .ResiliencePolicy` whose ``timeout`` is the default per-request
        deadline (``None`` = no default deadline).
    :param max_workers: build threads (default 2).

    Single-event-loop object: all coordination state (in-flight map,
    counters, cache) is touched only from the loop that calls
    :meth:`submit`, so no locks are needed.
    """

    def __init__(
        self,
        cache: BuildCache | None = None,
        max_pending: int = 32,
        policy=None,
        max_workers: int | None = None,
        population: np.ndarray | None = None,
        host_caps=None,
    ):
        """A fresh service with no in-flight builds.

        ``population`` (an ``(N, d)`` coordinate array) plus
        ``host_caps`` (scalar or ``(N,)`` per-host out-degree caps)
        turn on multi-group packing: :meth:`admit` / :meth:`evict`
        manage whole-group sessions against a shared
        :class:`~repro.packing.allocator.DegreeBudgetAllocator`.
        Without a population, those ops raise
        :class:`PackingUnavailable`.
        """
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.cache = cache if cache is not None else BuildCache()
        self.max_pending = int(max_pending)
        self.policy = policy
        self._inflight: dict[str, asyncio.Future] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers or 2, thread_name_prefix="repro-build"
        )
        self.requests = 0
        self.builds = 0
        self.coalesced = 0
        self.rejected = 0
        self.deadline_expired = 0
        self.updates = 0
        self._update_serial = 0
        self.population: np.ndarray | None = None
        self.packing: DegreeBudgetAllocator | None = None
        self._sessions: dict[str, GroupSession] = {}
        self.sessions_admitted = 0
        self.sessions_rejected = 0
        self.sessions_evicted = 0
        if population is not None:
            pop = np.ascontiguousarray(
                np.asarray(population, dtype=np.float64)
            )
            if pop.ndim != 2 or pop.shape[0] < 1:
                raise ValueError("population must be an (N, d) array")
            caps = host_caps if host_caps is not None else 8
            if np.isscalar(caps):
                caps = np.full(pop.shape[0], int(caps), dtype=np.int64)
            self.population = pop
            self.packing = DegreeBudgetAllocator(caps)
        elif host_caps is not None:
            raise ValueError("host_caps requires a population= array")

    # -- public API --------------------------------------------------

    async def submit(self, request: BuildRequest) -> BuildResponse:
        """Resolve one request: cache hit, coalesced join, or new build.

        :raises ServiceOverload: when admission control rejects it.
        :raises DeadlineExceeded: when its deadline expires first.
        :raises repro.UnknownBuilderError: unknown builder name.
        :raises repro.BuilderParamError: parameters the builder rejects.
        """
        started = time.perf_counter()
        self.requests += 1
        obs.add("service.requests.total")
        points = request.resolve_points()
        key = canonical_key(
            points, request.source, request.builder, request.params
        )
        deadline = request.deadline
        if deadline is None and self.policy is not None:
            deadline = self.policy.timeout

        cached = self.cache.get(key)
        if cached is not None:
            return self._respond(key, cached, started, cached=True)

        shared = self._inflight.get(key)
        if shared is not None:
            self.coalesced += 1
            obs.add("service.coalesced.total")
            result = await self._await_shared(shared, deadline, key)
            return self._respond(key, result, started, coalesced=True)

        if len(self._inflight) >= self.max_pending:
            self.rejected += 1
            obs.add("service.rejected.total")
            raise ServiceOverload(len(self._inflight), self.max_pending)

        result = await self._build_owned(request, points, key, deadline)
        return self._respond(key, result, started)

    async def update(
        self,
        key: str,
        events,
        deadline: float | None = None,
    ) -> UpdateResponse:
        """Mutate a warm cache entry in place via the incremental engine.

        Replays ``events`` — objects like ``{"action": "join", "coords":
        [...], "name"?}`` or ``{"action": "leave", "name"?|"index"?}`` —
        against the cached build under ``key``, oracle-checks the end
        state, and caches the mutated tree under its new content
        address. The old entry is left alone.

        :raises UnknownUpdateKey: nothing cached under ``key``.
        :raises UpdateUnsupported: the entry is not a full-mode
            polar-grid build (no grid, or fan-out below ``2^d + 2``).
        :raises DeadlineExceeded: the batch missed its deadline.
        :raises ValueError: malformed events, unknown members,
            duplicate joins.
        """
        started = time.perf_counter()
        self.updates += 1
        obs.add("service.updates.total")
        events = _normalize_events(events)
        if deadline is None and self.policy is not None:
            deadline = self.policy.timeout

        entry = self.cache.get(key)
        if entry is None:
            raise UnknownUpdateKey(key)
        if entry.grid is None or entry.representatives is None:
            raise UpdateUnsupported(
                key, "the entry carries no polar grid (degenerate or "
                "non-grid builder)"
            )
        full_threshold = (1 << entry.grid.dim) + 2
        if entry.max_out_degree < full_threshold:
            raise UpdateUnsupported(
                key,
                f"binary-mode build (max_out_degree "
                f"{entry.max_out_degree} < {full_threshold})",
            )

        self._update_serial += 1
        loop = asyncio.get_running_loop()
        work = loop.run_in_executor(
            self._executor,
            partial(_apply_update_events, entry, events, self._update_serial),
        )
        try:
            engine = await asyncio.wait_for(asyncio.shield(work), deadline)
        except asyncio.TimeoutError:
            self.deadline_expired += 1
            obs.add("service.deadline.total")
            raise DeadlineExceeded(key, deadline) from None

        result = engine.to_build_result(builder=entry.builder or "polar-grid")
        new_key = canonical_key(
            np.asarray(result.tree.points),
            int(result.tree.root),
            result.builder,
            {"max_out_degree": int(result.max_out_degree)},
        )
        self.cache.put(new_key, result)
        return UpdateResponse(
            key=new_key,
            old_key=key,
            result=result,
            events_applied=len(events),
            counters={
                "joins": engine.joins,
                "leaves": engine.leaves,
                "partial_rebuilds": engine.partial_rebuilds,
                "full_rebuilds": engine.full_rebuilds,
            },
            service_seconds=time.perf_counter() - started,
        )

    # -- multi-group sessions ----------------------------------------

    async def admit(
        self,
        group_id: str,
        members=None,
        source: int = 0,
        builder: str = "packed-polar-grid",
        params: dict | None = None,
        deadline: float | None = None,
    ) -> tuple[GroupSession, BuildResponse]:
        """Admit one whole group against the shared population.

        Builds the group's tree over ``population[members]`` (rooted at
        population index ``source``, which must be a member), then
        atomically reserves the tree's per-host out-degrees in the
        shared budget allocator. Either both succeed and the group gets
        a live :class:`~repro.service.session.GroupSession`, or a
        structured :class:`BudgetExhausted` rejects it and no budget
        moves. The packed builder sees the allocator's *residual*
        budgets, so it shapes each tree around what earlier groups
        left; any other registered builder is admitted blind and only
        checked at reservation time (the "naive" strategy the packing
        bench compares against).

        :raises PackingUnavailable: the service has no population.
        :raises BudgetExhausted: the group does not fit the residual
            budgets (build-time for the packed builder, reserve-time
            for any builder).
        :raises ValueError: bad group id / members / source, or a
            group id that already has a live session.
        """
        if self.packing is None or self.population is None:
            raise PackingUnavailable()
        if not isinstance(group_id, str) or not group_id:
            raise ValueError("group_id must be a non-empty string")
        if group_id in self._sessions:
            raise ValueError(
                f"group {group_id!r} already has a live session; "
                "evict it first"
            )
        n = self.population.shape[0]
        if members is None:
            member_idx = np.arange(n, dtype=np.int64)
        else:
            member_idx = np.unique(np.asarray(members, dtype=np.int64))
            if member_idx.size == 0:
                raise ValueError("members must name at least one host")
            if member_idx[0] < 0 or member_idx[-1] >= n:
                raise ValueError(
                    f"members must be population indices in [0, {n})"
                )
        source = int(source)
        local = np.flatnonzero(member_idx == source)
        if local.size == 0:
            raise ValueError(
                f"source {source} is not a member of group {group_id!r}"
            )
        local_source = int(local[0])
        params = dict(params or {})
        if builder == "packed-polar-grid":
            params.setdefault(
                "budgets", self.packing.residual()[member_idx].tolist()
            )
        request = BuildRequest(
            points=self.population[member_idx],
            source=local_source,
            builder=builder,
            params=params,
            deadline=deadline,
        )
        try:
            response = await self.submit(request)
        except BudgetExhausted as exc:
            # The builder speaks member-local indices and residual
            # budgets; translate to population indices and true caps
            # before the rejection crosses the wire.
            if exc.host is not None:
                exc.host = int(member_idx[exc.host])
                exc.fields["host"] = exc.host
                exc.cap = int(self.packing.caps[exc.host])
                exc.fields["cap"] = exc.cap
            exc.group = group_id
            exc.fields["group"] = group_id
            self._reject_session()
            raise
        usage = np.zeros(n, dtype=np.int64)
        usage[member_idx] = response.result.tree.out_degrees()
        try:
            receipt = self.packing.reserve(group_id, usage)
        except BudgetExhausted:
            self._reject_session()
            raise
        session = GroupSession(
            group_id=group_id,
            members=member_idx,
            source=source,
            builder=builder,
            params=params,
            key=response.key,
            usage=usage,
            radius=float(response.result.tree.radius()),
            receipt=receipt,
        )
        self._sessions[group_id] = session
        self.sessions_admitted += 1
        obs.add("service.sessions.admitted.total")
        return session, response

    def evict(self, group_id: str) -> GroupSession:
        """End a live session, returning its budget slots to the pool.

        The session's cache entries stay warm (the cache addresses
        content, and a re-admitted identical group will hit them);
        only the budget reservation is released.

        :raises PackingUnavailable: the service has no population.
        :raises UnknownGroup: no live session under ``group_id``.
        """
        if self.packing is None:
            raise PackingUnavailable()
        if group_id not in self._sessions:
            raise UnknownGroup(group_id, list(self._sessions))
        session = self._sessions.pop(group_id)
        self.packing.release(group_id)
        self.sessions_evicted += 1
        obs.add("service.sessions.evicted.total")
        return session

    def sessions(self) -> list[GroupSession]:
        """The live sessions, in admission order."""
        return list(self._sessions.values())

    def get_session(self, group_id: str) -> GroupSession:
        """Look one live session up by group id.

        :raises UnknownGroup: no live session under ``group_id``.
        """
        if group_id not in self._sessions:
            raise UnknownGroup(group_id, list(self._sessions))
        return self._sessions[group_id]

    async def fetch_session(
        self, group_id: str, deadline: float | None = None
    ) -> tuple[GroupSession, BuildResponse]:
        """Re-serve a live session's tree (normally a warm cache hit).

        :raises UnknownGroup: no live session under ``group_id``.
        """
        session = self.get_session(group_id)
        local_source = int(
            np.flatnonzero(session.members == session.source)[0]
        )
        request = BuildRequest(
            points=self.population[session.members],
            source=local_source,
            builder=session.builder,
            params=session.params,
            deadline=deadline,
        )
        response = await self.submit(request)
        return session, response

    def _reject_session(self) -> None:
        self.sessions_rejected += 1
        obs.add("service.sessions.rejected.total")

    def stats(self) -> dict:
        """JSON-safe service counters plus the cache's own stats."""
        payload = {
            "requests": self.requests,
            "builds": self.builds,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "deadline_expired": self.deadline_expired,
            "updates": self.updates,
            "inflight": len(self._inflight),
            "max_pending": self.max_pending,
            "cache": self.cache.stats(),
            "sessions": {
                "live": len(self._sessions),
                "admitted": self.sessions_admitted,
                "rejected": self.sessions_rejected,
                "evicted": self.sessions_evicted,
            },
        }
        if self.packing is not None:
            payload["packing"] = self.packing.stats()
        return payload

    def close(self) -> None:
        """Shut the build thread pool down (waits for running builds)."""
        self._executor.shutdown(wait=True)

    # -- internals ---------------------------------------------------

    def _respond(self, key, result, started, cached=False, coalesced=False):
        return BuildResponse(
            key=key,
            result=result,
            cached=cached,
            coalesced=coalesced,
            service_seconds=time.perf_counter() - started,
        )

    async def _await_shared(self, shared, deadline, key) -> BuildResult:
        """Join another request's build; shield it from our deadline."""
        try:
            return await asyncio.wait_for(asyncio.shield(shared), deadline)
        except asyncio.TimeoutError:
            self.deadline_expired += 1
            obs.add("service.deadline.total")
            raise DeadlineExceeded(key, deadline) from None

    async def _build_owned(self, request, points, key, deadline) -> BuildResult:
        """Run the build we own, publishing the outcome to coalescers."""
        loop = asyncio.get_running_loop()
        shared = loop.create_future()
        shared.add_done_callback(_mark_retrieved)
        self._inflight[key] = shared
        work = loop.run_in_executor(
            self._executor,
            partial(
                build, points, request.source, request.builder, **request.params
            ),
        )
        try:
            result = await asyncio.wait_for(asyncio.shield(work), deadline)
        except asyncio.TimeoutError:
            self._inflight.pop(key, None)
            self.deadline_expired += 1
            obs.add("service.deadline.total")
            error = DeadlineExceeded(key, deadline)
            if not shared.done():
                shared.set_exception(error)
            # The thread can't be interrupted; harvest its result into
            # the cache when it lands so the work is not wasted.
            work.add_done_callback(partial(self._absorb_late, key))
            raise error from None
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not shared.done():
                shared.set_exception(exc)
            raise
        self._inflight.pop(key, None)
        self._record_build(key, result)
        if not shared.done():
            shared.set_result(result)
        return result

    def _record_build(self, key: str, result: BuildResult) -> None:
        self.builds += 1
        obs.add("service.builds.total")
        self.cache.put(key, result)

    def _absorb_late(self, key: str, work: asyncio.Future) -> None:
        """Cache a build that finished after its request's deadline."""
        if work.cancelled() or work.exception() is not None:
            return
        self._record_build(key, work.result())
        obs.add("service.builds.late")


def request_from_payload(payload: dict) -> BuildRequest:
    """Decode the TCP wire format (a JSON object) into a request.

    Accepted fields: ``points`` (nested list) *or* ``workload``
    (``{"kind", "n", "seed", "dim"}``), plus ``source``, ``builder``,
    ``params``, ``deadline``. Unknown fields are rejected so typos fail
    loudly instead of silently building something else.
    """
    known = {
        "op",
        "points",
        "workload",
        "source",
        "builder",
        "params",
        "deadline",
        "include_tree",
    }
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            "unknown request field(s): " + ", ".join(sorted(unknown))
        )
    workload = payload.get("workload")
    if workload is not None:
        workload = WorkloadSpec(**workload)
    points = payload.get("points")
    if points is not None:
        points = np.asarray(points, dtype=np.float64)
    return BuildRequest(
        points=points,
        workload=workload,
        source=int(payload.get("source", 0)),
        builder=payload.get("builder", "polar-grid"),
        params=dict(payload.get("params", {})),
        deadline=payload.get("deadline"),
    )


def workload_to_payload(spec: WorkloadSpec) -> dict:
    """The wire form of a :class:`WorkloadSpec` (plain dict)."""
    return asdict(spec)
