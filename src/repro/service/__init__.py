"""repro.service — the tree-build service layer.

A long-lived front end to the builder registry
(:func:`repro.build`) for workloads that request the same trees
repeatedly: overlay controllers re-planning after churn, sweep drivers
sharing instances, notebooks hammering one dataset. Three layers
collapse duplicate work (see :mod:`repro.service.core`):

* a **content-addressed cache** — requests are keyed by a SHA-256 over
  the canonicalised points, source, builder name, and params, so a
  repeat is answered without building (:mod:`repro.service.cache`);
* **request coalescing** — concurrent identical requests share one
  in-flight build;
* **admission control** — bounded in-flight builds, structured
  :class:`ServiceOverload` rejections, per-request deadlines.

Run one with ``python -m repro serve``; talk to it with
:class:`ServiceClient`; measure it with ``python -m repro bench-serve``.
See docs/SERVICE.md for the full protocol and operational guidance.
"""

from repro.service.bench import run_bench
from repro.service.cache import BuildCache, canonical_key
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.core import (
    BuildRequest,
    BuildResponse,
    DeadlineExceeded,
    ServiceOverload,
    TreeBuildService,
    WorkloadSpec,
)
from repro.service.server import DEFAULT_PORT, BackgroundServer, run_server

__all__ = [
    "BuildCache",
    "BuildRequest",
    "BuildResponse",
    "BackgroundServer",
    "DEFAULT_PORT",
    "DeadlineExceeded",
    "ServiceClient",
    "ServiceClientError",
    "ServiceOverload",
    "TreeBuildService",
    "WorkloadSpec",
    "canonical_key",
    "run_bench",
    "run_server",
]
