"""repro.service — the tree-build service layer.

A long-lived front end to the builder registry
(:func:`repro.build`) for workloads that request the same trees
repeatedly: overlay controllers re-planning after churn, sweep drivers
sharing instances, notebooks hammering one dataset. Three layers
collapse duplicate work (see :mod:`repro.service.core`):

* a **content-addressed cache** — requests are keyed by a SHA-256 over
  the canonicalised points, source, builder name, and params, so a
  repeat is answered without building (:mod:`repro.service.cache`);
* **request coalescing** — concurrent identical requests share one
  in-flight build;
* **admission control** — bounded in-flight builds, structured
  :class:`ServiceOverload` rejections, per-request deadlines.

Scale one service out horizontally with the shard layer
(:mod:`repro.service.shard` / :mod:`repro.service.fleet`): a
consistent-hash :class:`HashRing` partitions the cache-key space over N
shards, a :class:`ShardRouter` sends every request to its key's primary
shard (failing over along the key's deterministic preference list on
:class:`ServiceUnavailable`), and a :class:`ShardFleet` spawns,
monitors, and kills whole fleets for tests and benches.

Run one with ``python -m repro serve`` (a fleet with ``serve-fleet``);
talk to it with :class:`ServiceClient` (a fleet with
:class:`ShardRouter`); measure with ``python -m repro bench-serve`` /
``bench-fleet``. See docs/SERVICE.md for the full protocol, the
sharding contract, and operational guidance.
"""

from repro.service.bench import run_bench, run_fleet_bench
from repro.service.cache import BuildCache, canonical_key
from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    ServiceUnavailable,
)
from repro.service.core import (
    BudgetExhausted,
    BuildRequest,
    BuildResponse,
    DeadlineExceeded,
    PackingUnavailable,
    ServiceError,
    ServiceOverload,
    TreeBuildService,
    UnknownGroup,
    UnknownUpdateKey,
    UpdateResponse,
    UpdateUnsupported,
    WorkloadSpec,
)
from repro.service.fleet import ShardFleet
from repro.service.server import DEFAULT_PORT, BackgroundServer, run_server
from repro.service.session import GroupSession, SessionHandle
from repro.service.shard import HashRing, NoShardAvailable, ShardRouter

__all__ = [
    "BudgetExhausted",
    "BuildCache",
    "BuildRequest",
    "BuildResponse",
    "BackgroundServer",
    "DEFAULT_PORT",
    "DeadlineExceeded",
    "GroupSession",
    "HashRing",
    "NoShardAvailable",
    "PackingUnavailable",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceOverload",
    "ServiceUnavailable",
    "SessionHandle",
    "ShardFleet",
    "ShardRouter",
    "TreeBuildService",
    "UnknownGroup",
    "UnknownUpdateKey",
    "UpdateResponse",
    "UpdateUnsupported",
    "WorkloadSpec",
    "canonical_key",
    "run_bench",
    "run_fleet_bench",
    "run_server",
]
