"""Consistent-hash sharding of the build-cache key space.

One :class:`~repro.service.core.TreeBuildService` is one process with
one cache. This module scales that horizontally without changing any
service contract: the SHA-256 content addresses from
:func:`~repro.service.cache.canonical_key` already distribute uniformly,
so a :class:`HashRing` places them on N shards with classic consistent
hashing (virtual nodes for balance, a replication factor for failover),
and a :class:`ShardRouter` sends every request to its key's primary
shard, falling back along the key's deterministic preference list when
a shard is dead.

Because routing is a pure function of the cache key, *all* clients of a
fleet agree on where a key lives. That is what makes coalescing
shard-aware for free: every concurrent request for a hot key lands on
the same shard, whose in-process coalescing (see
:mod:`repro.service.core`) collapses them onto one build — a hot key
costs exactly one build **fleet-wide**, not one per shard.

Failover is driven by error *type*, never by guessing:

* :class:`~repro.service.client.ServiceUnavailable` — the shard is
  dead (refused/reset/closed transport). The router retries the same
  request on the next replica in the preference list and counts
  ``service.shard.failover.total``.
* :class:`~repro.service.client.ServiceClientError` — the shard is
  alive and said no (overload, deadline, bad builder). Propagated
  unchanged: retrying a *protocol* error on a replica would duplicate
  builds and mask real failures.

Counters (``repro.obs``): ``service.shard.route.total`` (requests
routed), ``service.shard.failover.total`` (dead-shard retries),
``service.shard.rebalance.total`` (live ring membership changes), and
per-shard ``service.shard.<id>.{hit,miss}`` (cache hit vs built/fresh,
as observed by this router). :meth:`ShardRouter.stats` returns the same
data per shard as a plain dict.

>>> ring = HashRing(["a", "b", "c"], vnodes=32, replication=2)
>>> order = ring.preference("deadbeef" * 8)
>>> len(order), len(set(order))
(2, 2)
>>> ring.primary("deadbeef" * 8) == order[0]
True
"""

from __future__ import annotations

import bisect
import hashlib
import json

import numpy as np

import repro.obs as obs
from repro.service.cache import canonical_key
from repro.service.client import (
    ServiceClient,
    ServiceUnavailable,
)
from repro.service.core import WorkloadSpec, workload_to_payload

__all__ = ["HashRing", "ShardRouter", "NoShardAvailable"]


class NoShardAvailable(ConnectionError):
    """Every shard in a key's preference list was unreachable.

    Carries the ``key`` routed and the ``attempted`` shard ids in the
    order they were tried; the last transport failure is ``__cause__``.
    """

    def __init__(self, key: str, attempted: tuple[str, ...]):
        """Record the routed key and the exhausted failover order."""
        self.key = key
        self.attempted = tuple(attempted)
        super().__init__(
            f"no shard available for key {key[:12]}…; tried "
            + " -> ".join(attempted)
        )


def _position(token: str) -> int:
    """A point on the ring for ``token`` (64-bit slice of SHA-256)."""
    digest = hashlib.sha256(token.encode()).hexdigest()
    return int(digest[:16], 16)


class HashRing:
    """Consistent-hash ring over the canonical cache-key space.

    :param shards: initial shard ids (any strings; the fleet uses
        ``"shard-0"``, ``"shard-1"``, ...).
    :param vnodes: virtual nodes per shard. More vnodes → smoother
        balance (the classic trade against ring size); 64 keeps the
        max/mean shard load within ~30% for hundreds of keys.
    :param replication: preference-list length per key — the primary
        plus ``replication - 1`` failover replicas. Clamped to the
        shard count at lookup time, so a 1-shard ring is legal.

    Keys are the hex SHA-256 digests produced by
    :func:`~repro.service.cache.canonical_key`; their ring position is
    the first 64 bits of the digest itself (they are already uniform —
    re-hashing them would only cost cycles). Shard vnodes are placed at
    ``sha256(f"{shard_id}#{i}")``.

    The consistency property (verified in ``tests/test_shard.py``):
    when a shard joins an N-shard ring, only keys that now belong to
    the newcomer move — expected fraction ``1/(N+1)`` — and no key
    moves *between* surviving shards. Symmetrically for a leave.
    """

    def __init__(self, shards=(), vnodes: int = 64, replication: int = 2):
        """An empty ring; ``shards`` are added in the given order."""
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.vnodes = int(vnodes)
        self.replication = int(replication)
        self._positions: list[int] = []  # sorted vnode positions
        self._owners: dict[int, str] = {}  # position -> shard id
        self._shards: list[str] = []  # insertion order, for stats
        for shard in shards:
            self.add(shard)

    @property
    def shards(self) -> tuple[str, ...]:
        """Current shard ids, in insertion order."""
        return tuple(self._shards)

    def __len__(self) -> int:
        """How many shards are on the ring."""
        return len(self._shards)

    def _vnode_positions(self, shard: str) -> list[int]:
        return [_position(f"{shard}#{i}") for i in range(self.vnodes)]

    def add(self, shard: str) -> None:
        """Place ``shard``'s virtual nodes on the ring.

        :raises ValueError: duplicate shard id, or a (vanishingly
            unlikely) vnode position collision with another shard.
        """
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        for pos in self._vnode_positions(shard):
            owner = self._owners.get(pos)
            if owner is not None and owner != shard:
                raise ValueError(
                    f"vnode collision between {shard!r} and {owner!r}"
                )
            self._owners[pos] = shard
            bisect.insort(self._positions, pos)
        self._shards.append(shard)

    def remove(self, shard: str) -> None:
        """Take ``shard``'s virtual nodes off the ring.

        :raises KeyError: unknown shard id.
        """
        if shard not in self._shards:
            raise KeyError(f"shard {shard!r} not on the ring")
        for pos in self._vnode_positions(shard):
            if self._owners.get(pos) == shard:
                del self._owners[pos]
                index = bisect.bisect_left(self._positions, pos)
                del self._positions[index]
        self._shards.remove(shard)

    def preference(self, key: str, count: int | None = None) -> tuple[str, ...]:
        """The key's failover order: primary first, then replicas.

        Walks clockwise from the key's ring position collecting the
        first ``count`` (default: the ring's replication factor)
        *distinct* shards. Deterministic: every ring built with the
        same shards/vnodes yields the same order for the same key.

        :raises RuntimeError: empty ring.
        """
        if not self._positions:
            raise RuntimeError("hash ring has no shards")
        want = min(count or self.replication, len(self._shards))
        start = bisect.bisect_right(self._positions, int(key[:16], 16))
        chosen: list[str] = []
        for step in range(len(self._positions)):
            pos = self._positions[(start + step) % len(self._positions)]
            owner = self._owners[pos]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == want:
                    break
        return tuple(chosen)

    def primary(self, key: str) -> str:
        """The shard that owns ``key`` (first of its preference list)."""
        return self.preference(key, count=1)[0]

    def load(self, keys) -> dict[str, int]:
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.primary(key)] += 1
        return counts


class ShardRouter:
    """Client-side router: each build goes to its key's primary shard.

    :param addresses: mapping of shard id → ``(host, port)``. The ids
        (not the addresses) are hashed onto the ring, so a shard can
        restart on a new port without remapping the key space — update
        the address, keep the id.
    :param vnodes: virtual nodes per shard (see :class:`HashRing`).
    :param replication: preference-list length — how many shards are
        tried before :class:`NoShardAvailable`.
    :param timeout: per-connection transport timeout, passed to each
        underlying :class:`~repro.service.client.ServiceClient`.

    One router holds at most one connection per shard, opened lazily
    and dropped on transport failure. Like ``ServiceClient``, a router
    is not thread-safe — give each closed-loop client thread its own.

    Routing keys are the exact content addresses of the cache layer:
    raw-points requests hash the points they carry; workload requests
    are materialised locally (deterministic, and memoised per spec) so
    a workload request and a raw-points request for the same
    coordinates route to the same shard and share one cache entry
    fleet-wide.
    """

    def __init__(
        self,
        addresses: dict[str, tuple[str, int]],
        vnodes: int = 64,
        replication: int = 2,
        timeout: float = 300.0,
    ):
        """A router over a fixed initial shard map (growable later)."""
        if not addresses:
            raise ValueError("a ShardRouter needs at least one shard")
        self._addresses = {
            sid: (host, int(port)) for sid, (host, port) in addresses.items()
        }
        self.ring = HashRing(
            self._addresses, vnodes=vnodes, replication=replication
        )
        self._timeout = timeout
        self._clients: dict[str, ServiceClient] = {}
        self._key_memo: dict[str, str] = {}
        self.routed = 0
        self.failovers = 0
        self.rebalances = 0
        self._per_shard: dict[str, dict[str, int]] = {
            sid: self._fresh_shard_stats() for sid in self._addresses
        }

    @staticmethod
    def _fresh_shard_stats() -> dict[str, int]:
        return {"requests": 0, "hits": 0, "misses": 0, "failovers": 0}

    # -- ring membership ----------------------------------------------

    def add_shard(self, shard_id: str, host: str, port: int) -> None:
        """Grow the fleet: place a new shard on the live ring."""
        self.ring.add(shard_id)
        self._addresses[shard_id] = (host, int(port))
        self._per_shard.setdefault(shard_id, self._fresh_shard_stats())
        self.rebalances += 1
        obs.add("service.shard.rebalance.total")

    def remove_shard(self, shard_id: str) -> None:
        """Shrink the fleet: drop a shard from the live ring."""
        self.ring.remove(shard_id)
        self._addresses.pop(shard_id, None)
        self._drop_client(shard_id)
        self.rebalances += 1
        obs.add("service.shard.rebalance.total")

    # -- connections --------------------------------------------------

    def _client(self, shard_id: str) -> ServiceClient:
        client = self._clients.get(shard_id)
        if client is None:
            host, port = self._addresses[shard_id]
            client = ServiceClient(host=host, port=port, timeout=self._timeout)
            self._clients[shard_id] = client
        return client

    def _drop_client(self, shard_id: str) -> None:
        client = self._clients.pop(shard_id, None)
        if client is not None:
            try:
                client.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        """Close every open shard connection (idempotent)."""
        for shard_id in list(self._clients):
            self._drop_client(shard_id)

    def __enter__(self) -> "ShardRouter":
        """Context-manager entry: the router itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close all shard connections on context exit."""
        self.close()

    # -- routing ------------------------------------------------------

    def routing_key(
        self,
        points=None,
        workload=None,
        source: int = 0,
        builder: str = "polar-grid",
        params: dict | None = None,
    ) -> str:
        """The cache key this request will occupy, computed client-side.

        Workload specs are materialised locally to hash the exact
        coordinates; the digest is memoised per (spec, source, builder,
        params) so a closed-loop client pays the generation once.
        """
        params = dict(params or {})
        if (points is None) == (workload is None):
            raise ValueError("need exactly one of points= or workload=")
        if points is not None:
            return canonical_key(points, source, builder, params)
        if isinstance(workload, WorkloadSpec):
            spec = workload
        else:
            spec = WorkloadSpec(**dict(workload))
        memo = json.dumps(
            [workload_to_payload(spec), int(source), builder, params],
            sort_keys=True,
        )
        key = self._key_memo.get(memo)
        if key is None:
            key = canonical_key(spec.materialize(), source, builder, params)
            self._key_memo[memo] = key
        return key

    def build(
        self,
        points=None,
        workload=None,
        source: int = 0,
        builder: str = "polar-grid",
        params: dict | None = None,
        deadline: float | None = None,
        include_tree: bool = False,
    ) -> dict:
        """Route one build to its primary shard, failing over if dead.

        Same signature and reply dict as
        :meth:`~repro.service.client.ServiceClient.build`, plus a
        ``shard`` field naming the shard that answered.

        :raises NoShardAvailable: the whole preference list is dead.
        :raises ServiceClientError: a live shard answered with a
            structured error (never retried on a replica).
        """
        key = self.routing_key(
            points=points,
            workload=workload,
            source=source,
            builder=builder,
            params=params,
        )
        order = self.ring.preference(key)
        last: ServiceUnavailable | None = None
        for attempt, shard_id in enumerate(order):
            try:
                client = self._client(shard_id)
                reply = client.build(
                    points=points,
                    workload=workload,
                    source=source,
                    builder=builder,
                    params=params,
                    deadline=deadline,
                    include_tree=include_tree,
                )
            except ServiceUnavailable as exc:
                self._drop_client(shard_id)
                self.failovers += 1
                self._per_shard[shard_id]["failovers"] += 1
                obs.add("service.shard.failover.total")
                last = exc
                continue
            self.routed += 1
            obs.add("service.shard.route.total")
            stats = self._per_shard[shard_id]
            stats["requests"] += 1
            if reply.get("cached") or reply.get("coalesced"):
                stats["hits"] += 1
                obs.add(f"service.shard.{shard_id}.hit")
            else:
                stats["misses"] += 1
                obs.add(f"service.shard.{shard_id}.miss")
            reply["shard"] = shard_id
            if attempt:
                reply["failovers"] = attempt
            return reply
        raise NoShardAvailable(key, order) from last

    def shard_stats(self, shard_id: str) -> dict:
        """One live shard's own ``stats`` response (service + cache)."""
        return self._client(shard_id).stats()

    def stats(self) -> dict:
        """Router-side counters: totals plus per-shard hit/miss."""
        return {
            "routed": self.routed,
            "failovers": self.failovers,
            "rebalances": self.rebalances,
            "shards": {
                sid: dict(counts) for sid, counts in self._per_shard.items()
            },
        }


def fleet_key_for_shard(
    ring: HashRing,
    target: str,
    n: int = 500,
    builder: str = "polar-grid",
    params: dict | None = None,
    source: int = 0,
    max_seed: int = 10_000,
) -> WorkloadSpec:
    """A workload spec whose cache key's *primary* is ``target``.

    Test/bench helper: scans unit-disk seeds until one hashes onto the
    requested shard — with uniform key placement the expected number of
    tries is the shard count. Deterministic for a given ring.

    :raises RuntimeError: no seed under ``max_seed`` landed on
        ``target`` (practically impossible unless the shard owns almost
        nothing).
    """
    params = dict(params or {})
    for seed in range(max_seed):
        spec = WorkloadSpec(kind="unit-disk", n=n, seed=seed)
        key = canonical_key(
            np.asarray(spec.materialize(), dtype=np.float64),
            source,
            builder,
            params,
        )
        if ring.primary(key) == target:
            return spec
    raise RuntimeError(
        f"no unit-disk seed < {max_seed} routed to shard {target!r}"
    )
