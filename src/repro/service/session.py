"""First-class multicast-group sessions for the tree-build service.

Two views of one admitted group:

* :class:`GroupSession` — the **server-side** record the
  :class:`~repro.service.core.TreeBuildService` keeps per live group:
  which population hosts belong to it, the content address of its
  tree, the usage vector it reserved, and the budget receipt.
* :class:`SessionHandle` — the **client-side** handle
  :meth:`~repro.service.client.ServiceClient.admit` returns: the
  group id, the spec that admitted it, the live content key (updated
  by ``update``), and the receipt summary.  Handles are the 2.x way to
  address session-owned state — passing raw group-id strings or raw
  keys for session state still works but earns a
  ``DeprecationWarning`` (see docs/API.md, "Migrating to session
  handles").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.packing.allocator import BudgetReceipt

__all__ = ["GroupSession", "SessionHandle"]


@dataclass
class GroupSession:
    """Server-side record of one admitted group.

    ``members`` / ``source`` are *population* indices; ``usage`` is the
    population-shaped out-degree vector this session holds reserved in
    the :class:`~repro.packing.allocator.DegreeBudgetAllocator`.
    """

    group_id: str
    members: np.ndarray
    source: int
    builder: str
    params: dict
    key: str
    usage: np.ndarray
    radius: float
    receipt: BudgetReceipt
    admitted_at: float = field(default_factory=time.monotonic)

    @property
    def size(self) -> int:
        """Number of member hosts in the group."""
        return int(self.members.size)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (the ``sessions`` op / admit wire reply)."""
        return {
            "group": self.group_id,
            "size": self.size,
            "members": [int(m) for m in self.members],
            "source": int(self.source),
            "builder": self.builder,
            "key": self.key,
            "radius": float(self.radius),
            "slots": int(self.usage.sum()),
            "receipt": self.receipt.to_dict(),
        }


@dataclass
class SessionHandle:
    """Client-side handle for an admitted group session.

    ``spec`` records what was sent to ``admit`` (members, source,
    builder, params); ``key`` is the session tree's current content
    address and is re-pointed when the handle is passed to ``update``.
    ``live`` flips to ``False`` after ``evict``.
    """

    group_id: str
    spec: dict
    key: str
    receipt: dict
    radius: float = 0.0
    live: bool = True

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready handle (inverse of :meth:`from_dict`)."""
        return {
            "group": self.group_id,
            "spec": dict(self.spec),
            "key": self.key,
            "receipt": dict(self.receipt),
            "radius": float(self.radius),
            "live": self.live,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> SessionHandle:
        """Rebuild a handle from its :meth:`to_dict` payload."""
        return cls(
            group_id=payload["group"],
            spec=dict(payload.get("spec", {})),
            key=payload["key"],
            receipt=dict(payload.get("receipt", {})),
            radius=float(payload.get("radius", 0.0)),
            live=bool(payload.get("live", True)),
        )
