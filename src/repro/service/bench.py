"""Closed-loop latency benchmark for the build service.

Drives a real :class:`~repro.service.server.BackgroundServer` over TCP
with :class:`~repro.service.client.ServiceClient` connections — the
full stack, wire protocol included — through four phases:

1. **cold** — a fresh workload key: the request pays for the build;
2. **warm** — the same request repeated: every reply must come from the
   content-addressed cache, and the median warm latency versus the cold
   build is the headline ``speedup``;
3. **coalesce** — N client threads fire the *same fresh* request
   concurrently; the service's build counter must advance by exactly 1
   (everyone else joins the in-flight build or hits the cache);
4. **oracle** — one ``include_tree`` response is reconstructed and
   pushed through :func:`repro.analysis.oracle.check_tree`, proving the
   wire format round-trips a structurally valid tree.

``python -m repro bench-serve`` (or ``tools/bench_serve.py``) runs it
and writes the report to ``BENCH_serve.json``.
"""

from __future__ import annotations

import statistics
import threading
import time

__all__ = ["run_bench"]


def _timed(fn):
    """``(seconds, result)`` of one call."""
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def run_bench(
    n: int = 20_000,
    builder: str = "polar-grid",
    max_out_degree: int = 6,
    warm_requests: int = 20,
    clients: int = 8,
    seed: int = 0,
    log=None,
) -> dict:
    """Run the four-phase closed-loop benchmark; returns the report dict.

    :param n: workload size (nodes per requested tree).
    :param warm_requests: repeats in the cache-hit phase.
    :param clients: concurrent connections in the coalescing phase.
    :param log: optional ``print``-like progress sink.
    """
    from repro.analysis.oracle import check_tree
    from repro.service.client import ServiceClient
    from repro.service.server import BackgroundServer

    say = log or (lambda *_: None)
    params = {"max_out_degree": max_out_degree}

    def workload(offset: int) -> dict:
        return {"kind": "unit-disk", "n": n, "seed": seed + offset}

    with BackgroundServer(max_workers=max(2, clients)) as server:
        client = ServiceClient(port=server.port)
        try:
            # Phase 1: cold build.
            cold_seconds, cold = _timed(
                lambda: client.build(
                    workload=workload(0), builder=builder, params=params
                )
            )
            assert not cold["cached"] and not cold["coalesced"]
            say(f"cold: {cold_seconds:.4f}s (build {cold['build_seconds']:.4f}s)")

            # Phase 2: warm cache hits.
            warm_samples = []
            for _ in range(warm_requests):
                seconds, reply = _timed(
                    lambda: client.build(
                        workload=workload(0), builder=builder, params=params
                    )
                )
                assert reply["cached"], "warm request must hit the cache"
                warm_samples.append(seconds)
            warm_median = statistics.median(warm_samples)
            speedup = cold_seconds / warm_median
            say(f"warm: median {warm_median:.6f}s over {warm_requests} "
                f"requests -> speedup {speedup:.1f}x")

            # Phase 3: N concurrent identical requests, one build.
            builds_before = server.service.builds
            replies: list[dict] = []
            errors: list[BaseException] = []
            barrier = threading.Barrier(clients)

            def fire():
                try:
                    with ServiceClient(port=server.port) as c:
                        barrier.wait(timeout=30)
                        replies.append(
                            c.build(
                                workload=workload(1),
                                builder=builder,
                                params=params,
                            )
                        )
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            if errors:
                raise errors[0]
            builds_delta = server.service.builds - builds_before
            coalesced = sum(1 for r in replies if r["coalesced"])
            cached = sum(1 for r in replies if r["cached"])
            say(f"coalesce: {clients} concurrent clients -> "
                f"{builds_delta} build(s), {coalesced} coalesced, "
                f"{cached} cache hits")

            # Phase 4: oracle-check a reconstructed response.
            reply, tree = client.build_tree(
                workload=workload(0), builder=builder, params=params
            )
            oracle = check_tree(tree, d_max=max_out_degree)
            say(f"oracle: ok={oracle.ok}")

            stats = client.stats()
        finally:
            client.close()

    return {
        "benchmark": "repro.service closed-loop",
        "workload": {"kind": "unit-disk", "n": n, "seed": seed},
        "builder": builder,
        "max_out_degree": max_out_degree,
        "cold_seconds": cold_seconds,
        "cold_build_seconds": cold["build_seconds"],
        "warm_requests": warm_requests,
        "warm_seconds_median": warm_median,
        "warm_seconds_max": max(warm_samples),
        "speedup": speedup,
        "coalesce": {
            "clients": clients,
            "builds": builds_delta,
            "coalesced_replies": coalesced,
            "cached_replies": cached,
        },
        "oracle_ok": bool(oracle.ok),
        "service_stats": stats,
    }
