"""Closed-loop latency benchmark for the build service.

Drives a real :class:`~repro.service.server.BackgroundServer` over TCP
with :class:`~repro.service.client.ServiceClient` connections — the
full stack, wire protocol included — through four phases:

1. **cold** — a fresh workload key: the request pays for the build;
2. **warm** — the same request repeated: every reply must come from the
   content-addressed cache, and the median warm latency versus the cold
   build is the headline ``speedup``;
3. **coalesce** — N client threads fire the *same fresh* request
   concurrently; the service's build counter must advance by exactly 1
   (everyone else joins the in-flight build or hits the cache);
4. **oracle** — one ``include_tree`` response is reconstructed and
   pushed through :func:`repro.analysis.oracle.check_tree`, proving the
   wire format round-trips a structurally valid tree.

``python -m repro bench-serve`` (or ``tools/bench_serve.py``) runs it
and writes the report to ``BENCH_serve.json``.
"""

from __future__ import annotations

import statistics
import threading
import time

__all__ = ["run_bench", "run_fleet_bench"]


def _timed(fn):
    """``(seconds, result)`` of one call."""
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def run_bench(
    n: int = 20_000,
    builder: str = "polar-grid",
    max_out_degree: int = 6,
    warm_requests: int = 20,
    clients: int = 8,
    seed: int = 0,
    log=None,
) -> dict:
    """Run the four-phase closed-loop benchmark; returns the report dict.

    :param n: workload size (nodes per requested tree).
    :param warm_requests: repeats in the cache-hit phase.
    :param clients: concurrent connections in the coalescing phase.
    :param log: optional ``print``-like progress sink.
    """
    from repro.analysis.oracle import check_tree
    from repro.service.client import ServiceClient
    from repro.service.server import BackgroundServer

    say = log or (lambda *_: None)
    params = {"max_out_degree": max_out_degree}

    def workload(offset: int) -> dict:
        return {"kind": "unit-disk", "n": n, "seed": seed + offset}

    with BackgroundServer(max_workers=max(2, clients)) as server:
        client = ServiceClient(port=server.port)
        try:
            # Phase 1: cold build.
            cold_seconds, cold = _timed(
                lambda: client.build(
                    workload=workload(0), builder=builder, params=params
                )
            )
            assert not cold["cached"] and not cold["coalesced"]
            say(f"cold: {cold_seconds:.4f}s (build {cold['build_seconds']:.4f}s)")

            # Phase 2: warm cache hits.
            warm_samples = []
            for _ in range(warm_requests):
                seconds, reply = _timed(
                    lambda: client.build(
                        workload=workload(0), builder=builder, params=params
                    )
                )
                assert reply["cached"], "warm request must hit the cache"
                warm_samples.append(seconds)
            warm_median = statistics.median(warm_samples)
            speedup = cold_seconds / warm_median
            say(f"warm: median {warm_median:.6f}s over {warm_requests} "
                f"requests -> speedup {speedup:.1f}x")

            # Phase 3: N concurrent identical requests, one build.
            builds_before = server.service.builds
            replies: list[dict] = []
            errors: list[BaseException] = []
            barrier = threading.Barrier(clients)

            def fire():
                try:
                    with ServiceClient(port=server.port) as c:
                        barrier.wait(timeout=30)
                        replies.append(
                            c.build(
                                workload=workload(1),
                                builder=builder,
                                params=params,
                            )
                        )
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            if errors:
                raise errors[0]
            builds_delta = server.service.builds - builds_before
            coalesced = sum(1 for r in replies if r["coalesced"])
            cached = sum(1 for r in replies if r["cached"])
            say(f"coalesce: {clients} concurrent clients -> "
                f"{builds_delta} build(s), {coalesced} coalesced, "
                f"{cached} cache hits")

            # Phase 4: oracle-check a reconstructed response.
            reply, tree = client.build_tree(
                workload=workload(0), builder=builder, params=params
            )
            oracle = check_tree(tree, d_max=max_out_degree)
            say(f"oracle: ok={oracle.ok}")

            stats = client.stats()
        finally:
            client.close()

    return {
        "benchmark": "repro.service closed-loop",
        "workload": {"kind": "unit-disk", "n": n, "seed": seed},
        "builder": builder,
        "max_out_degree": max_out_degree,
        "cold_seconds": cold_seconds,
        "cold_build_seconds": cold["build_seconds"],
        "warm_requests": warm_requests,
        "warm_seconds_median": warm_median,
        "warm_seconds_max": max(warm_samples),
        "speedup": speedup,
        "coalesce": {
            "clients": clients,
            "builds": builds_delta,
            "coalesced_replies": coalesced,
            "cached_replies": cached,
        },
        "oracle_ok": bool(oracle.ok),
        "service_stats": stats,
    }


def _fleet_phase_hot(fleet, clients, workload, builder, params):
    """All clients hammer one fresh key at once; returns the phase dict."""
    builds_before = fleet.total_builds()
    barrier = threading.Barrier(clients)
    replies: list[dict] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def fire():
        try:
            with fleet.router() as router:
                barrier.wait(timeout=30)
                reply = router.build(
                    workload=workload, builder=builder, params=params
                )
                with lock:
                    replies.append(reply)
        except Exception as exc:  # noqa: BLE001 - collected for the gate
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=fire) for _ in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    return {
        "clients": clients,
        "builds": fleet.total_builds() - builds_before,
        "absorbed": sum(
            1 for r in replies if r.get("cached") or r.get("coalesced")
        ),
        "errors": len(errors),
        "error_samples": [repr(e) for e in errors[:3]],
    }


def _fleet_phase_closed_loop(
    fleet, clients, requests_per_client, workloads, builder, params
):
    """Closed-loop mixed traffic over a working set; returns the dict."""
    builds_before = fleet.total_builds()
    barrier = threading.Barrier(clients)
    samples: list[tuple[float, dict]] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def drive(client_index: int):
        try:
            with fleet.router() as router:
                barrier.wait(timeout=30)
                for i in range(requests_per_client):
                    workload = workloads[(client_index + i) % len(workloads)]
                    seconds, reply = _timed(
                        lambda w=workload: router.build(
                            workload=w, builder=builder, params=params
                        )
                    )
                    with lock:
                        samples.append((seconds, reply))
        except Exception as exc:  # noqa: BLE001 - collected for the gate
            with lock:
                errors.append(exc)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=drive, args=(i,)) for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    wall = time.perf_counter() - started

    total = len(samples)
    warm = [s for s, r in samples if r.get("cached")]
    absorbed = sum(
        1 for _, r in samples if r.get("cached") or r.get("coalesced")
    )
    return {
        "clients": clients,
        "requests": total,
        "wall_seconds": wall,
        "throughput_rps": total / wall if wall > 0 else 0.0,
        "builds": fleet.total_builds() - builds_before,
        "distinct_keys": len(workloads),
        "coalesce_ratio": absorbed / total if total else 0.0,
        "warm_hit_seconds_median": (
            statistics.median(warm) if warm else None
        ),
        "warm_hits": len(warm),
        "errors": len(errors),
        "error_samples": [repr(e) for e in errors[:3]],
    }


def run_fleet_bench(
    shard_counts=(1, 2, 4),
    n: int = 5_000,
    builder: str = "polar-grid",
    max_out_degree: int = 6,
    clients: int = 4,
    requests_per_client: int = 25,
    distinct_keys: int = 5,
    replication: int = 2,
    vnodes: int = 64,
    seed: int = 0,
    log=None,
) -> dict:
    """Scaling-curve benchmark: the closed loop against 1/2/4-shard fleets.

    For each shard count a fresh thread-mode
    :class:`~repro.service.fleet.ShardFleet` serves two phases:

    1. **hot** — every client fires the *same fresh* key concurrently
       through its own :class:`~repro.service.shard.ShardRouter`; the
       fleet-wide build delta must be exactly 1 (shard-aware
       coalescing: deterministic routing sends the hot key to one
       shard, whose in-process coalescing collapses the stampede);
    2. **closed loop** — each client issues ``requests_per_client``
       requests round-robin over ``distinct_keys`` workloads; the
       fleet-wide build delta must equal ``distinct_keys`` (every key
       built exactly once, everything else cache/coalesce), and the
       warm-hit latency and throughput land in the report.

    One ``include_tree`` response per fleet is reconstructed and
    oracle-checked. Returns the report dict written to
    ``BENCH_fleet.json`` by ``python -m repro bench-fleet``.
    """
    import numpy as np

    from repro.analysis.oracle import check_tree
    from repro.core.tree import MulticastTree
    from repro.service.fleet import ShardFleet

    say = log or (lambda *_: None)
    params = {"max_out_degree": max_out_degree}
    curve = []
    for shards in shard_counts:
        say(f"--- fleet of {shards} shard(s) ---")
        with ShardFleet(
            shards=shards,
            mode="thread",
            replication=replication,
            vnodes=vnodes,
            max_workers=max(2, clients),
        ) as fleet:
            hot = _fleet_phase_hot(
                fleet,
                clients,
                {"kind": "unit-disk", "n": n, "seed": seed + 1_000 + shards},
                builder,
                params,
            )
            say(
                f"hot: {hot['clients']} clients -> {hot['builds']} build(s), "
                f"{hot['absorbed']} absorbed, {hot['errors']} errors"
            )
            workloads = [
                {"kind": "unit-disk", "n": n, "seed": seed + j}
                for j in range(distinct_keys)
            ]
            loop = _fleet_phase_closed_loop(
                fleet, clients, requests_per_client, workloads, builder, params
            )
            say(
                f"loop: {loop['requests']} requests -> {loop['builds']} "
                f"builds, coalesce ratio {loop['coalesce_ratio']:.3f}, "
                f"{loop['throughput_rps']:.0f} req/s"
            )
            with fleet.router() as router:
                reply = router.build(
                    workload=workloads[0],
                    builder=builder,
                    params=params,
                    include_tree=True,
                )
            tree = MulticastTree(
                np.asarray(reply["points"], dtype=np.float64),
                np.asarray(reply["parent"], dtype=np.int64),
                reply["root"],
            ).validate()
            oracle_ok = bool(check_tree(tree, d_max=max_out_degree).ok)
            say(f"oracle: ok={oracle_ok}")
            per_shard = {
                sid: (
                    None
                    if stats is None
                    else {
                        "requests": stats["requests"],
                        "builds": stats["builds"],
                        "cache_hits": stats["cache"]["hits"],
                        "cache_misses": stats["cache"]["misses"],
                    }
                )
                for sid, stats in fleet.fleet_stats().items()
            }
        curve.append(
            {
                "shards": shards,
                "hot": hot,
                "closed_loop": loop,
                "oracle_ok": oracle_ok,
                "per_shard": per_shard,
            }
        )
    return {
        "benchmark": "repro.service sharded-fleet closed-loop",
        "workload": {"kind": "unit-disk", "n": n, "seed": seed},
        "builder": builder,
        "max_out_degree": max_out_degree,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "distinct_keys": distinct_keys,
        "replication": replication,
        "vnodes": vnodes,
        "curve": curve,
    }
