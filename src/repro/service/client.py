"""Synchronous client for the build service's JSON-lines TCP protocol.

:class:`ServiceClient` is a thin blocking wrapper — one socket, one
request/response line pair per call — aimed at scripts, tests, and the
closed-loop benchmark. Failures come back as :class:`ServiceClientError`
carrying the server's structured error object (``error["type"]`` is the
exception class name: ``"ServiceOverload"``, ``"DeadlineExceeded"``,
``"UnknownBuilderError"``, ...).

>>> # doctest: +SKIP
>>> from repro.service import BackgroundServer, ServiceClient
>>> with BackgroundServer() as server:
...     with ServiceClient(port=server.port) as client:
...         reply = client.build(
...             workload={"kind": "unit-disk", "n": 500, "seed": 1},
...             params={"max_out_degree": 6},
...         )
...         reply["cached"]
False
"""

from __future__ import annotations

import json
import socket

import numpy as np

from repro.core.tree import MulticastTree
from repro.service.core import WorkloadSpec, workload_to_payload
from repro.service.server import DEFAULT_PORT

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """A structured error response from the service.

    ``error`` is the server's error object; ``error_type`` its
    ``"type"`` field, for branching without digging into the dict.
    """

    def __init__(self, error: dict):
        """Wrap the server's error object."""
        self.error = dict(error)
        self.error_type = self.error.get("type", "Error")
        super().__init__(
            f"{self.error_type}: {self.error.get('message', 'request failed')}"
        )


class ServiceClient:
    """Blocking JSON-lines client for one service connection.

    :param host: server address (default loopback).
    :param port: server port (default :data:`~repro.service.server
        .DEFAULT_PORT`).
    :param timeout: socket timeout in seconds for connect and replies —
        a *transport* bound, distinct from the service-side build
        deadline passed per request.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
    ):
        """Connect immediately; raises ``OSError`` when nothing listens."""
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection on context exit."""
        self.close()

    def _call(self, payload: dict) -> dict:
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        reply = json.loads(line)
        if not reply.get("ok", False):
            raise ServiceClientError(reply.get("error", {}))
        return reply

    # -- ops ---------------------------------------------------------

    def build(
        self,
        points=None,
        workload=None,
        source: int = 0,
        builder: str = "polar-grid",
        params: dict | None = None,
        deadline: float | None = None,
        include_tree: bool = False,
    ) -> dict:
        """Request one tree build; returns the response summary dict.

        Exactly one of ``points`` (array-like) / ``workload``
        (:class:`~repro.service.core.WorkloadSpec` or plain dict) must
        be given — the same contract as
        :class:`~repro.service.core.BuildRequest`.
        """
        payload: dict = {
            "op": "build",
            "source": source,
            "builder": builder,
            "params": dict(params or {}),
        }
        if points is not None:
            payload["points"] = np.asarray(points, dtype=np.float64).tolist()
        if workload is not None:
            if isinstance(workload, WorkloadSpec):
                workload = workload_to_payload(workload)
            payload["workload"] = dict(workload)
        if deadline is not None:
            payload["deadline"] = deadline
        if include_tree:
            payload["include_tree"] = True
        return self._call(payload)

    def build_tree(self, **kwargs) -> tuple[dict, MulticastTree]:
        """Like :meth:`build` but reconstructs the tree client-side.

        Forces ``include_tree`` and returns ``(reply, tree)``; the tree
        is re-validated on the way in, so a corrupted wire payload
        fails loudly here rather than downstream.
        """
        kwargs["include_tree"] = True
        reply = self.build(**kwargs)
        tree = MulticastTree(
            np.asarray(reply["points"], dtype=np.float64),
            np.asarray(reply["parent"], dtype=np.int64),
            reply["root"],
        ).validate()
        return reply, tree

    def stats(self) -> dict:
        """Service + cache counters."""
        return self._call({"op": "stats"})["stats"]

    def builders(self) -> list[dict]:
        """Registry introspection: every registered builder's contract."""
        return self._call({"op": "builders"})["builders"]

    def ping(self) -> bool:
        """Liveness check."""
        return self._call({"op": "ping"})["ok"]

    def shutdown(self) -> None:
        """Ask the server to stop (after acknowledging)."""
        self._call({"op": "shutdown"})
