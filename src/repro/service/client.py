"""Synchronous client for the build service's JSON-lines TCP protocol.

:class:`ServiceClient` is a thin blocking wrapper — one socket, one
request/response line pair per call — aimed at scripts, tests, and the
closed-loop benchmark. Failures split into two structured families:

* :class:`ServiceClientError` — the server is alive and answered with a
  structured error object (``error["type"]`` is the exception class
  name: ``"ServiceOverload"``, ``"DeadlineExceeded"``,
  ``"UnknownBuilderError"``, ...);
* :class:`ServiceUnavailable` — the server cannot be reached at all
  (refused connection, reset, closed socket), carrying ``host``/``port``
  so a shard router can fail over to a replica.

>>> # doctest: +SKIP
>>> from repro.service import BackgroundServer, ServiceClient
>>> with BackgroundServer() as server:
...     with ServiceClient(port=server.port) as client:
...         reply = client.build(
...             workload={"kind": "unit-disk", "n": 500, "seed": 1},
...             params={"max_out_degree": 6},
...         )
...         reply["cached"]
False
"""

from __future__ import annotations

import json
import socket
import warnings

import numpy as np

from repro.core.tree import MulticastTree
from repro.service.core import WorkloadSpec, workload_to_payload
from repro.service.server import DEFAULT_PORT
from repro.service.session import SessionHandle

__all__ = ["ServiceClient", "ServiceClientError", "ServiceUnavailable"]


class ServiceUnavailable(ConnectionError):
    """The service at ``host:port`` cannot be reached (dead shard).

    Raised instead of the transport's bare ``ConnectionRefusedError`` /
    ``ConnectionResetError`` / closed-socket errors, so callers — the
    shard router above all — can distinguish *dead server* (retry on a
    replica) from *protocol error* (:class:`ServiceClientError`: the
    server is alive and said no). Carries ``host`` and ``port``; the
    original transport failure rides along as ``__cause__``.

    Subclasses ``ConnectionError``, so pre-existing ``except
    ConnectionError`` handlers keep working.
    """

    def __init__(self, host: str, port: int, reason: str):
        """Record which endpoint failed and why."""
        self.host = host
        self.port = int(port)
        super().__init__(
            f"service at {host}:{port} unavailable: {reason}"
        )


class ServiceClientError(RuntimeError):
    """A structured error response from the service.

    ``error`` is the server's error object; ``error_type`` its
    ``"type"`` field, for branching without digging into the dict;
    ``fields`` the machine-readable detail sub-object of the uniform
    2.x encoding (``{"error": {"type", "message", "fields"}}`` —
    empty for pre-2.x servers, whose flat extras still appear in
    ``error`` directly).
    """

    def __init__(self, error: dict):
        """Wrap the server's error object."""
        self.error = dict(error)
        self.error_type = self.error.get("type", "Error")
        self.fields = dict(self.error.get("fields", {}))
        super().__init__(
            f"{self.error_type}: {self.error.get('message', 'request failed')}"
        )


class ServiceClient:
    """Blocking JSON-lines client for one service connection.

    :param host: server address (default loopback).
    :param port: server port (default :data:`~repro.service.server
        .DEFAULT_PORT`).
    :param timeout: socket timeout in seconds for connect and replies —
        a *transport* bound, distinct from the service-side build
        deadline passed per request.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
    ):
        """Connect immediately.

        :raises ServiceUnavailable: when nothing listens at
            ``host:port`` (connection refused / timed out).
        """
        self.host = host
        self.port = int(port)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ServiceUnavailable(host, port, f"connect failed: {exc}") from exc
        self._file = self._sock.makefile("rwb")
        self._sessions: dict[str, SessionHandle] = {}

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection on context exit."""
        self.close()

    def _call(self, payload: dict) -> dict:
        try:
            self._file.write(json.dumps(payload).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:  # reset / broken pipe / timeout mid-request
            raise ServiceUnavailable(
                self.host, self.port, f"request failed: {exc}"
            ) from exc
        if not line:
            raise ServiceUnavailable(
                self.host, self.port, "server closed the connection"
            )
        reply = json.loads(line)
        if not reply.get("ok", False):
            raise ServiceClientError(reply.get("error", {}))
        return reply

    # -- ops ---------------------------------------------------------

    def build(
        self,
        points=None,
        workload=None,
        source: int = 0,
        builder: str = "polar-grid",
        params: dict | None = None,
        deadline: float | None = None,
        include_tree: bool = False,
    ) -> dict:
        """Request one tree build; returns the response summary dict.

        Exactly one of ``points`` (array-like) / ``workload``
        (:class:`~repro.service.core.WorkloadSpec` or plain dict) must
        be given — the same contract as
        :class:`~repro.service.core.BuildRequest`. Passing a
        :class:`~repro.service.session.SessionHandle` as the first
        argument instead fetches that admitted group's tree (a warm
        cache hit server-side); raw sessionless specs remain the
        canonical path and never warn.
        """
        if isinstance(points, SessionHandle):
            payload = {"op": "build", "session": points.group_id}
            if deadline is not None:
                payload["deadline"] = deadline
            if include_tree:
                payload["include_tree"] = True
            return self._call(payload)
        payload: dict = {
            "op": "build",
            "source": source,
            "builder": builder,
            "params": dict(params or {}),
        }
        if points is not None:
            payload["points"] = np.asarray(points, dtype=np.float64).tolist()
        if workload is not None:
            if isinstance(workload, WorkloadSpec):
                workload = workload_to_payload(workload)
            payload["workload"] = dict(workload)
        if deadline is not None:
            payload["deadline"] = deadline
        if include_tree:
            payload["include_tree"] = True
        return self._call(payload)

    def build_tree(self, **kwargs) -> tuple[dict, MulticastTree]:
        """Like :meth:`build` but reconstructs the tree client-side.

        Forces ``include_tree`` and returns ``(reply, tree)``; the tree
        is re-validated on the way in, so a corrupted wire payload
        fails loudly here rather than downstream.
        """
        kwargs["include_tree"] = True
        reply = self.build(**kwargs)
        tree = MulticastTree(
            np.asarray(reply["points"], dtype=np.float64),
            np.asarray(reply["parent"], dtype=np.int64),
            reply["root"],
        ).validate()
        return reply, tree

    def update(
        self,
        key: str | SessionHandle,
        events: list[dict],
        deadline: float | None = None,
        include_tree: bool = False,
    ) -> dict:
        """Mutate a warm cache entry in place via the incremental path.

        ``events`` is a list of ``{"action": "join", "coords": [...],
        "name"?}`` / ``{"action": "leave", "name"?|"index"?}`` objects;
        the reply carries the mutated tree's new content address under
        ``"key"`` (the submitted key survives as ``"old_key"``) plus the
        engine's per-op counters.

        ``key`` may be a :class:`~repro.service.session.SessionHandle`,
        whose ``key`` is then re-pointed to the mutated tree's new
        address. Addressing a session-owned entry by its raw key string
        still works but earns a ``DeprecationWarning`` — the handle is
        the 2.x way (sessionless raw keys stay canonical and silent).
        """
        handle = None
        if isinstance(key, SessionHandle):
            handle, key = key, key.key
        elif any(
            h.live and h.key == key for h in self._sessions.values()
        ):
            warnings.warn(
                "updating a session-owned entry by raw key is deprecated; "
                "pass the SessionHandle returned by admit()",
                DeprecationWarning,
                stacklevel=2,
            )
        payload: dict = {"op": "update", "key": key, "events": list(events)}
        if deadline is not None:
            payload["deadline"] = deadline
        if include_tree:
            payload["include_tree"] = True
        reply = self._call(payload)
        if handle is not None:
            handle.key = reply["key"]
        return reply

    # -- sessions ----------------------------------------------------

    def admit(
        self,
        group: str,
        members=None,
        source: int = 0,
        builder: str = "packed-polar-grid",
        params: dict | None = None,
        deadline: float | None = None,
    ) -> SessionHandle:
        """Admit one whole group; returns its first-class handle.

        ``members`` are indices into the *server's* shared host
        population (``None`` = every host), ``source`` the member that
        roots the tree. On success the returned
        :class:`~repro.service.session.SessionHandle` carries the
        group id, the admitted spec, the tree's content key, and the
        budget receipt. A group that does not fit raises
        :class:`ServiceClientError` with ``error_type ==
        "BudgetExhausted"`` and the gap detail in ``fields``.
        """
        payload: dict = {
            "op": "admit",
            "group": group,
            "source": source,
            "builder": builder,
            "params": dict(params or {}),
        }
        if members is not None:
            payload["members"] = [int(m) for m in members]
        if deadline is not None:
            payload["deadline"] = deadline
        reply = self._call(payload)
        sess = reply["session"]
        handle = SessionHandle(
            group_id=sess["group"],
            spec={
                "members": list(sess["members"]),
                "source": sess["source"],
                "builder": sess["builder"],
                "params": dict(params or {}),
            },
            key=sess["key"],
            receipt=dict(sess["receipt"]),
            radius=float(sess["radius"]),
        )
        self._sessions[handle.group_id] = handle
        return handle

    def evict(self, session: SessionHandle | str) -> dict:
        """End a live session, releasing its budget slots server-side.

        Pass the :class:`~repro.service.session.SessionHandle` returned
        by :meth:`admit`; a raw group-id string still works but earns a
        ``DeprecationWarning``. Returns the server's final session
        summary; the handle's ``live`` flag flips to ``False``.
        """
        if isinstance(session, SessionHandle):
            group = session.group_id
        else:
            warnings.warn(
                "passing a raw group id to evict() is deprecated; pass "
                "the SessionHandle returned by admit()",
                DeprecationWarning,
                stacklevel=2,
            )
            group = session
        reply = self._call({"op": "evict", "group": group})
        handle = self._sessions.pop(group, None)
        if handle is None and isinstance(session, SessionHandle):
            handle = session
        if handle is not None:
            handle.live = False
        return reply["session"]

    def sessions(self) -> list[dict]:
        """The server's live group sessions (JSON summaries)."""
        return self._call({"op": "sessions"})["sessions"]

    def stats(self) -> dict:
        """Service + cache counters."""
        return self._call({"op": "stats"})["stats"]

    def builders(self) -> list[dict]:
        """Registry introspection: every registered builder's contract."""
        return self._call({"op": "builders"})["builders"]

    def ping(self) -> bool:
        """Liveness check."""
        return self._call({"op": "ping"})["ok"]

    def shutdown(self) -> None:
        """Ask the server to stop (after acknowledging)."""
        self._call({"op": "shutdown"})
