"""Synchronous client for the build service's JSON-lines TCP protocol.

:class:`ServiceClient` is a thin blocking wrapper — one socket, one
request/response line pair per call — aimed at scripts, tests, and the
closed-loop benchmark. Failures split into two structured families:

* :class:`ServiceClientError` — the server is alive and answered with a
  structured error object (``error["type"]`` is the exception class
  name: ``"ServiceOverload"``, ``"DeadlineExceeded"``,
  ``"UnknownBuilderError"``, ...);
* :class:`ServiceUnavailable` — the server cannot be reached at all
  (refused connection, reset, closed socket), carrying ``host``/``port``
  so a shard router can fail over to a replica.

>>> # doctest: +SKIP
>>> from repro.service import BackgroundServer, ServiceClient
>>> with BackgroundServer() as server:
...     with ServiceClient(port=server.port) as client:
...         reply = client.build(
...             workload={"kind": "unit-disk", "n": 500, "seed": 1},
...             params={"max_out_degree": 6},
...         )
...         reply["cached"]
False
"""

from __future__ import annotations

import json
import socket

import numpy as np

from repro.core.tree import MulticastTree
from repro.service.core import WorkloadSpec, workload_to_payload
from repro.service.server import DEFAULT_PORT

__all__ = ["ServiceClient", "ServiceClientError", "ServiceUnavailable"]


class ServiceUnavailable(ConnectionError):
    """The service at ``host:port`` cannot be reached (dead shard).

    Raised instead of the transport's bare ``ConnectionRefusedError`` /
    ``ConnectionResetError`` / closed-socket errors, so callers — the
    shard router above all — can distinguish *dead server* (retry on a
    replica) from *protocol error* (:class:`ServiceClientError`: the
    server is alive and said no). Carries ``host`` and ``port``; the
    original transport failure rides along as ``__cause__``.

    Subclasses ``ConnectionError``, so pre-existing ``except
    ConnectionError`` handlers keep working.
    """

    def __init__(self, host: str, port: int, reason: str):
        """Record which endpoint failed and why."""
        self.host = host
        self.port = int(port)
        super().__init__(
            f"service at {host}:{port} unavailable: {reason}"
        )


class ServiceClientError(RuntimeError):
    """A structured error response from the service.

    ``error`` is the server's error object; ``error_type`` its
    ``"type"`` field, for branching without digging into the dict.
    """

    def __init__(self, error: dict):
        """Wrap the server's error object."""
        self.error = dict(error)
        self.error_type = self.error.get("type", "Error")
        super().__init__(
            f"{self.error_type}: {self.error.get('message', 'request failed')}"
        )


class ServiceClient:
    """Blocking JSON-lines client for one service connection.

    :param host: server address (default loopback).
    :param port: server port (default :data:`~repro.service.server
        .DEFAULT_PORT`).
    :param timeout: socket timeout in seconds for connect and replies —
        a *transport* bound, distinct from the service-side build
        deadline passed per request.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 300.0,
    ):
        """Connect immediately.

        :raises ServiceUnavailable: when nothing listens at
            ``host:port`` (connection refused / timed out).
        """
        self.host = host
        self.port = int(port)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ServiceUnavailable(host, port, f"connect failed: {exc}") from exc
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the connection on context exit."""
        self.close()

    def _call(self, payload: dict) -> dict:
        try:
            self._file.write(json.dumps(payload).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:  # reset / broken pipe / timeout mid-request
            raise ServiceUnavailable(
                self.host, self.port, f"request failed: {exc}"
            ) from exc
        if not line:
            raise ServiceUnavailable(
                self.host, self.port, "server closed the connection"
            )
        reply = json.loads(line)
        if not reply.get("ok", False):
            raise ServiceClientError(reply.get("error", {}))
        return reply

    # -- ops ---------------------------------------------------------

    def build(
        self,
        points=None,
        workload=None,
        source: int = 0,
        builder: str = "polar-grid",
        params: dict | None = None,
        deadline: float | None = None,
        include_tree: bool = False,
    ) -> dict:
        """Request one tree build; returns the response summary dict.

        Exactly one of ``points`` (array-like) / ``workload``
        (:class:`~repro.service.core.WorkloadSpec` or plain dict) must
        be given — the same contract as
        :class:`~repro.service.core.BuildRequest`.
        """
        payload: dict = {
            "op": "build",
            "source": source,
            "builder": builder,
            "params": dict(params or {}),
        }
        if points is not None:
            payload["points"] = np.asarray(points, dtype=np.float64).tolist()
        if workload is not None:
            if isinstance(workload, WorkloadSpec):
                workload = workload_to_payload(workload)
            payload["workload"] = dict(workload)
        if deadline is not None:
            payload["deadline"] = deadline
        if include_tree:
            payload["include_tree"] = True
        return self._call(payload)

    def build_tree(self, **kwargs) -> tuple[dict, MulticastTree]:
        """Like :meth:`build` but reconstructs the tree client-side.

        Forces ``include_tree`` and returns ``(reply, tree)``; the tree
        is re-validated on the way in, so a corrupted wire payload
        fails loudly here rather than downstream.
        """
        kwargs["include_tree"] = True
        reply = self.build(**kwargs)
        tree = MulticastTree(
            np.asarray(reply["points"], dtype=np.float64),
            np.asarray(reply["parent"], dtype=np.int64),
            reply["root"],
        ).validate()
        return reply, tree

    def update(
        self,
        key: str,
        events: list[dict],
        deadline: float | None = None,
        include_tree: bool = False,
    ) -> dict:
        """Mutate a warm cache entry in place via the incremental path.

        ``events`` is a list of ``{"action": "join", "coords": [...],
        "name"?}`` / ``{"action": "leave", "name"?|"index"?}`` objects;
        the reply carries the mutated tree's new content address under
        ``"key"`` (the submitted key survives as ``"old_key"``) plus the
        engine's per-op counters.
        """
        payload: dict = {"op": "update", "key": key, "events": list(events)}
        if deadline is not None:
            payload["deadline"] = deadline
        if include_tree:
            payload["include_tree"] = True
        return self._call(payload)

    def stats(self) -> dict:
        """Service + cache counters."""
        return self._call({"op": "stats"})["stats"]

    def builders(self) -> list[dict]:
        """Registry introspection: every registered builder's contract."""
        return self._call({"op": "builders"})["builders"]

    def ping(self) -> bool:
        """Liveness check."""
        return self._call({"op": "ping"})["ok"]

    def shutdown(self) -> None:
        """Ask the server to stop (after acknowledging)."""
        self._call({"op": "shutdown"})
