"""Content-addressed build cache: identical requests build once, ever.

A build is fully determined by ``(points, source, builder, params)`` —
every registered builder is deterministic given those inputs (the
randomised baselines take an explicit ``seed`` parameter, which is part
of ``params``). :func:`canonical_key` hashes exactly that tuple, so the
key is stable across processes, platforms, and sessions: the points are
canonicalised to contiguous float64 bytes (plus their shape, so a
transposed array cannot collide), and the params to sorted JSON.

:class:`BuildCache` maps keys to :class:`~repro.core.builder.BuildResult`
objects under a *byte* budget — entries are charged for their dominant
arrays (points + parent), so a handful of 5M-node trees cannot silently
pin gigabytes. Eviction is LRU. Evicted entries can optionally spill to
disk (``.npz`` tree + JSON metadata sidecar under ``results/cache/``);
a later miss on a spilled key reloads it instead of rebuilding.

Counters (all under ``service.cache.*``, visible via ``obs.snapshot()``
and the service's ``stats`` endpoint): ``hit``, ``miss``, ``eviction``,
``spill.write``, ``spill.read``.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.core.builder import BuildResult

__all__ = ["canonical_key", "BuildCache", "entry_nbytes"]

#: Fixed per-entry overhead charged on top of the array payloads
#: (dataclass, dict slots, key string). Small and deliberately rough.
ENTRY_OVERHEAD_BYTES = 1024


def _canonical_param(value):
    """A JSON-stable form of one parameter value.

    Arrays (per-node ``budgets``/``max_out_degree``) become lists;
    numpy scalars become native Python scalars; cost-model instances
    (:class:`repro.costmodel.CostModel`) become their canonical
    ``to_key()`` dicts, so two requests under different cost models are
    distinct cache entries and two equal instances collide; everything
    else must already be JSON-serialisable — a requirement of the
    normalized parameter vocabulary, enforced here with a clear error.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_canonical_param(v) for v in value]
    if value is not None and not isinstance(
        value, (str, int, float, bool, dict)
    ):
        from repro.costmodel import CostModel

        if isinstance(value, CostModel):
            return value.to_key()
    return value


def canonical_key(points, source: int, builder: str, params: dict) -> str:
    """SHA-256 content address of one build request.

    The digest covers the points' dtype-normalised bytes and shape, the
    source index, the builder name, and the params as sorted JSON —
    nothing else, so two requests that would produce the same tree get
    the same key no matter which client sent them or when.
    """
    pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    payload = json.dumps(
        {
            "source": int(source),
            "builder": builder,
            "params": {
                k: _canonical_param(v) for k, v in sorted(params.items())
            },
        },
        sort_keys=True,
    )
    digest = hashlib.sha256()
    digest.update(str(pts.shape).encode())
    digest.update(pts.tobytes())
    digest.update(payload.encode())
    return digest.hexdigest()


def entry_nbytes(result: BuildResult) -> int:
    """Bytes a cached result is charged for: its dominant arrays."""
    tree = result.tree
    return int(tree.points.nbytes + tree.parent.nbytes) + ENTRY_OVERHEAD_BYTES


# BuildResult fields that survive a disk spill round-trip (JSON-safe
# scalars). ``grid`` and ``representatives`` are working state of the
# polar-grid construction and are dropped on spill.
_META_FIELDS = (
    "rings",
    "core_delay",
    "upper_bound",
    "build_seconds",
    "representative_count",
    "builder",
)


class BuildCache:
    """Bounded LRU cache of build results, keyed by content address.

    :param max_bytes: byte budget for in-memory entries; inserting past
        it evicts least-recently-used entries first. ``0`` disables
        in-memory caching entirely (useful to exercise the spill path).
    :param spill_dir: directory for evicted entries (created lazily);
        ``None`` disables disk spill and evictions are final.

    Not thread-safe by itself — the service serialises cache access on
    the event loop.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024, spill_dir=None):
        """An empty cache with the given byte budget and spill target."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._entries: OrderedDict[str, BuildResult] = OrderedDict()
        self._nbytes: dict[str, int] = {}
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_writes = 0
        self.spill_reads = 0

    def __len__(self) -> int:
        """How many results are resident in memory."""
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` is resident in memory (spill not consulted)."""
        return key in self._entries

    def get(self, key: str) -> BuildResult | None:
        """The cached result for ``key``, or ``None``.

        A hit refreshes the entry's LRU position. On an in-memory miss
        the spill directory (when configured) is consulted before
        giving up; a spill hit is promoted back into memory.
        """
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            obs.add("service.cache.hit")
            return result
        result = self._load_spilled(key)
        if result is not None:
            self.hits += 1
            obs.add("service.cache.hit")
            self.put(key, result)
            return result
        self.misses += 1
        obs.add("service.cache.miss")
        return None

    def put(self, key: str, result: BuildResult) -> None:
        """Insert ``result`` under ``key``, evicting LRU entries to fit.

        An entry larger than the whole budget is not admitted to memory
        (it would only evict everything else); it still spills to disk
        when a spill directory is configured.
        """
        nbytes = entry_nbytes(result)
        if key in self._entries:
            self.current_bytes -= self._nbytes.pop(key)
            del self._entries[key]
        if nbytes > self.max_bytes:
            self._spill(key, result)
            return
        self._entries[key] = result
        self._nbytes[key] = nbytes
        self.current_bytes += nbytes
        while self.current_bytes > self.max_bytes and len(self._entries) > 1:
            self._evict_lru(exclude=key)

    def _evict_lru(self, exclude: str) -> None:
        for victim in self._entries:
            if victim != exclude:
                break
        else:  # pragma: no cover - loop guard keeps >= 2 entries
            return
        result = self._entries.pop(victim)
        self.current_bytes -= self._nbytes.pop(victim)
        self.evictions += 1
        obs.add("service.cache.eviction")
        self._spill(victim, result)

    # -- disk spill --------------------------------------------------

    def _spill_paths(self, key: str) -> tuple[Path, Path]:
        return (
            self.spill_dir / f"{key}.npz",
            self.spill_dir / f"{key}.meta.json",
        )

    def _spill(self, key: str, result: BuildResult) -> None:
        if self.spill_dir is None:
            return
        from repro.core.io import save_tree

        self.spill_dir.mkdir(parents=True, exist_ok=True)
        tree_path, meta_path = self._spill_paths(key)
        if tree_path.exists():
            return  # content-addressed: an existing spill is identical
        save_tree(result.tree, tree_path)
        meta = {name: getattr(result, name) for name in _META_FIELDS}
        meta["max_out_degree"] = int(result.max_out_degree)
        meta["extras"] = {
            k: _canonical_param(v)
            for k, v in result.extras.items()
            if isinstance(v, (int, float, str, bool, np.generic))
        }
        meta_path.write_text(json.dumps(meta))
        self.spill_writes += 1
        obs.add("service.cache.spill.write")

    def _load_spilled(self, key: str) -> BuildResult | None:
        if self.spill_dir is None:
            return None
        tree_path, meta_path = self._spill_paths(key)
        if not (tree_path.exists() and meta_path.exists()):
            return None
        from repro.core.io import load_tree

        tree = load_tree(tree_path)
        meta = json.loads(meta_path.read_text())
        self.spill_reads += 1
        obs.add("service.cache.spill.read")
        return BuildResult(
            tree=tree,
            max_out_degree=int(meta["max_out_degree"]),
            rings=meta["rings"],
            core_delay=meta["core_delay"],
            upper_bound=meta["upper_bound"],
            build_seconds=float(meta["build_seconds"]),
            representative_count=int(meta["representative_count"]),
            builder=meta["builder"],
            extras=dict(meta["extras"]),
        )

    def stats(self) -> dict:
        """A JSON-safe snapshot of cache occupancy and traffic."""
        return {
            "entries": len(self._entries),
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "spill_writes": self.spill_writes,
            "spill_reads": self.spill_reads,
            "spill_dir": None if self.spill_dir is None else str(self.spill_dir),
        }
