"""Public home of the unified service error hierarchy.

The classes live in the dependency-free leaf
:mod:`repro._service_errors` so that :mod:`repro.packing` (whose
:class:`~repro.packing.allocator.BudgetExhausted` subclasses
:class:`ServiceError`) can import them without initialising the whole
service package — import them from here in application code.
"""

from repro._service_errors import (
    DeadlineExceeded,
    PackingUnavailable,
    ServiceError,
    ServiceOverload,
    UnknownGroup,
    UnknownUpdateKey,
    UpdateUnsupported,
)

__all__ = [
    "ServiceError",
    "ServiceOverload",
    "DeadlineExceeded",
    "UnknownUpdateKey",
    "UpdateUnsupported",
    "UnknownGroup",
    "PackingUnavailable",
]
