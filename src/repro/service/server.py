"""Asyncio TCP front end for the build service: JSON lines in and out.

Protocol: one JSON object per line, one response line per request, over
a plain TCP connection (``python -m repro serve`` to run one). Ops:

* ``{"op": "build", ...}`` — build/fetch a tree (see
  :func:`~repro.service.core.request_from_payload` for the fields);
  add ``"include_tree": true`` to get ``points``/``parent``/``root``
  back for client-side reconstruction and oracle checks;
* ``{"op": "update", "key": ..., "events": [...]}`` — mutate a warm
  cache entry in place through the cell-local incremental engine
  instead of invalidating it; answers with the mutated tree's new
  content address (``include_tree`` works here too);
* ``{"op": "admit", "group": ..., "members": [...], "source": ...,
  "builder"?, "params"?}`` — admit a whole multicast group against the
  service's shared host population (build + atomic budget
  reservation); answers the session summary plus the build payload;
* ``{"op": "evict", "group": ...}`` — end a live session and return
  its budget slots to the pool;
* ``{"op": "sessions"}`` — the live group sessions;
* ``{"op": "stats"}`` — service + cache counters;
* ``{"op": "builders"}`` — registry introspection (name, summary,
  accepted params of every registered builder);
* ``{"op": "ping"}`` — liveness;
* ``{"op": "shutdown"}`` — stop the server after responding.

Every failure is a structured error object, never a dropped
connection, and every error encodes uniformly::

    {"ok": false, "error": {"type": "BudgetExhausted",
                            "message": "...",
                            "fields": {"group": ..., "host": ...}}}

``type`` names the :class:`~repro.service.errors.ServiceError`
subclass (or plain exception class) and ``fields`` carries its
machine-readable attributes (``pending``/``limit``, ``deadline``,
``known`` builders, ``host``/``requested``/``available``...), so
clients branch on data instead of parsing prose. For 1.x clients the
fields are *also* mirrored at the top level of the error object;
new code should read ``error["fields"]``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from functools import partial

from repro.core.registry import (
    BuilderParamError,
    UnknownBuilderError,
    builder_specs,
)
from repro.service.core import (
    ServiceError,
    TreeBuildService,
    request_from_payload,
)

__all__ = ["DEFAULT_PORT", "error_payload", "serve", "BackgroundServer"]

DEFAULT_PORT = 7464


def error_payload(exc: BaseException) -> dict:
    """The structured wire form of a request failure.

    Uniform envelope: ``{"type", "message", "fields": {...}}``.
    :class:`~repro.service.errors.ServiceError` subclasses carry their
    own fields; registry errors are adapted into the same shape. The
    fields are mirrored at the top level too so pre-2.x clients that
    read ``error["pending"]`` keep working.
    """
    if isinstance(exc, ServiceError):
        payload = exc.to_wire()
    else:
        fields = {}
        if isinstance(exc, UnknownBuilderError):
            fields = {"name": exc.name, "known": list(exc.known)}
        elif isinstance(exc, BuilderParamError):
            fields = {
                "builder": exc.builder,
                "rejected": list(exc.rejected),
                "accepted": list(exc.accepted),
            }
        payload = {
            "type": type(exc).__name__,
            "message": str(exc),
            "fields": fields,
        }
    # 1.x mirror: flatten fields into the error object itself.
    for name, value in payload["fields"].items():
        payload.setdefault(name, value)
    return payload


def _builders_payload() -> list[dict]:
    return [
        {"name": s.name, "summary": s.summary, "params": list(s.params)}
        for s in builder_specs()
    ]


async def _handle_line(service: TreeBuildService, stop: asyncio.Event, line):
    """One request line -> one response dict (never raises)."""
    try:
        payload = json.loads(line)
        op = payload.get("op", "build")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "builders":
            return {"ok": True, "builders": _builders_payload()}
        if op == "shutdown":
            stop.set()
            return {"ok": True, "op": "shutdown"}
        if op == "build":
            include_tree = bool(payload.get("include_tree", False))
            if "session" in payload:
                known = {"op", "session", "deadline", "include_tree"}
                unknown = set(payload) - known
                if unknown:
                    raise ValueError(
                        "unknown session-build field(s): "
                        + ", ".join(sorted(unknown))
                    )
                _, response = await service.fetch_session(
                    payload["session"], deadline=payload.get("deadline")
                )
            else:
                request = request_from_payload(payload)
                response = await service.submit(request)
            return {"ok": True, **response.to_dict(include_tree=include_tree)}
        if op == "update":
            known = {"op", "key", "events", "deadline", "include_tree"}
            unknown = set(payload) - known
            if unknown:
                raise ValueError(
                    "unknown update field(s): " + ", ".join(sorted(unknown))
                )
            key = payload.get("key")
            if not isinstance(key, str) or not key:
                raise ValueError("an update needs the cache key to mutate")
            response = await service.update(
                key, payload.get("events"), deadline=payload.get("deadline")
            )
            include_tree = bool(payload.get("include_tree", False))
            return {"ok": True, **response.to_dict(include_tree=include_tree)}
        if op == "admit":
            known = {
                "op",
                "group",
                "members",
                "source",
                "builder",
                "params",
                "deadline",
                "include_tree",
            }
            unknown = set(payload) - known
            if unknown:
                raise ValueError(
                    "unknown admit field(s): " + ", ".join(sorted(unknown))
                )
            session, response = await service.admit(
                payload.get("group"),
                members=payload.get("members"),
                source=int(payload.get("source", 0)),
                builder=payload.get("builder", "packed-polar-grid"),
                params=payload.get("params"),
                deadline=payload.get("deadline"),
            )
            include_tree = bool(payload.get("include_tree", False))
            return {
                "ok": True,
                "session": session.to_dict(),
                "build": response.to_dict(include_tree=include_tree),
            }
        if op == "evict":
            known = {"op", "group"}
            unknown = set(payload) - known
            if unknown:
                raise ValueError(
                    "unknown evict field(s): " + ", ".join(sorted(unknown))
                )
            group = payload.get("group")
            if not isinstance(group, str) or not group:
                raise ValueError("an evict needs the group id to end")
            session = service.evict(group)
            return {"ok": True, "session": session.to_dict()}
        if op == "sessions":
            return {
                "ok": True,
                "sessions": [s.to_dict() for s in service.sessions()],
            }
        return {
            "ok": False,
            "error": {"type": "UnknownOp", "message": f"unknown op {op!r}"},
        }
    except Exception as exc:  # noqa: BLE001 - protocol boundary
        return {"ok": False, "error": error_payload(exc)}


async def _handle_connection(service, stop, reader, writer):
    """Serve one client: a JSON-lines request/response loop."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            response = await _handle_line(service, stop, line)
            writer.write((json.dumps(response) + "\n").encode())
            await writer.drain()
            if stop.is_set():
                break
    except asyncio.CancelledError:
        # Loop teardown while this client sat idle — an abrupt stop
        # (ShardFleet.kill in thread mode) cancels connection tasks;
        # ending cleanly here keeps the reaper from logging it.
        pass
    finally:
        # close() without wait_closed(): every response was drained, and
        # awaiting here races loop teardown when the server stops while
        # clients are still connected.
        writer.close()


async def serve(
    service: TreeBuildService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    ready=None,
    log=None,
) -> None:
    """Run the TCP server until a client sends ``{"op": "shutdown"}``.

    :param ready: optional callback invoked with the bound ``(host,
        port)`` once listening (port 0 binds an ephemeral port).
    :param log: optional ``print``-like progress sink.
    """
    stop = asyncio.Event()
    server = await asyncio.start_server(
        partial(_handle_connection, service, stop), host, port
    )
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    if log is not None:
        log(f"repro service listening on {bound[0]}:{bound[1]}")
    async with server:
        await stop.wait()
    if log is not None:
        log("repro service stopped")


def run_server(host="127.0.0.1", port=DEFAULT_PORT, log=print, **service_kw):
    """Blocking entry point behind ``python -m repro serve``."""
    service = TreeBuildService(**service_kw)
    try:
        asyncio.run(serve(service, host, port, log=log))
    finally:
        service.close()
    return 0


class BackgroundServer:
    """A service + TCP server on a daemon thread (tests and benches).

    Use as a context manager::

        with BackgroundServer() as server:
            client = ServiceClient(port=server.port)

    The bound ``host``/``port`` are available once ``start`` returns
    (an ephemeral port is requested by default, so parallel test runs
    never collide). ``service`` is the underlying
    :class:`~repro.service.core.TreeBuildService` — its counters can be
    inspected directly from the test thread once requests have settled.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **service_kw):
        """Configure (but do not yet start) the server thread."""
        self._requested = (host, port)
        self._service_kw = service_kw
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_cb = None
        self.service: TreeBuildService | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self) -> "BackgroundServer":
        """Launch the server thread and wait until it is listening."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        return self

    def stop(self) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self._loop is not None and self._stop_cb is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_cb)
            except RuntimeError:  # loop already closed (in-band shutdown)
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        """Context-manager entry: start and wait until listening."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the server on context exit."""
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        self._stop_cb = stop.set
        self.service = TreeBuildService(**self._service_kw)
        server = await asyncio.start_server(
            partial(_handle_connection, self.service, stop),
            *self._requested,
        )
        self.host, self.port = server.sockets[0].getsockname()[:2]
        self._ready.set()
        try:
            async with server:
                await stop.wait()
        finally:
            self.service.close()
