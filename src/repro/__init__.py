"""repro — Overlay Multicast Trees of Minimal Delay.

A complete, production-quality reproduction of

    Anton Riabov, Zhen Liu, Li Zhang.
    "Overlay Multicast Trees of Minimal Delay". ICDCS 2004.

The package builds degree-constrained spanning trees over hosts embedded in
Euclidean space, minimising the *radius* of the tree — the longest
source-to-receiver path, i.e. the maximum multicast delay.

Top-level API
-------------

``build_polar_grid_tree``
    Algorithm Polar_Grid (the paper's main contribution): asymptotically
    optimal degree-constrained trees for points in a d-dimensional region.
``build_bisection_tree``
    The constant-factor Bisection algorithm of Section II, usable on its
    own for arbitrary point sets.
``MulticastTree``
    Vectorised rooted-tree container with validity checking and
    O(n log depth) delay evaluation.

Sub-packages
------------

``repro.geometry``    points, polar transforms, regions, ring segments
``repro.core``        trees, bisection, polar grids, builders, bounds
``repro.baselines``   competing heuristics and an exact solver for tiny n
``repro.embedding``   GNP / Vivaldi network-coordinate substrates
``repro.overlay``     hosts, sessions, dissemination simulator, repair
``repro.workloads``   seeded random point-set generators
``repro.experiments`` harnesses reproducing Table I and Figures 4-8
"""

from repro.core.bounds import (
    arc_length,
    lemma1_probability,
    polar_grid_upper_bound,
    rings_lower_bound,
    sum_of_inner_arcs,
)
from repro.core.builder import (
    BuildResult,
    build_bisection_tree,
    build_polar_grid_tree,
)
from repro.core.diameter import build_min_diameter_tree, tree_diameter
from repro.core.io import load_tree, save_tree
from repro.core.tree import MulticastTree
from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.host import Host
from repro.overlay.session import MulticastSession
from repro.workloads.generators import (
    unit_ball,
    unit_disk,
)

__version__ = "1.0.0"

__all__ = [
    "BuildResult",
    "DynamicOverlay",
    "Host",
    "MulticastSession",
    "MulticastTree",
    "arc_length",
    "build_bisection_tree",
    "build_min_diameter_tree",
    "build_polar_grid_tree",
    "lemma1_probability",
    "load_tree",
    "polar_grid_upper_bound",
    "rings_lower_bound",
    "save_tree",
    "sum_of_inner_arcs",
    "tree_diameter",
    "unit_ball",
    "unit_disk",
    "__version__",
]
