"""repro — Overlay Multicast Trees of Minimal Delay.

A complete, production-quality reproduction of

    Anton Riabov, Zhen Liu, Li Zhang.
    "Overlay Multicast Trees of Minimal Delay". ICDCS 2004.

The package builds degree-constrained spanning trees over hosts embedded in
Euclidean space, minimising the *radius* of the tree — the longest
source-to-receiver path, i.e. the maximum multicast delay.

Top-level API
-------------

``build(points, source, spec, **params)``
    The unified builder facade: dispatches by registered builder name
    (``"polar-grid"``, ``"bisection"``, ``"quadtree"``,
    ``"min-diameter"``, ``"heterogeneous"``, ``"compact-tree"``,
    ``"bandwidth-latency"``, ``"capped-star"``, ``"random"``,
    ``"steiner"``) with
    normalized keyword parameters and a uniform
    :class:`~repro.core.builder.BuildResult` return shape.
``register_builder`` / ``get_builder`` / ``builder_names``
    The registry behind the facade (see :mod:`repro.core.registry`).
``MulticastTree``
    Vectorised rooted-tree container with validity checking and
    O(n log depth) delay evaluation.

The per-algorithm entry points (``build_polar_grid_tree``,
``build_bisection_tree``, ``build_min_diameter_tree``) remain importable
from this package as *deprecated* shims that forward to ``repro.build``
with a :class:`DeprecationWarning`; they will be removed in repro 2.0.
The canonical implementations stay in their home modules
(:mod:`repro.core.builder`, :mod:`repro.core.diameter`).

Sub-packages
------------

``repro.geometry``    points, polar transforms, regions, ring segments
``repro.core``        trees, bisection, polar grids, builders, bounds
``repro.baselines``   competing heuristics and an exact solver for tiny n
``repro.costmodel``   pluggable edge costs: congestion-scaled delay,
                      utilization feedback from the stream simulator
``repro.embedding``   GNP / Vivaldi network-coordinate substrates
``repro.overlay``     hosts, sessions, dissemination simulator, repair
``repro.workloads``   seeded random point-set and load/churn generators
``repro.experiments`` harnesses reproducing Table I and Figures 4-8
"""

import warnings as _warnings

from repro.core.bounds import (
    arc_length,
    lemma1_probability,
    polar_grid_upper_bound,
    rings_lower_bound,
    sum_of_inner_arcs,
)
from repro.core.builder import BuildResult
from repro.core.diameter import tree_diameter
from repro.core.io import load_tree, save_tree
from repro.core.registry import (
    BuilderParamError,
    BuilderSpec,
    UnknownBuilderError,
    build,
    builder_names,
    builder_specs,
    get_builder,
    register_builder,
)
from repro.core.tree import MulticastTree
from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.host import Host
from repro.overlay.session import MulticastSession
from repro.workloads.generators import (
    unit_ball,
    unit_disk,
)

__version__ = "1.0.0"

__all__ = [
    "BuildResult",
    "BuilderParamError",
    "BuilderSpec",
    "DynamicOverlay",
    "Host",
    "MulticastSession",
    "MulticastTree",
    "UnknownBuilderError",
    "arc_length",
    "build",
    "build_bisection_tree",
    "build_min_diameter_tree",
    "build_polar_grid_tree",
    "builder_names",
    "builder_specs",
    "get_builder",
    "lemma1_probability",
    "load_tree",
    "polar_grid_upper_bound",
    "register_builder",
    "rings_lower_bound",
    "save_tree",
    "sum_of_inner_arcs",
    "tree_diameter",
    "unit_ball",
    "unit_disk",
    "__version__",
]


# ----------------------------------------------------------------------
# deprecated per-algorithm entry points (removal horizon: repro 2.0)
# ----------------------------------------------------------------------

def _deprecated(old: str, hint: str) -> None:
    _warnings.warn(
        f"repro.{old} is deprecated and will be removed in repro 2.0; "
        f"use {hint} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _shim_build_polar_grid_tree(points, source=0, max_out_degree=6, **kwargs):
    """Deprecated alias for ``repro.build(points, source, "polar-grid")``."""
    _deprecated(
        "build_polar_grid_tree",
        'repro.build(points, source, "polar-grid", max_out_degree=...)',
    )
    return build(points, source, "polar-grid", max_out_degree=max_out_degree, **kwargs)


def _shim_build_bisection_tree(points, source=0, max_out_degree=6, **kwargs):
    """Deprecated alias for ``repro.build(points, source, "bisection")``."""
    _deprecated(
        "build_bisection_tree",
        'repro.build(points, source, "bisection", max_out_degree=...)',
    )
    return build(points, source, "bisection", max_out_degree=max_out_degree, **kwargs)


def _shim_build_min_diameter_tree(points, max_out_degree=6, **kwargs):
    """Deprecated alias for ``repro.build(points, 0, "min-diameter")``.

    Preserves the historical ``(BuildResult, diameter)`` tuple return;
    the facade reports the diameter on ``result.extras["diameter"]``.
    """
    _deprecated(
        "build_min_diameter_tree",
        'repro.build(points, 0, "min-diameter", max_out_degree=...)',
    )
    result = build(points, 0, "min-diameter", max_out_degree=max_out_degree, **kwargs)
    return result, result.extras["diameter"]


_DEPRECATED_SHIMS = {
    "build_polar_grid_tree": _shim_build_polar_grid_tree,
    "build_bisection_tree": _shim_build_bisection_tree,
    "build_min_diameter_tree": _shim_build_min_diameter_tree,
}


def __getattr__(name: str):
    """Serve the deprecated entry points lazily.

    The warning fires inside the shim (call time), not here (import
    time), so ``from repro import build_polar_grid_tree`` stays silent
    and only *using* the old name warns.
    """
    try:
        return _DEPRECATED_SHIMS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
