"""``packed-polar-grid``: a residual-budget-aware registered builder.

Builds one group's tree against the *residual* per-host budgets left
by already-admitted groups: effective budget per host is
``min(residual, max_out_degree)``, the tree is a binary polar-grid
backbone over hosts with >= 2 effective slots, and leaf-only hosts
greedily attach to spare capacity (delegating to
:func:`repro.core.heterogeneous.build_heterogeneous_tree`).  A binary
backbone keeps the per-tree footprint low — at most 2 slots per
backbone host — which is exactly what makes many trees pack into the
same caps.

Infeasible residuals raise a structured
:class:`~repro.packing.allocator.BudgetExhausted` (not a bare
``ValueError``) so the service admit path and fuzzer can tell a
rejection from a bug.  The feasibility check is exact: a population of
``n`` hosts needs ``n - 1`` child slots, all carried by hosts with
budget >= 2, plus a source with at least 2 slots.
"""

from __future__ import annotations

import numpy as np

from repro.core.heterogeneous import build_heterogeneous_tree
from repro.core.registry import register_builder
from repro.packing.allocator import BudgetExhausted

__all__ = ["build_packed_polar_grid_tree"]


@register_builder(
    "packed-polar-grid",
    summary="binary polar-grid backbone built against residual "
    "shared-population budgets (multi-group packing)",
)
def build_packed_polar_grid_tree(
    points,
    source: int = 0,
    max_out_degree: int = 6,
    *,
    budgets=None,
    group: str | None = None,
    **grid_kwargs,
):
    """Build one group's tree under residual per-host budgets.

    :param budgets: residual out-degree budget per host, shape
        ``(n,)``; ``None`` means a fresh population (uniform
        ``max_out_degree``).
    :param max_out_degree: this group's own fan-out limit; the
        effective budget per host is ``min(budgets, max_out_degree)``.
    :param group: optional group label, threaded into
        :class:`BudgetExhausted` for multi-group diagnostics.
    :raises BudgetExhausted: when the residual budgets cannot span the
        group (source short of 2 slots, or aggregate capacity short of
        ``n - 1`` edges).
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if max_out_degree < 2:
        raise ValueError("max_out_degree must be >= 2")
    if budgets is None:
        budgets = np.full(n, int(max_out_degree), dtype=np.int64)
    else:
        budgets = np.asarray(budgets, dtype=np.int64)
        if budgets.shape != (n,):
            raise ValueError(f"budgets must have shape ({n},)")
        if (budgets < 0).any():
            raise ValueError("budgets cannot be negative")
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")

    effective = np.minimum(budgets, int(max_out_degree))
    if n > 1 and effective[source] < 2:
        raise BudgetExhausted(
            f"source host {source} has {int(effective[source])} residual "
            f"slot(s) but needs 2 to root a backbone",
            group=group,
            host=int(source),
            requested=2,
            available=int(effective[source]),
            cap=int(budgets[source]),
        )
    # Exact aggregate feasibility: the tree needs n - 1 child slots and
    # only hosts with >= 2 effective slots (the backbone) supply any;
    # the backbone itself consumes F - 1 of them, leaves the rest.
    forwarder_slots = int(effective[effective >= 2].sum())
    if forwarder_slots < n - 1:
        raise BudgetExhausted(
            f"residual budgets offer {forwarder_slots} forwarding slots "
            f"for {n - 1} required edges; the group does not fit",
            group=group,
            host=None,
            requested=n - 1,
            available=forwarder_slots,
            cap=None,
        )
    return build_heterogeneous_tree(pts, effective, source, **grid_kwargs)
