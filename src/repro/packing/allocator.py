"""Per-host out-degree budget ledger shared across multicast groups.

:class:`DegreeBudgetAllocator` owns one integer cap per host and a
ledger of live reservations, one per admitted group.  ``reserve`` is
all-or-nothing: either every host in the group's usage vector fits its
residual budget and the whole vector commits, or the call raises a
structured :class:`BudgetExhausted` naming the tightest host and
nothing changes.  ``release`` returns a group's slots to the pool.

The allocator is deliberately dumb about *what* the slots are used for
— it never sees trees, only usage vectors — so the same ledger backs
the packed builder (src/repro/packing/builder.py), the service admit
path (src/repro/service/core.py), and the packing fuzz mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro._service_errors import ServiceError, UnknownGroup

__all__ = ["BudgetExhausted", "BudgetReceipt", "DegreeBudgetAllocator"]


class BudgetExhausted(ServiceError, RuntimeError):
    """A reservation (or residual-aware build) could not fit the caps.

    ``host`` is the index of the tightest violating host, or ``None``
    for aggregate infeasibility (total residual capacity short of the
    group's needs).  ``requested``/``available`` quantify the gap at
    that host (or in aggregate); ``cap`` is the host's full cap when a
    single host is at fault.
    """

    def __init__(
        self,
        message: str,
        *,
        group: str | None = None,
        host: int | None = None,
        requested: int = 0,
        available: int = 0,
        cap: int | None = None,
    ) -> None:
        """Record the gap; every kwarg also lands in ``fields``."""
        super().__init__(
            message,
            group=group,
            host=host,
            requested=requested,
            available=available,
            cap=cap,
        )
        self.group = group
        self.host = host
        self.requested = requested
        self.available = available
        self.cap = cap


@dataclass(frozen=True)
class BudgetReceipt:
    """Proof of a committed reservation, returned by ``reserve``.

    ``hosts`` lists the population indices that actually consumed
    slots (usage > 0); ``slots`` is the total out-degree reserved.
    """

    group_id: str
    hosts: tuple[int, ...]
    slots: int

    def to_dict(self) -> dict:
        """JSON-ready receipt (inverse of :meth:`from_dict`)."""
        return {
            "group": self.group_id,
            "hosts": list(self.hosts),
            "slots": self.slots,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> BudgetReceipt:
        """Rebuild a receipt from its :meth:`to_dict` payload."""
        return cls(
            group_id=payload["group"],
            hosts=tuple(int(h) for h in payload["hosts"]),
            slots=int(payload["slots"]),
        )


@dataclass
class DegreeBudgetAllocator:
    """Shared out-degree budget ledger over one host population."""

    caps: np.ndarray
    _usage: dict[str, np.ndarray] = field(default_factory=dict)
    _in_use: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        """Validate the caps vector and zero the in-use ledger."""
        caps = np.asarray(self.caps, dtype=np.int64)
        if caps.ndim != 1 or caps.size == 0:
            raise ValueError("caps must be a non-empty 1-D integer array")
        if (caps < 0).any():
            raise ValueError("caps must be non-negative")
        self.caps = caps
        self._in_use = np.zeros_like(caps)

    @property
    def n_hosts(self) -> int:
        """Size of the shared host population."""
        return int(self.caps.size)

    def residual(self) -> np.ndarray:
        """Remaining budget per host (a copy; safe to mutate)."""
        return self.caps - self._in_use

    def live_groups(self) -> list[str]:
        """Sorted ids of every group holding a reservation."""
        return sorted(self._usage)

    def usage_of(self, group_id: str) -> np.ndarray:
        """One live group's reserved slots per host (a copy)."""
        if group_id not in self._usage:
            raise UnknownGroup(group_id, self.live_groups())
        return self._usage[group_id].copy()

    def reserve(self, group_id: str, usage: np.ndarray) -> BudgetReceipt:
        """Atomically commit ``usage`` slots per host for ``group_id``."""
        if group_id in self._usage:
            raise ValueError(
                f"group {group_id!r} already holds a reservation"
            )
        vec = np.asarray(usage, dtype=np.int64)
        if vec.shape != self.caps.shape:
            raise ValueError(
                f"usage has shape {vec.shape}, caps have {self.caps.shape}"
            )
        if (vec < 0).any():
            raise ValueError("usage must be non-negative")
        residual = self.residual()
        over = np.flatnonzero(vec > residual)
        if over.size:
            worst = int(over[np.argmax((vec - residual)[over])])
            raise BudgetExhausted(
                f"group {group_id!r} needs {int(vec[worst])} slots on host "
                f"{worst} but only {int(residual[worst])} of its cap "
                f"{int(self.caps[worst])} remain "
                f"({over.size} host(s) over budget)",
                group=group_id,
                host=worst,
                requested=int(vec[worst]),
                available=int(residual[worst]),
                cap=int(self.caps[worst]),
            )
        self._usage[group_id] = vec.copy()
        self._in_use += vec
        slots = int(vec.sum())
        obs.add("packing.budget.reserved.total", slots)
        return BudgetReceipt(
            group_id=group_id,
            hosts=tuple(int(h) for h in np.flatnonzero(vec)),
            slots=slots,
        )

    def release(self, group_id: str) -> BudgetReceipt:
        """Return ``group_id``'s slots to the pool."""
        if group_id not in self._usage:
            raise UnknownGroup(group_id, self.live_groups())
        vec = self._usage.pop(group_id)
        self._in_use -= vec
        slots = int(vec.sum())
        obs.add("packing.budget.released.total", slots)
        return BudgetReceipt(
            group_id=group_id,
            hosts=tuple(int(h) for h in np.flatnonzero(vec)),
            slots=slots,
        )

    def stats(self) -> dict:
        """Ledger summary: pool size, reserved slots, hottest host."""
        return {
            "hosts": self.n_hosts,
            "total_cap": int(self.caps.sum()),
            "reserved_slots": int(self._in_use.sum()),
            "live_groups": len(self._usage),
            "hottest_host": int(np.argmax(self._in_use))
            if self._in_use.any()
            else None,
        }
