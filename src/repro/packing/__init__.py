"""Multi-group tree packing: shared per-host out-degree budgets.

Many concurrent multicast groups share one host population; every
host's out-degree cap is split across the groups it forwards for — the
Maximum Bounded Rooted-Tree Packing problem (Kerivin et al.,
arXiv 1111.0706).  This package owns the budget ledger
(:class:`DegreeBudgetAllocator`), the structured rejection
(:class:`BudgetExhausted`), and the residual-aware builder registered
as ``"packed-polar-grid"``.
"""

from repro.packing.allocator import (
    BudgetExhausted,
    BudgetReceipt,
    DegreeBudgetAllocator,
)
from repro.packing.builder import build_packed_polar_grid_tree

__all__ = [
    "BudgetExhausted",
    "BudgetReceipt",
    "DegreeBudgetAllocator",
    "build_packed_polar_grid_tree",
]
