"""Command-line front end: regenerate the paper's tables and figures.

Examples
--------

Reproduce Table I at laptop scale (20 trials, up to 50k nodes)::

    python -m repro table1

Reproduce it at the paper's protocol (200 trials, up to 5M nodes —
hours of CPU)::

    python -m repro table1 --paper

Render a figure::

    python -m repro fig5 --trials 10

Build one tree and print its summary::

    python -m repro demo --nodes 10000 --degree 2

Trace where the time goes and dump the metrics of any run::

    python -m repro table1 --engine process --trace out.jsonl --metrics
    python -m repro trace-report out.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import repro.obs as obs
from repro.core.backends import BACKEND_ENV, BACKENDS
from repro.core.registry import build, builder_names
from repro.experiments import figures as figures_mod
from repro.experiments.table1 import (
    DEFAULT_SIZES,
    DEFAULT_TRIALS,
    PAPER_SIZES,
    format_table1,
    run_table1,
)
from repro.workloads.generators import unit_ball, unit_disk

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-multicast",
        description=(
            "Reproduce 'Overlay Multicast Trees of Minimal Delay' "
            "(Riabov, Liu, Zhang; ICDCS 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_args(p):
        p.add_argument(
            "--trace",
            metavar="FILE",
            default=None,
            help="record hierarchical trace spans to a JSON-lines file "
            "(summarise with 'trace-report FILE'; see docs/OBSERVABILITY.md)",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="print a Prometheus-style metrics dump when the command "
            "finishes (counters/gauges/histograms, merged across workers)",
        )

    def add_sweep_args(p, default_trials):
        add_obs_args(p)
        p.add_argument(
            "--sizes",
            type=int,
            nargs="+",
            default=None,
            help="problem sizes n (default: a laptop-scale subset)",
        )
        p.add_argument(
            "--trials",
            type=int,
            default=default_trials,
            help="independent trials per size",
        )
        p.add_argument("--seed", type=int, default=0, help="base RNG seed")
        p.add_argument(
            "--builder",
            choices=builder_names(),
            default="polar-grid",
            help="registered tree builder to sweep (default: polar-grid, "
            "the paper's algorithm); see docs/API.md for the registry",
        )
        p.add_argument(
            "--paper",
            action="store_true",
            help="use the paper's full protocol (200 trials, up to 5M nodes)",
        )
        p.add_argument(
            "--backend",
            choices=BACKENDS,
            default=None,
            help="build backend: 'numpy' (default, frontier-vectorised), "
            "'reference' (the paper-shaped Python loops), or 'numba' "
            "(JIT kernels; falls back to numpy when numba is absent). "
            "All backends build identical trees — docs/PERFORMANCE.md",
        )
        p.add_argument(
            "--engine",
            choices=("auto", "serial", "process"),
            default="serial",
            help="trial execution backend: 'process' fans trials out "
            "over worker processes (identical results, see docs/ENGINE.md); "
            "'auto' picks based on the host",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="worker processes for --engine process "
            "(default: all CPUs)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECS",
            help="per-trial attempt timeout in seconds; a timed-out "
            "attempt counts as a failure and is retried per --retries "
            "(see docs/OPERATIONS.md)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="K",
            help="extra attempts per failed trial, with exponential "
            "backoff and deterministic retry seeds; a trial that "
            "exhausts them becomes a structured failure row and the "
            "sweep continues",
        )
        p.add_argument(
            "--checkpoint",
            metavar="FILE",
            default=None,
            help="append every finished trial to a crash-safe JSONL "
            "journal; if FILE already exists its completed trials are "
            "resumed (kill-and-resume safe, see docs/OPERATIONS.md)",
        )
        p.add_argument(
            "--resume",
            metavar="FILE",
            default=None,
            help="resume from an existing checkpoint journal (errors "
            "if FILE is missing) and keep appending to it",
        )

    t1 = sub.add_parser("table1", help="reproduce Table I")
    add_sweep_args(t1, DEFAULT_TRIALS)
    t1.add_argument(
        "--json", action="store_true", help="emit rows as JSON instead of text"
    )

    for fig in ("fig4", "fig5", "fig6", "fig7", "fig8"):
        p = sub.add_parser(fig, help=f"reproduce Figure {fig[3:]}")
        add_sweep_args(p, figures_mod.DEFAULT_TRIALS)
        p.add_argument(
            "--data", action="store_true", help="print the series table too"
        )
        p.add_argument(
            "--svg",
            metavar="PATH",
            default=None,
            help="also write the figure as an SVG line chart",
        )

    figures = sub.add_parser(
        "figures",
        help="regenerate Figures 4-8 into a directory (SVG + text)",
    )
    add_sweep_args(figures, figures_mod.DEFAULT_TRIALS)
    figures.add_argument(
        "--out", default="figures", help="output directory (created)"
    )

    demo = sub.add_parser("demo", help="build one tree and print a summary")
    add_obs_args(demo)
    demo.add_argument("--nodes", type=int, default=10_000)
    demo.add_argument("--degree", type=int, default=6)
    demo.add_argument(
        "--builder",
        choices=builder_names(),
        default="polar-grid",
        help="registered tree builder to run (default: polar-grid)",
    )
    demo.add_argument("--dim", type=int, default=2, choices=(2, 3, 4))
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="build backend (see docs/PERFORMANCE.md); default numpy",
    )
    demo.add_argument(
        "--svg",
        metavar="PATH",
        default=None,
        help="render the tree to an SVG file (2-D only)",
    )
    demo.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="serialise the tree (.npz or .json)",
    )

    diam = sub.add_parser(
        "diameter",
        help="minimum-diameter variant (paper's conclusion): artificial "
        "central root, diameter reported",
    )
    diam.add_argument("--nodes", type=int, default=10_000)
    diam.add_argument("--degree", type=int, default=6)
    diam.add_argument("--dim", type=int, default=2, choices=(2, 3, 4))
    diam.add_argument("--seed", type=int, default=0)

    verify = sub.add_parser(
        "verify",
        help="empirically check the paper's theorems and lemmas "
        "(Monte Carlo + exhaustive oracles)",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--fast", action="store_true", help="smaller sample sizes"
    )

    compare = sub.add_parser(
        "compare",
        help="extension studies: degree sweep, region study, "
        "all-algorithm showdown",
    )
    compare.add_argument(
        "study",
        choices=("degrees", "regions", "algorithms"),
        help="which study to run",
    )
    compare.add_argument("--nodes", type=int, default=5_000)
    compare.add_argument("--trials", type=int, default=3)
    compare.add_argument("--seed", type=int, default=0)

    score = sub.add_parser(
        "scorecard",
        help="grade the reproduction against the published Table I",
    )
    score.add_argument(
        "--sizes", type=int, nargs="+", default=[100, 1_000, 10_000]
    )
    score.add_argument("--trials", type=int, default=10)
    score.add_argument("--seed", type=int, default=0)

    fuzz = sub.add_parser(
        "fuzz",
        help="seed-corpus differential fuzzing of the builders "
        "(crash artifacts in results/fuzz/, exit 3 on violation)",
    )
    add_obs_args(fuzz)
    fuzz.add_argument(
        "--seeds", type=int, default=200, help="corpus size (instances)"
    )
    fuzz.add_argument(
        "--mode",
        choices=("builders", "churn", "packing"),
        default="builders",
        help="corpus kind: static clouds through the differential "
        "harness, churn event traces through the incremental engine, "
        "or admit/evict traces against a shared degree-budget ledger",
    )
    fuzz.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECS",
        help="wall-clock cap; stops early but never changes the corpus",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="base seed (corpus identity)"
    )
    fuzz.add_argument(
        "--out", default="results/fuzz", help="crash artifact directory"
    )
    fuzz.add_argument(
        "--max-crashes", type=int, default=5, help="stop after K crashes"
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="write crash artifacts without the shrinking pass",
    )

    report = sub.add_parser(
        "trace-report",
        help="summarise a JSON-lines trace file written with --trace",
    )
    report.add_argument("file", help="trace file (results/trace/*.jsonl)")
    report.add_argument(
        "--top",
        type=int,
        default=3,
        metavar="K",
        help="how many slowest root spans to expand (default 3)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the tree-build service: a TCP server with a "
        "content-addressed build cache, request coalescing, and "
        "admission control (JSON-lines protocol, see docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7464, help="bind port (default 7464)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="build threads (default 2)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=32,
        metavar="K",
        help="bound on distinct in-flight builds; beyond it requests "
        "are rejected with a structured ServiceOverload error",
    )
    serve.add_argument(
        "--cache-mb",
        type=int,
        default=256,
        metavar="MB",
        help="in-memory build cache budget in MiB (LRU eviction)",
    )
    serve.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="spill evicted cache entries to DIR (e.g. results/cache) "
        "so they reload from disk instead of rebuilding",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECS",
        help="default per-request build deadline in seconds "
        "(requests may override; expiry is a structured "
        "DeadlineExceeded error and the build still lands in the cache)",
    )
    serve.add_argument(
        "--packing-hosts",
        type=int,
        default=None,
        metavar="N",
        help="host a shared population of N points and enable session "
        "ops (admit/evict/sessions) with a per-host degree-budget "
        "ledger; omit to run the stateless build-only service",
    )
    serve.add_argument(
        "--packing-cap",
        type=int,
        default=8,
        metavar="C",
        help="per-host out-degree cap shared across admitted groups "
        "(default 8; only with --packing-hosts)",
    )
    serve.add_argument(
        "--packing-seed",
        type=int,
        default=0,
        help="seed for the hosted population (default 0; only with "
        "--packing-hosts)",
    )

    fleet = sub.add_parser(
        "serve-fleet",
        help="run a sharded fleet: N serve processes on ephemeral "
        "ports with the cache key space consistent-hashed across them "
        "(route requests with repro.service.ShardRouter; see "
        "docs/SERVICE.md)",
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=3,
        metavar="N",
        help="fleet size (default 3); each shard is an independent "
        "serve process with its own cache",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="build threads per shard (default 2)",
    )
    fleet.add_argument(
        "--max-pending",
        type=int,
        default=32,
        metavar="K",
        help="per-shard bound on distinct in-flight builds",
    )

    bfleet = sub.add_parser(
        "bench-fleet",
        help="scaling-curve benchmark of the sharded fleet: closed-loop "
        "clients against 1/2/4-shard fleets (hot-key coalescing, "
        "mixed working set; writes BENCH_fleet.json)",
    )
    bfleet.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="fleet sizes to sweep (default: 1 2 4)",
    )
    bfleet.add_argument("--nodes", type=int, default=5_000)
    bfleet.add_argument(
        "--builder",
        choices=builder_names(),
        default="polar-grid",
        help="registered tree builder to benchmark",
    )
    bfleet.add_argument("--degree", type=int, default=6)
    bfleet.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="concurrent closed-loop clients, each with its own router",
    )
    bfleet.add_argument(
        "--requests",
        type=int,
        default=25,
        metavar="K",
        help="requests per client in the closed-loop phase",
    )
    bfleet.add_argument(
        "--keys",
        type=int,
        default=5,
        metavar="K",
        help="distinct workload keys in the closed-loop working set",
    )
    bfleet.add_argument(
        "--replication",
        type=int,
        default=2,
        metavar="R",
        help="preference-list length per key (primary + R-1 replicas)",
    )
    bfleet.add_argument("--seed", type=int, default=0)
    bfleet.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_fleet.json",
        help="where to write the JSON report (default BENCH_fleet.json)",
    )

    bench = sub.add_parser(
        "bench-serve",
        help="closed-loop latency benchmark of the build service "
        "(cold build vs cache hit vs coalesced; writes BENCH_serve.json)",
    )
    bench.add_argument("--nodes", type=int, default=20_000)
    bench.add_argument(
        "--builder",
        choices=builder_names(),
        default="polar-grid",
        help="registered tree builder to benchmark",
    )
    bench.add_argument("--degree", type=int, default=6)
    bench.add_argument(
        "--warm",
        type=int,
        default=20,
        metavar="K",
        help="repeat count for the cache-hit phase (default 20)",
    )
    bench.add_argument(
        "--clients",
        type=int,
        default=8,
        metavar="N",
        help="concurrent connections in the coalescing phase (default 8)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_serve.json",
        help="where to write the JSON report (default BENCH_serve.json)",
    )

    bbuild = sub.add_parser(
        "bench-build",
        help="time one build per backend (reference/numpy/numba), "
        "cross-check identical trees, gate the vectorised speedup "
        "(writes BENCH_build_5m.json; see docs/PERFORMANCE.md)",
    )
    bbuild.add_argument("--nodes", type=int, default=100_000)
    bbuild.add_argument("--degree", type=int, default=6)
    bbuild.add_argument("--dim", type=int, default=2, choices=(2, 3, 4))
    bbuild.add_argument("--seed", type=int, default=0)
    bbuild.add_argument(
        "--scale",
        type=int,
        nargs="*",
        default=(),
        metavar="N",
        help="extra sizes to run numpy-only scale entries for "
        "(e.g. --scale 1000000 5000000)",
    )
    bbuild.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_build_5m.json",
        help="where to write the JSON report "
        "(default BENCH_build_5m.json)",
    )

    bcong = sub.add_parser(
        "bench-congestion",
        help="offered-load sweep under the utilization-scaled cost model "
        "(polar-grid vs compact-tree vs steiner), congestion-rebuild "
        "demo + profile replays, gated (writes BENCH_congestion.json; "
        "see docs/SCENARIOS.md)",
    )
    bcong.add_argument("--nodes", type=int, default=600)
    bcong.add_argument("--degree", type=int, default=6)
    bcong.add_argument("--seed", type=int, default=0)
    bcong.add_argument(
        "--loads",
        type=float,
        nargs="*",
        default=(),
        metavar="L",
        help="offered loads to sweep, ascending "
        "(default 0.0 0.2 0.4 0.6 0.8)",
    )
    bcong.add_argument(
        "--capacity",
        type=float,
        default=8.0,
        help="uplink capacity in stream copies (default 8)",
    )
    bcong.add_argument(
        "--figures",
        metavar="DIR",
        default=None,
        help="also write FIG_congestion_{radius,stress}.svg to DIR",
    )
    bcong.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_congestion.json",
        help="where to write the JSON report "
        "(default BENCH_congestion.json)",
    )

    bpack = sub.add_parser(
        "bench-packing",
        help="multi-group admission sweep over one shared degree-budget "
        "pool (packed-polar-grid vs naive polar-grid), with a TCP "
        "admit/evict/readmit phase, gated (writes BENCH_packing.json; "
        "see docs/SCENARIOS.md)",
    )
    bpack.add_argument("--hosts", type=int, default=120)
    bpack.add_argument("--cap", type=int, default=8)
    bpack.add_argument("--degree", type=int, default=6)
    bpack.add_argument(
        "--group-size",
        type=int,
        default=40,
        help="members per multicast group (default 40)",
    )
    bpack.add_argument("--seed", type=int, default=0)
    bpack.add_argument(
        "--offered",
        type=int,
        nargs="*",
        default=(),
        metavar="G",
        help="concurrent-group counts to sweep, ascending "
        "(default 2 4 6 8 12 16)",
    )
    bpack.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_packing.json",
        help="where to write the JSON report (default BENCH_packing.json)",
    )
    return parser


def _sweep_params(args, paper_trials=200):
    if args.paper:
        return PAPER_SIZES, paper_trials
    sizes = tuple(args.sizes) if args.sizes else DEFAULT_SIZES
    return sizes, args.trials


def _resilience_setup(args, sizes, trials):
    """Build the (policy, journal, failures) triple for a sweep command.

    Returns ``(None, None, None)`` when no resilience flag was given, so
    the classic raise-on-failure path stays untouched. ``--resume`` and
    ``--checkpoint`` both open the same crash-safe journal; ``--resume``
    additionally requires the file to exist already.
    """
    from repro.experiments.resilience import CheckpointJournal, ResiliencePolicy

    wants = (
        args.timeout is not None
        or args.retries
        or args.checkpoint
        or args.resume
    )
    if not wants:
        return None, None, None
    if args.resume and args.checkpoint and args.resume != args.checkpoint:
        raise SystemExit(
            "--resume and --checkpoint name different files; pass one "
            "(both resume and append to the same journal)"
        )
    policy = ResiliencePolicy(timeout=args.timeout, retries=args.retries)
    journal = None
    path = args.resume or args.checkpoint
    if path:
        if args.resume and not Path(path).exists():
            raise SystemExit(
                f"--resume {path}: no such checkpoint journal "
                "(use --checkpoint to start a new one)"
            )
        journal = CheckpointJournal(
            path,
            params={
                "command": args.command,
                "seed": args.seed,
                "trials": trials,
                "sizes": list(sizes),
            },
        )
        journal.open()
        if journal.completed_count:
            print(
                f"resuming: {journal.completed_count} completed trial(s) "
                f"replayed from {path}",
                file=sys.stderr,
            )
    return policy, journal, []


def _finish_resilient(journal, failures) -> int:
    """Close the journal, report permanent failures; 1 if any, else 0."""
    if journal is not None:
        journal.close()
    if not failures:
        return 0
    print(
        f"{len(failures)} trial(s) failed permanently "
        "(recorded as structured failure rows):",
        file=sys.stderr,
    )
    for failure in failures[:5]:
        print(f"  {failure.describe()}", file=sys.stderr)
    if len(failures) > 5:
        print(f"  ... and {len(failures) - 5} more", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "trace-report":
        from repro.obs.report import summarize_trace

        try:
            print(summarize_trace(args.file, top=args.top))
        except BrokenPipeError:  # e.g. `... | head` closed stdout early
            sys.stderr.close()
            return 0
        return 0

    observing = bool(
        getattr(args, "trace", None) or getattr(args, "metrics", False)
    )
    if not observing:
        return _dispatch(args)

    # --trace / --metrics: record the whole command under one root span,
    # then export. Trial spans and per-worker metric snapshots from the
    # process engine are merged in as results arrive (docs/OBSERVABILITY.md).
    obs.reset()
    obs.enable()
    try:
        with obs.span(f"cli.{args.command}"):
            code = _dispatch(args)
    finally:
        records = obs.current_records()
        snap = obs.snapshot()
        if getattr(args, "trace", None):
            path = obs.write_trace_jsonl(records, args.trace, metrics=snap)
            print(f"trace: {len(records)} spans -> {path}", file=sys.stderr)
        if getattr(args, "metrics", False):
            print(obs.prometheus_text(snap))
        obs.reset()
    return code


def _dispatch(args) -> int:
    # Export --backend through the environment rather than threading it
    # through every call: process-engine workers inherit os.environ, so
    # one assignment covers thread, process, and in-process builds alike.
    if getattr(args, "backend", None):
        os.environ[BACKEND_ENV] = args.backend

    if args.command == "table1":
        sizes, trials = _sweep_params(args)
        policy, journal, failures = _resilience_setup(args, sizes, trials)
        rows = run_table1(
            sizes=sizes,
            trials=trials,
            seed=args.seed,
            engine=args.engine,
            max_workers=args.workers,
            resilience=policy,
            journal=journal,
            failures=failures,
            builder=args.builder,
        )
        if args.json:
            print(json.dumps([row.__dict__ for row in rows], indent=2))
        else:
            print(f"Table I reproduction ({trials} trials per size)")
            print(format_table1(rows))
        if policy is not None:
            return _finish_resilient(journal, failures)
        return 0

    if args.command in ("fig4", "fig5", "fig6", "fig7", "fig8"):
        sizes, trials = _sweep_params(args)
        policy, journal, failures = _resilience_setup(args, sizes, trials)
        fig_fn = getattr(figures_mod, f"figure{args.command[3:]}")
        fig = fig_fn(
            sizes=sizes,
            trials=trials,
            seed=args.seed,
            engine=args.engine,
            max_workers=args.workers,
            resilience=policy,
            journal=journal,
            failures=failures,
            builder=args.builder,
        )
        print(fig.render())
        if args.data:
            print()
            print(fig.table())
        if args.svg:
            from repro.experiments.svg_charts import save_figure_svg

            print(f"\nwrote {save_figure_svg(fig, args.svg)}")
        if policy is not None:
            return _finish_resilient(journal, failures)
        return 0

    if args.command == "figures":
        sizes, trials = _sweep_params(args)
        policy, journal, failures = _resilience_setup(args, sizes, trials)
        written = figures_mod.save_all_figures(
            args.out, sizes=sizes, trials=trials, seed=args.seed,
            progress=print, engine=args.engine, max_workers=args.workers,
            resilience=policy, journal=journal, failures=failures,
            builder=args.builder,
        )
        print(f"{len(written)} files in {args.out}")
        if policy is not None:
            return _finish_resilient(journal, failures)
        return 0

    if args.command == "demo":
        if args.dim == 2:
            points = unit_disk(args.nodes, seed=args.seed)
        else:
            points = unit_ball(args.nodes, dim=args.dim, seed=args.seed)
        result = build(points, 0, args.builder, max_out_degree=args.degree)
        summary = result.tree.summary()
        summary.update(
            builder=result.builder,
            rings=result.rings,
            core_delay=result.core_delay,
            bound=result.upper_bound,
            build_seconds=result.build_seconds,
        )
        for key, value in summary.items():
            print(f"{key:>15}: {value}")
        if args.svg:
            from repro.viz import save_svg

            path = save_svg(result.tree, args.svg)
            print(f"{'svg':>15}: {path}")
        if args.save:
            from repro.core.io import save_tree

            path = save_tree(result.tree, args.save)
            print(f"{'saved':>15}: {path}")
        return 0

    if args.command == "diameter":
        if args.dim == 2:
            points = unit_disk(args.nodes, seed=args.seed)
        else:
            points = unit_ball(args.nodes, dim=args.dim, seed=args.seed)
        result = build(
            points, 0, "min-diameter", max_out_degree=args.degree
        )
        diameter = result.extras["diameter"]
        print(f"{'nodes':>15}: {args.nodes}")
        print(f"{'root index':>15}: {result.tree.root}")
        print(f"{'diameter':>15}: {diameter:.4f}")
        print(f"{'radius':>15}: {result.radius:.4f}")
        print(f"{'rings':>15}: {result.rings}")
        return 0

    if args.command == "verify":
        from repro.analysis.verify import run_all_checks

        report = run_all_checks(seed=args.seed, fast=args.fast)
        print(report.render())
        return 0 if report.all_passed else 1

    if args.command == "compare":
        from repro.experiments import extensions

        if args.study == "degrees":
            rows = extensions.degree_sweep(
                n=args.nodes, trials=args.trials, seed=args.seed
            )
        elif args.study == "regions":
            rows = extensions.region_study(
                n=args.nodes, trials=args.trials, seed=args.seed
            )
        else:
            rows = extensions.algorithm_showdown(n=args.nodes, seed=args.seed)
        print(extensions.format_rows(rows))
        return 0

    if args.command == "fuzz":
        from repro.testing.fuzz import run_fuzz

        return run_fuzz(
            seeds=args.seeds,
            budget=args.budget,
            base_seed=args.seed,
            out_dir=args.out,
            mode=args.mode,
            max_crashes=args.max_crashes,
            shrink=not args.no_shrink,
        )

    if args.command == "serve":
        from repro.experiments.resilience import ResiliencePolicy
        from repro.service import BuildCache, run_server

        policy = (
            ResiliencePolicy(timeout=args.timeout)
            if args.timeout is not None
            else None
        )
        cache = BuildCache(
            max_bytes=args.cache_mb * 1024 * 1024, spill_dir=args.spill_dir
        )
        packing_kw = {}
        if args.packing_hosts is not None:
            packing_kw = {
                "population": unit_disk(
                    args.packing_hosts, seed=args.packing_seed
                ),
                "host_caps": args.packing_cap,
            }
        return run_server(
            host=args.host,
            port=args.port,
            cache=cache,
            max_pending=args.max_pending,
            policy=policy,
            max_workers=args.workers,
            **packing_kw,
        )

    if args.command == "serve-fleet":
        from repro.service.fleet import run_fleet

        return run_fleet(
            shards=args.shards,
            max_workers=args.workers,
            max_pending=args.max_pending,
        )

    if args.command == "bench-fleet":
        from repro.service import run_fleet_bench

        report = run_fleet_bench(
            shard_counts=tuple(args.shards),
            n=args.nodes,
            builder=args.builder,
            max_out_degree=args.degree,
            clients=args.clients,
            requests_per_client=args.requests,
            distinct_keys=args.keys,
            replication=args.replication,
            seed=args.seed,
            log=lambda msg: print(msg, file=sys.stderr),
        )
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        ok = True
        for entry in report["curve"]:
            loop = entry["closed_loop"]
            entry_ok = (
                entry["hot"]["builds"] == 1
                and entry["hot"]["errors"] == 0
                and loop["builds"] == loop["distinct_keys"]
                and loop["errors"] == 0
                and entry["oracle_ok"]
            )
            ok = ok and entry_ok
            print(
                f"{entry['shards']} shard(s): hot {entry['hot']['builds']} "
                f"build(s) | loop {loop['builds']}/{loop['distinct_keys']} "
                f"builds, coalesce {loop['coalesce_ratio']:.3f}, "
                f"{loop['throughput_rps']:.0f} req/s | "
                f"oracle {'ok' if entry['oracle_ok'] else 'FAILED'}"
            )
        print(f"report -> {args.out}")
        return 0 if ok else 1

    if args.command == "bench-serve":
        from repro.service import run_bench

        report = run_bench(
            n=args.nodes,
            builder=args.builder,
            max_out_degree=args.degree,
            warm_requests=args.warm,
            clients=args.clients,
            seed=args.seed,
            log=lambda msg: print(msg, file=sys.stderr),
        )
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(
            f"cold {report['cold_seconds']:.4f}s | warm median "
            f"{report['warm_seconds_median'] * 1000:.2f}ms | "
            f"speedup {report['speedup']:.0f}x | "
            f"{report['coalesce']['clients']} concurrent identical "
            f"requests -> {report['coalesce']['builds']} build(s) | "
            f"oracle {'ok' if report['oracle_ok'] else 'FAILED'}"
        )
        print(f"report -> {args.out}")
        return 0 if report["oracle_ok"] and report["coalesce"]["builds"] == 1 else 1

    if args.command == "bench-build":
        from repro.experiments.buildbench import (
            run_build_bench,
            speedup_gate_failures,
        )

        report = run_build_bench(
            n=args.nodes,
            degree=args.degree,
            dim=args.dim,
            seed=args.seed,
            scale_sizes=tuple(args.scale),
            log=lambda msg: print(msg, file=sys.stderr),
        )
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        for name, entry in report["backends"].items():
            wd = entry["phases"]["wire_cells"] + entry["phases"]["delay_pass"]
            print(
                f"{name:9s} total {entry['total_seconds']:8.3f}s  "
                f"wire+delay {wd:8.3f}s  radius {entry['radius']:.9f}"
            )
        if "speedup" in report:
            s = report["speedup"]
            print(
                f"speedup vs reference: wire+delay {s['wire_plus_delay']}x, "
                f"total {s['total']}x"
            )
        print(f"report -> {args.out}")
        failures = speedup_gate_failures(report)
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1 if failures else 0

    if args.command == "bench-congestion":
        from repro.experiments.congestion import (
            DEFAULT_LOADS,
            congestion_figures,
            congestion_gate_failures,
            run_congestion_sweep,
        )

        report = run_congestion_sweep(
            n=args.nodes,
            degree=args.degree,
            seed=args.seed,
            loads=tuple(args.loads) or DEFAULT_LOADS,
            capacity=args.capacity,
            log=lambda msg: print(msg, file=sys.stderr),
        )
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        figs = congestion_figures(report)
        for fig in figs:
            print(fig.render())
            print()
        if args.figures:
            from repro.experiments.svg_charts import save_figure_svg

            out_dir = Path(args.figures)
            out_dir.mkdir(parents=True, exist_ok=True)
            for fig in figs:
                written = save_figure_svg(
                    fig, out_dir / f"FIG_{fig.name}.svg"
                )
                print(f"wrote {written}")
        demo = report["rebuild_demo"]
        print(
            f"rebuild demo: inflation {demo['inflation']:.2f} -> "
            f"{'rebuilt' if demo['rebuilt'] else 'kept'}, loaded radius "
            f"{demo['radius_before']:.3f} -> {demo['radius_after']:.3f}"
        )
        print(f"report -> {args.out}")
        failures = congestion_gate_failures(report)
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1 if failures else 0

    if args.command == "bench-packing":
        from repro.experiments.packing import (
            DEFAULT_OFFERED,
            packing_gate_failures,
            run_packing_sweep,
        )

        report = run_packing_sweep(
            n_hosts=args.hosts,
            cap=args.cap,
            degree=args.degree,
            group_size=args.group_size,
            seed=args.seed,
            offered=tuple(args.offered) or DEFAULT_OFFERED,
            log=lambda msg: print(msg, file=sys.stderr),
        )
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print(
            "admitted (packed vs naive): "
            + ", ".join(
                f"{count}:{p}/{nv}"
                for count, p, nv in zip(
                    report["offered"],
                    report["packed"]["admitted"],
                    report["naive"]["admitted"],
                )
            )
        )
        tcp = report["tcp"]
        print(
            f"tcp: admitted {tcp['admitted']}, "
            f"rejection {'yes' if tcp['rejection'] else 'no'}, "
            f"readmit after evict "
            f"{'ok' if tcp['readmit_ok'] else 'FAILED'}"
        )
        print(f"report -> {args.out}")
        failures = packing_gate_failures(report)
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1 if failures else 0

    if args.command == "scorecard":
        from repro.experiments.scorecard import run_scorecard

        card = run_scorecard(
            sizes=tuple(args.sizes), trials=args.trials, seed=args.seed
        )
        print(card.render())
        return 0 if card.passed else 1

    return 2  # unreachable: argparse enforces a command


if __name__ == "__main__":
    sys.exit(main())
