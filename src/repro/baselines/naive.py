"""Sanity baselines: capped star and random feasible trees.

``capped_star`` is what a naive deployment does: the source feeds its
``D`` nearest receivers directly and everyone else chains behind the
already-attached node closest to them. ``random_feasible_tree`` is the
null model — any tree satisfying the degree bound — used to show how
much structure the real algorithms add.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import MulticastTree
from repro.geometry.points import validate_points

__all__ = ["capped_star", "random_feasible_tree"]


def capped_star(points, source: int = 0, max_out_degree: int = 6) -> MulticastTree:
    """Source feeds its nearest ``D`` receivers; the rest attach greedily
    by pure distance to any attached node with spare fan-out.

    Unlike :func:`repro.baselines.compact_tree.compact_tree` this ignores
    accumulated delay entirely — it is the "connect to whoever is close"
    strategy, and its radius suffers accordingly on large groups.
    """
    points = np.asarray(points, dtype=np.float64)
    validate_points(points)
    n = points.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if max_out_degree < 1:
        raise ValueError("max_out_degree must be at least 1")

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    if n == 1:
        return MulticastTree(points=points, parent=parent, root=source)

    dist_to_source = np.sqrt(np.sum((points - points[source]) ** 2, axis=1))
    receivers = np.array([i for i in range(n) if i != source], dtype=np.int64)
    by_distance = receivers[np.argsort(dist_to_source[receivers], kind="stable")]

    residual = np.full(n, max_out_degree, dtype=np.int64)
    attached = np.zeros(n, dtype=bool)
    attached[source] = True

    # The star part: the source's D nearest receivers attach directly.
    direct = by_distance[:max_out_degree]
    parent[direct] = source
    residual[source] -= direct.size
    attached[direct] = True

    # The overflow part: remaining receivers (still nearest-first) hang
    # off whichever attached node with spare budget is closest to them.
    for v in by_distance[max_out_degree:]:
        v = int(v)
        candidates = np.flatnonzero(attached & (residual > 0))
        if candidates.size == 0:
            raise ValueError("fan-out budgets exhausted")
        dist = np.sqrt(np.sum((points[candidates] - points[v]) ** 2, axis=1))
        u = int(candidates[int(np.argmin(dist))])
        parent[v] = u
        residual[u] -= 1
        attached[v] = True

    return MulticastTree(points=points, parent=parent, root=source)


def random_feasible_tree(
    points, source: int = 0, max_out_degree: int = 6, seed=None
) -> MulticastTree:
    """Attach receivers in random order to a random attached node with
    spare fan-out — the null model for tree quality."""
    points = np.asarray(points, dtype=np.float64)
    validate_points(points)
    n = points.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if max_out_degree < 1:
        raise ValueError("max_out_degree must be at least 1")
    rng = np.random.default_rng(seed)

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    residual = np.full(n, max_out_degree, dtype=np.int64)
    open_nodes = [source]  # attached nodes with spare fan-out

    for v in rng.permutation(n):
        v = int(v)
        if v == source:
            continue
        slot = int(rng.integers(0, len(open_nodes)))
        u = open_nodes[slot]
        parent[v] = u
        residual[u] -= 1
        if residual[u] == 0:
            open_nodes[slot] = open_nodes[-1]
            open_nodes.pop()
        open_nodes.append(v)

    return MulticastTree(points=points, parent=parent, root=source)
