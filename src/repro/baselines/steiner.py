"""Steiner-tree baseline over a k-nearest-neighbour graph.

The congested regime rewards *low fan-out*: under the uplink model
(:mod:`repro.costmodel`) a node forwarding to ``d`` children at offered
load ``L`` drives its uplink to ``d * L / capacity``, so total-length
minimisers — which naturally keep degrees small — stress their hosts
far less than radius-greedy trees that fill every fan-out budget. This
module provides that end of the trade-off: a networkx Steiner-tree
approximation over a kNN graph of the point cloud, oriented away from
the source and repaired to respect the degree cap.

With every member a terminal the Steiner approximation degenerates to
(essentially) a minimum spanning tree — stated here honestly rather
than hidden: the value of the baseline is its degree profile and total
edge length, not Steiner-point savings. The kNN graph keeps the
construction near-linear; disconnected kNN graphs fall back to
augmenting with each component's bridge edge to its nearest outside
neighbour.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import MulticastTree
from repro.geometry.points import validate_points

__all__ = ["steiner_tree"]


def _knn_graph(points: np.ndarray, k: int):
    """Undirected kNN graph with Euclidean weights, connected by force.

    Returns a :class:`networkx.Graph`. If the mutual-kNN union is
    disconnected, each extra component is bridged to its nearest
    outside node (deterministic: smallest bridge first).
    """
    import networkx as nx
    from scipy.spatial import cKDTree

    n = points.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    k_eff = min(k + 1, n)  # +1: each point is its own nearest neighbour
    tree = cKDTree(points)
    dists, idx = tree.query(points, k=k_eff)
    dists = np.atleast_2d(dists)
    idx = np.atleast_2d(idx)
    for v in range(n):
        for d, u in zip(dists[v], idx[v]):
            if int(u) != v:
                graph.add_edge(v, int(u), weight=float(d))

    # Bridge any stray components into the one containing node 0.
    components = [sorted(c) for c in nx.connected_components(graph)]
    if len(components) > 1:
        components.sort(key=lambda c: (0 not in c, c[0]))
        core = list(components[0])
        for comp in components[1:]:
            core_pts = points[core]
            best = (np.inf, -1, -1)
            for v in comp:
                gaps = np.sqrt(np.sum((core_pts - points[v]) ** 2, axis=1))
                at = int(np.argmin(gaps))
                if float(gaps[at]) < best[0]:
                    best = (float(gaps[at]), v, core[at])
            graph.add_edge(best[1], best[2], weight=best[0])
            core.extend(comp)
    return graph


def steiner_tree(
    points,
    source: int = 0,
    max_out_degree: int = 6,
    knn: int = 8,
) -> MulticastTree:
    """Degree-capped Steiner/MST baseline for the congested regime.

    Pipeline: kNN graph → networkx Steiner-tree approximation
    (``mehlhorn``, all nodes as terminals) → orient away from the
    source by BFS → repair any node whose fan-out exceeds the cap by
    reattaching its farthest excess children to the nearest
    already-processed node with spare budget (the same overflow rule as
    :func:`repro.baselines.naive.capped_star`).

    :param knn: neighbours per node in the underlay graph; higher values
        give the Steiner approximation more shortcut edges to work with.
    """
    points = np.asarray(points, dtype=np.float64)
    validate_points(points)
    n = points.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if max_out_degree < 2:
        raise ValueError("max_out_degree must be at least 2")
    if knn < 1:
        raise ValueError("knn must be at least 1")

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    if n == 1:
        return MulticastTree(points=points, parent=parent, root=source)

    import networkx as nx
    from networkx.algorithms.approximation import steinertree

    graph = _knn_graph(points, knn)
    span = steinertree.steiner_tree(
        graph, terminal_nodes=list(range(n)), weight="weight",
        method="mehlhorn",
    )

    # Orient away from the source: BFS over the undirected Steiner tree.
    order = [source]
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for nb in span.neighbors(node):
            if not seen[nb]:
                seen[nb] = True
                parent[nb] = node
                order.append(nb)

    # Degree-cap repair in BFS order: a node keeps its max_out_degree
    # nearest children; the rest reattach to the closest processed node
    # with spare budget (processed = on a root path already, so the
    # reattachment cannot create a cycle).
    residual = np.full(n, max_out_degree, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        if v != source:
            children[int(parent[v])].append(v)
    processed = np.zeros(n, dtype=bool)
    for node in order:
        processed[node] = True
        kids = children[node]
        excess: list[int] = []
        if len(kids) > max_out_degree:
            gaps = np.sqrt(
                np.sum((points[kids] - points[node]) ** 2, axis=1)
            )
            keep_order = np.argsort(gaps, kind="stable")
            excess = [kids[int(i)] for i in keep_order[max_out_degree:]]
            children[node] = [kids[int(i)] for i in keep_order[:max_out_degree]]
        # Claim this node's capacity before reattaching, so it cannot
        # host its own excess children.
        residual[node] -= len(children[node])
        for v in excess:
            hosts = np.flatnonzero(processed & (residual > 0))
            dist = np.sqrt(
                np.sum((points[hosts] - points[v]) ** 2, axis=1)
            )
            u = int(hosts[int(np.argmin(dist))])
            parent[v] = u
            children[u].append(v)
            residual[u] -= 1

    return MulticastTree(points=points, parent=parent, root=source)
