"""Exhaustive optimum for the degree-constrained minimum-radius problem.

The problem is NP-hard (Malouch et al. [11]), so this solver is a test
oracle, not a tool: it enumerates *parent vectors* — every non-source
node independently picks a parent — prunes on degree budgets as it goes,
and keeps the acyclic assignment of smallest radius. The search space is
``(n-1)^(n-1)``, so the solver is capped at tiny ``n``; the test suite
uses it to certify the approximation factors of Theorem 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import MulticastTree
from repro.geometry.points import pairwise_distances, validate_points

__all__ = ["optimal_radius", "optimal_radius_tree", "MAX_EXACT_NODES"]

# 7 nodes -> 6^6 = 46,656 parent vectors; 8 -> 7^7 ~ 824k (a few seconds).
MAX_EXACT_NODES = 8


def _radius_if_tree(
    parent: list[int], source: int, dist: np.ndarray
) -> float | None:
    """Radius of the parent vector, or ``None`` if it contains a cycle.

    Resolves delays by chasing parents with memoisation; a chain longer
    than ``n`` proves a cycle.
    """
    n = len(parent)
    delay = [None] * n
    delay[source] = 0.0
    worst = 0.0
    for start in range(n):
        if delay[start] is not None:
            continue
        chain = []
        node = start
        while delay[node] is None:
            chain.append(node)
            node = parent[node]
            if len(chain) > n:
                return None
            if node in chain:
                return None
        base = delay[node]
        for hop in reversed(chain):
            base = base + dist[parent[hop], hop]
            delay[hop] = base
            if base > worst:
                worst = base
    return worst


def optimal_radius_tree(
    points, source: int = 0, max_out_degree: int = 2
) -> MulticastTree:
    """The exact optimum tree (smallest radius) for a tiny instance.

    :raises ValueError: for more than :data:`MAX_EXACT_NODES` nodes, or
        when the instance is infeasible for the degree bound.
    """
    points = np.asarray(points, dtype=np.float64)
    validate_points(points)
    n = points.shape[0]
    if n > MAX_EXACT_NODES:
        raise ValueError(
            f"exact search is capped at {MAX_EXACT_NODES} nodes; got {n}"
        )
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if max_out_degree < 1:
        raise ValueError("max_out_degree must be at least 1")

    dist = pairwise_distances(points)
    receivers = [v for v in range(n) if v != source]
    parent = [source] * n
    degree_used = [0] * n
    best = {"radius": np.inf, "parent": None}

    def assign(position: int):
        if position == len(receivers):
            radius = _radius_if_tree(parent, source, dist)
            if radius is not None and radius < best["radius"]:
                best["radius"] = radius
                best["parent"] = list(parent)
            return
        v = receivers[position]
        for u in range(n):
            if u == v or degree_used[u] >= max_out_degree:
                continue
            parent[v] = u
            degree_used[u] += 1
            assign(position + 1)
            degree_used[u] -= 1
        parent[v] = source

    assign(0)
    if best["parent"] is None:
        raise ValueError("no feasible tree under the degree bound")
    return MulticastTree(
        points=points,
        parent=np.asarray(best["parent"], dtype=np.int64),
        root=source,
    )


def optimal_radius(points, source: int = 0, max_out_degree: int = 2) -> float:
    """Radius of the exact optimum tree."""
    return optimal_radius_tree(points, source, max_out_degree).radius()


def _diameter_of_parent_vector(
    parent: list[int], root: int, dist: np.ndarray
) -> float:
    """Exact diameter of a tiny tree: max over pairs of path length,
    computed from per-node root paths (O(n^2) in path length sums)."""
    n = len(parent)
    # Node -> list of ancestors (inclusive) and prefix distances.
    chains = []
    for v in range(n):
        chain = [v]
        acc = [0.0]
        walk = v
        while walk != root:
            nxt = parent[walk]
            acc.append(acc[-1] + dist[walk, nxt])
            walk = nxt
            chain.append(walk)
        chains.append((chain, acc))
    worst = 0.0
    for u in range(n):
        chain_u, acc_u = chains[u]
        pos_u = {node: i for i, node in enumerate(chain_u)}
        for v in range(u + 1, n):
            chain_v, acc_v = chains[v]
            # Lowest common ancestor: first node of v's chain on u's.
            for i, node in enumerate(chain_v):
                if node in pos_u:
                    length = acc_v[i] + acc_u[pos_u[node]]
                    break
            worst = max(worst, length)
    return worst


MAX_EXACT_DIAMETER_NODES = 7


def optimal_diameter(points, max_out_degree: int = 2) -> float:
    """Exact minimum diameter over all roots and degree-bounded trees.

    The diameter objective has no designated source, so the search also
    ranges over the root (the out-degree constraint depends on the
    orientation). Capped at :data:`MAX_EXACT_DIAMETER_NODES` nodes.
    """
    points = np.asarray(points, dtype=np.float64)
    validate_points(points)
    n = points.shape[0]
    if n > MAX_EXACT_DIAMETER_NODES:
        raise ValueError(
            "exact diameter search is capped at "
            f"{MAX_EXACT_DIAMETER_NODES} nodes; got {n}"
        )
    if max_out_degree < 1:
        raise ValueError("max_out_degree must be at least 1")
    if n == 1:
        return 0.0

    dist = pairwise_distances(points)
    best = np.inf

    for root in range(n):
        receivers = [v for v in range(n) if v != root]
        parent = [root] * n
        degree_used = [0] * n

        def assign(position: int):
            nonlocal best
            if position == len(receivers):
                radius = _radius_if_tree(parent, root, dist)
                if radius is None or radius >= best:
                    return  # cyclic, or even the radius already loses
                diameter = _diameter_of_parent_vector(parent, root, dist)
                if diameter < best:
                    best = diameter
                return
            v = receivers[position]
            for u in range(n):
                if u == v or degree_used[u] >= max_out_degree:
                    continue
                parent[v] = u
                degree_used[u] += 1
                assign(position + 1)
                degree_used[u] -= 1
            parent[v] = root

        assign(0)

    if not np.isfinite(best):
        raise ValueError("no feasible tree under the degree bound")
    return float(best)
