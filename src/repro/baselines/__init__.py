"""Baseline tree-construction heuristics and an exact solver for tiny n.

The paper's evaluation measures only Algorithm Polar_Grid itself; these
baselines put its numbers in context and back the approximation-factor
tests:

* :func:`compact_tree` — the greedy radius-minimising heuristic in the
  spirit of the compact-tree algorithms of Shi & Turner (the MDDL line of
  work the paper cites as [15]-[17]);
* :func:`bandwidth_latency_tree` — the Bandwidth-Latency join heuristic
  of Chu et al. ([5], [19]): maximise residual fan-out first, break ties
  by latency;
* :func:`steiner_tree` — degree-capped Steiner/MST approximation over
  a kNN graph, the low-fan-out baseline for the congested regime
  (:mod:`repro.costmodel`);
* :func:`capped_star`, :func:`random_feasible_tree` — sanity baselines;
* :func:`optimal_radius_tree` — exhaustive optimum for ``n <= 8``, the
  ground truth for Theorem 1's factor checks.
"""

from repro.baselines.bandwidth_latency import bandwidth_latency_tree
from repro.baselines.compact_tree import compact_tree
from repro.baselines.exact import (
    optimal_diameter,
    optimal_radius,
    optimal_radius_tree,
)
from repro.baselines.naive import capped_star, random_feasible_tree
from repro.baselines.steiner import steiner_tree

__all__ = [
    "bandwidth_latency_tree",
    "capped_star",
    "compact_tree",
    "optimal_diameter",
    "optimal_radius",
    "optimal_radius_tree",
    "random_feasible_tree",
    "steiner_tree",
]
