"""Greedy radius-minimising tree ("compact tree" style baseline).

Grows the tree from the source, always attaching the receiver whose best
feasible attachment yields the smallest source-to-receiver delay — a
degree-constrained analogue of Prim's algorithm on delays, and the
natural representative of the compact-tree heuristics from the
minimum-diameter/minimum-radius degree-limited literature the paper
discusses ([15]-[17], [11]).

Supports heterogeneous fan-out budgets (one per node), which the grid
algorithm does not; the overlay session layer uses it for mixed
populations.

Complexity: O(n^2) time with numpy row operations, O(n) extra memory on
top of the distance evaluations (no full distance matrix is stored), so
it is usable to ~20k nodes.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import MulticastTree
from repro.geometry.points import validate_points

__all__ = ["compact_tree"]


def _degree_budgets(n: int, max_out_degree) -> np.ndarray:
    if np.isscalar(max_out_degree):
        budgets = np.full(n, int(max_out_degree), dtype=np.int64)
    else:
        budgets = np.asarray(max_out_degree, dtype=np.int64)
        if budgets.shape != (n,):
            raise ValueError(
                f"per-node budgets must have shape ({n},); got {budgets.shape}"
            )
    if np.any(budgets < 0):
        raise ValueError("fan-out budgets cannot be negative")
    return budgets


def compact_tree(points, source: int = 0, max_out_degree=6) -> MulticastTree:
    """Greedy min-delay attachment under fan-out budgets.

    :param points: ``(n, d)`` coordinates.
    :param source: root index.
    :param max_out_degree: scalar budget or per-node array. The source's
        budget must be at least 1 (someone has to receive first).
    :raises ValueError: if the budgets cannot host ``n - 1`` receivers
        (discovered when no feasible attachment remains).
    """
    points = np.asarray(points, dtype=np.float64)
    validate_points(points)
    n = points.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    budgets = _degree_budgets(n, max_out_degree)

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    if n == 1:
        return MulticastTree(points=points, parent=parent, root=source)

    delay = np.full(n, np.inf)
    delay[source] = 0.0
    attached = np.zeros(n, dtype=bool)
    attached[source] = True
    remaining_budget = budgets.copy()

    # best_cost[v]: cheapest known delay for unattached v through any
    # attached node with spare budget; best_parent[v]: that node.
    best_cost = np.full(n, np.inf)
    best_parent = np.full(n, -1, dtype=np.int64)

    def offer(u: int):
        """Let attached node ``u`` bid for every unattached receiver."""
        if remaining_budget[u] <= 0:
            return
        dist = np.sqrt(np.sum((points - points[u]) ** 2, axis=1))
        cost = delay[u] + dist
        better = (~attached) & (cost < best_cost)
        best_cost[better] = cost[better]
        best_parent[better] = u

    def rebid(v: int):
        """Recompute v's best offer from scratch (its holder saturated)."""
        candidates = np.flatnonzero(attached & (remaining_budget > 0))
        if candidates.size == 0:
            raise ValueError(
                "fan-out budgets exhausted before all receivers attached"
            )
        dist = np.sqrt(
            np.sum((points[candidates] - points[v]) ** 2, axis=1)
        )
        cost = delay[candidates] + dist
        best = int(np.argmin(cost))
        best_cost[v] = cost[best]
        best_parent[v] = candidates[best]

    offer(source)
    for _ in range(n - 1):
        v = int(np.argmin(np.where(attached, np.inf, best_cost)))
        if not np.isfinite(best_cost[v]):
            raise ValueError(
                "fan-out budgets exhausted before all receivers attached"
            )
        u = int(best_parent[v])
        parent[v] = u
        delay[v] = best_cost[v]
        attached[v] = True
        remaining_budget[u] -= 1
        if remaining_budget[u] == 0:
            # Everyone whose best offer came from u must rebid.
            stale = np.flatnonzero((~attached) & (best_parent == u))
            for w in stale:
                rebid(int(w))
        offer(v)

    return MulticastTree(points=points, parent=parent, root=source)
