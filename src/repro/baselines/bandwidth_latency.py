"""The Bandwidth-Latency join heuristic (Chu et al. [5], Wang-Crowcroft [19]).

Receivers join one at a time (arrival order in a live system). A joiner
evaluates every attached host with a spare forwarding slot and picks the
one giving the *widest* path — the largest bottleneck bandwidth from the
source through that host — breaking ties by the lowest resulting
latency. This is the "widest-shortest" selection of [19] that the End
System Multicast work used to build its overlay trees.

With homogeneous host bandwidths every candidate ties on width and the
rule degenerates to greedy latency in arrival order; the interesting
behaviour appears with bandwidth classes (e.g. university / DSL / modem
hosts), where the heuristic pulls the tree through fat uplinks even when
they are far away — exactly the delay-blindness the paper contrasts its
algorithm against.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import MulticastTree
from repro.geometry.points import validate_points

__all__ = ["bandwidth_latency_tree"]


def bandwidth_latency_tree(
    points,
    source: int = 0,
    max_out_degree=6,
    bandwidth=None,
    join_order=None,
    seed=None,
) -> MulticastTree:
    """Build a tree by sequential widest-shortest (Bandwidth-Latency) joins.

    :param points: ``(n, d)`` coordinates.
    :param max_out_degree: scalar fan-out budget or per-node array
        (slots, i.e. bandwidth divided by stream rate).
    :param bandwidth: per-node uplink bandwidth used for the *width* of a
        path (bottleneck of the uplinks along it). Defaults to all-equal,
        which reduces the rule to greedy-latency joins.
    :param join_order: order in which receivers join; defaults to a
        seeded random permutation.
    :param seed: RNG seed for the default join order.
    """
    points = np.asarray(points, dtype=np.float64)
    validate_points(points)
    n = points.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")

    if np.isscalar(max_out_degree):
        budgets = np.full(n, int(max_out_degree), dtype=np.int64)
    else:
        budgets = np.asarray(max_out_degree, dtype=np.int64)
        if budgets.shape != (n,):
            raise ValueError(f"budgets must have shape ({n},)")
    if np.any(budgets < 0):
        raise ValueError("fan-out budgets cannot be negative")

    if bandwidth is None:
        bandwidth = np.ones(n)
    else:
        bandwidth = np.asarray(bandwidth, dtype=np.float64)
        if bandwidth.shape != (n,):
            raise ValueError(f"bandwidth must have shape ({n},)")
        if np.any(bandwidth <= 0):
            raise ValueError("bandwidths must be positive")

    if join_order is None:
        rng = np.random.default_rng(seed)
        join_order = rng.permutation([i for i in range(n) if i != source])
    else:
        join_order = np.asarray(join_order, dtype=np.int64)
        expected = sorted(i for i in range(n) if i != source)
        if sorted(join_order.tolist()) != expected:
            raise ValueError(
                "join_order must be a permutation of all receiver indices"
            )

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    delay = np.full(n, np.inf)
    delay[source] = 0.0
    # width[v]: bottleneck uplink bandwidth on the source -> v path.
    width = np.full(n, -np.inf)
    width[source] = np.inf
    residual = budgets.copy()
    attached = np.zeros(n, dtype=bool)
    attached[source] = True

    for v in join_order:
        v = int(v)
        candidates = np.flatnonzero(attached & (residual > 0))
        if candidates.size == 0:
            raise ValueError(
                "fan-out budgets exhausted before all receivers attached"
            )
        dist = np.sqrt(np.sum((points[candidates] - points[v]) ** 2, axis=1))
        new_delay = delay[candidates] + dist
        # Width through u: the path bottleneck including u's own uplink.
        new_width = np.minimum(width[candidates], bandwidth[candidates])
        # Widest first, then shortest.
        order = np.lexsort((new_delay, -new_width))
        pick = int(order[0])
        u = int(candidates[pick])
        parent[v] = u
        delay[v] = float(new_delay[pick])
        width[v] = float(new_width[pick])
        residual[u] -= 1
        attached[v] = True

    return MulticastTree(points=points, parent=parent, root=source)
