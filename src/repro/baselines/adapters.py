"""Registry adapters for the baseline heuristics.

The baselines predate :class:`~repro.core.builder.BuildResult` and
return bare :class:`~repro.core.tree.MulticastTree` objects; registering
them here (rather than editing each module) keeps their original
signatures intact for direct callers while giving the
:func:`repro.build` facade a uniform surface — the facade wraps the bare
tree into a ``BuildResult`` with measured ``build_seconds``.
"""

from __future__ import annotations

from repro.baselines.bandwidth_latency import bandwidth_latency_tree
from repro.baselines.compact_tree import compact_tree
from repro.baselines.naive import capped_star, random_feasible_tree
from repro.baselines.steiner import steiner_tree
from repro.core.registry import register_builder

__all__: list[str] = []


register_builder(
    "compact-tree",
    summary="greedy min-delay heuristic (Shi-Turner compact-tree line), "
    "per-node budgets",
    wraps_tree=True,
)(compact_tree)

register_builder(
    "bandwidth-latency",
    summary="widest-shortest sequential joins (Chu et al.), "
    "bandwidth classes",
    wraps_tree=True,
)(bandwidth_latency_tree)

register_builder(
    "capped-star",
    summary="sanity baseline: source star plus nearest-attached overflow",
    wraps_tree=True,
)(capped_star)

register_builder(
    "random",
    summary="null model: random feasible attachment order",
    wraps_tree=True,
)(random_feasible_tree)

register_builder(
    "steiner",
    summary="degree-capped Steiner/MST over a kNN graph "
    "(low-fan-out baseline for the congested regime)",
    wraps_tree=True,
)(steiner_tree)
