"""CI soak for cell-local incremental maintenance under churn.

Replays a long seeded churn trace (5k events by default) through a
:class:`~repro.overlay.dynamic.DynamicOverlay` in ``incremental`` mode
and gates, in order:

1. **periodic oracle** — every ``--check-every`` events the live engine
   state is re-derived from raw coordinates by
   :func:`repro.analysis.oracle.check_incremental_state` (or
   :func:`check_tree` while still bootstrapping), and the overlay's
   radius is compared against a from-scratch polar-grid build: the
   incremental tree may not exceed ``DELAY_DRIFT_BOUND`` times the
   fresh radius;
2. **cell locality** — after the soak, one steady-state join/leave
   probe runs under :func:`repro.obs.capture`; it must emit no
   ``cell_layout``/``wire_cells`` span and no rebuild, only the
   per-event ``overlay.incremental.{join,leave}.total`` counters.

On any violation a self-contained crash artifact (the full trace, the
failing event index, the violations) is written under ``--out`` and the
process exits 1; the CI workflow uploads the artifact. Exit 0 on pass.

Run::

    PYTHONPATH=src python tools/churn_smoke.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.analysis.oracle import check_incremental_state, check_tree
from repro.core.builder import build_polar_grid_tree
from repro.overlay.dynamic import DynamicOverlay
from repro.overlay.incremental import DELAY_DRIFT_BOUND
from repro.workloads.churn import generate_churn_trace


def _trace(n_events: int, dim: int, seed: int):
    """A seeded steady-state trace of at least ``n_events`` events."""
    arrival_rate = 4.0
    events = generate_churn_trace(
        duration=max(10.0, n_events / arrival_rate),
        arrival_rate=arrival_rate,
        mean_session=10.0,
        session_sigma=1.0,
        dim=dim,
        seed=seed,
    )
    # Truncating keeps every leave feasible: a leave's join sorts first.
    return events[:n_events]


def _write_artifact(out_dir: str, payload: dict, log) -> None:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"crash-churn-soak-{payload['seed']}.json"
    path.write_text(json.dumps(payload, indent=2))
    log(f"CHURN SOAK FAILURE: artifact written to {path}")


def _check(overlay: DynamicOverlay, d_max: int) -> list[dict]:
    """Oracle + differential bound; returns violation dicts, [] if clean."""
    if overlay.engine is not None:
        report = check_incremental_state(overlay.engine)
    else:
        report = check_tree(overlay.tree(), d_max=d_max)
    violations = report.to_dict()["violations"]
    if overlay.engine is not None and overlay.n >= 3:
        fresh = build_polar_grid_tree(overlay.tree().points, 0, d_max)
        if fresh.radius > 0.0 and overlay.radius() > (
            DELAY_DRIFT_BOUND * fresh.radius
        ):
            violations.append(
                {
                    "code": "DELAY_DRIFT",
                    "message": (
                        f"incremental radius {overlay.radius():.4f} exceeds "
                        f"{DELAY_DRIFT_BOUND} x fresh radius {fresh.radius:.4f}"
                    ),
                }
            )
    return violations


def run_soak(
    n_events: int,
    check_every: int,
    dim: int,
    d_max: int,
    seed: int,
    out_dir: str,
    log=print,
) -> int:
    """Replay the soak trace with periodic oracle gates; 0 clean, 1 crash."""
    events = _trace(n_events, dim, seed)
    log(
        f"churn soak: {len(events)} events (seed={seed}, dim={dim}, "
        f"d_max={d_max}), oracle every {check_every}"
    )
    overlay = DynamicOverlay(
        np.zeros(dim),
        max_out_degree=d_max,
        rebuild_threshold=None,
        mode="incremental",
        bootstrap=8,
    )
    applied = []
    for i, event in enumerate(events):
        applied.append(
            {"action": event.action, "name": event.name,
             "coords": None if event.coords is None else list(event.coords)}
        )
        if event.action == "join":
            overlay.join(event.name, event.coords)
        else:
            overlay.leave(event.name)
        if (i + 1) % check_every and i + 1 != len(events):
            continue
        violations = _check(overlay, d_max)
        if violations:
            _write_artifact(
                out_dir,
                {
                    "seed": seed,
                    "dim": dim,
                    "d_max": d_max,
                    "event": i,
                    "n": overlay.n,
                    "violations": violations,
                    "events": applied,
                    "reproduce": (
                        f"python tools/churn_smoke.py --events {n_events} "
                        f"--check-every {check_every} --seed {seed}"
                    ),
                },
                log,
            )
            for v in violations:
                log(f"  event {i}: {v['code']}: {v.get('message', '')}")
            return 1
        log(f"  event {i + 1}/{len(events)}: oracle clean, n={overlay.n}")
    if overlay.engine is None:
        log("soak never reached incremental mode — trace too small")
        return 1
    return _probe_locality(overlay, log)


def _probe_locality(overlay: DynamicOverlay, log=print) -> int:
    """One steady-state join/leave must stay cell-local."""
    rng = np.random.default_rng(0)
    with obs.capture() as cap:
        overlay.join("locality-probe", rng.normal(size=overlay.dim))
        join = overlay.last_receipt
        overlay.leave("locality-probe")
        leave = overlay.last_receipt
    global_spans = [
        s["name"]
        for s in cap.spans
        if "cell_layout" in s["name"] or "wire_cells" in s["name"]
    ]
    failures = []
    if global_spans:
        failures.append(f"probe ran global layout spans: {global_spans}")
    for op, receipt in (("join", join), ("leave", leave)):
        if receipt.partial_rebuild or receipt.full_rebuild:
            failures.append(f"probe {op} triggered a rebuild")
    for op in ("join", "leave"):
        counter = cap.metrics.get(f"overlay.incremental.{op}.total")
        if counter is None or counter["value"] != 1.0:
            failures.append(f"probe {op} counter missing or != 1")
    if failures:
        for line in failures:
            log(f"CELL LOCALITY FAILURE: {line}")
        return 1
    log(f"cell-locality probe clean at n={overlay.n}")
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=5000)
    parser.add_argument("--check-every", type=int, default=500)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--d-max", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="results/churn")
    args = parser.parse_args(argv)
    return run_soak(
        args.events,
        args.check_every,
        args.dim,
        args.d_max,
        args.seed,
        args.out,
    )


if __name__ == "__main__":
    sys.exit(main())
