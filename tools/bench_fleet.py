"""Sharded-fleet scaling benchmark; emits and gates BENCH_fleet.json.

Thin shim over :func:`repro.service.bench.run_fleet_bench` (also
exposed as ``python -m repro bench-fleet``). For each fleet size
(default 1/2/4 shards) it drives two phases of closed-loop clients,
each with its own :class:`~repro.service.shard.ShardRouter`, against a
fresh :class:`~repro.service.fleet.ShardFleet`:

1. **hot** — every client fires the same fresh key concurrently; the
   gate is exactly **one build fleet-wide** (deterministic routing
   sends a hot key to one shard, whose coalescing collapses the rest);
2. **closed loop** — mixed traffic over K distinct keys; the gates are
   **builds == K** (each key built once, fleet-wide), **zero client
   errors**, and a clean oracle check of a reconstructed response.

Schema (abridged)::

    {"curve": [
        {"shards": 1,
         "hot": {"clients": int, "builds": int,      # gate: == 1
                 "errors": int},                     # gate: == 0
         "closed_loop": {"requests": int,
                         "builds": int,              # gate: == keys
                         "distinct_keys": int,
                         "coalesce_ratio": float,    # compared by
                                                     #  bench_compare
                         "warm_hit_seconds_median": float,
                         "throughput_rps": float,
                         "errors": int},             # gate: == 0
         "oracle_ok": true,                          # gate: true
         "per_shard": {...}},
        {"shards": 2, ...}, {"shards": 4, ...}]}

Run::

    PYTHONPATH=src python tools/bench_fleet.py --out BENCH_fleet.json

Exit code 0 when every gate holds on every fleet size, 1 otherwise.
``tools/bench_compare.py`` additionally diffs a fresh report against
the committed baseline for regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.service.bench import run_fleet_bench


def gate(report: dict) -> list[str]:
    """All gate violations in ``report`` (empty = pass)."""
    failures = []
    for entry in report["curve"]:
        tag = f"{entry['shards']}-shard fleet"
        hot, loop = entry["hot"], entry["closed_loop"]
        if hot["builds"] != 1:
            failures.append(
                f"{tag}: hot key cost {hot['builds']} builds fleet-wide; "
                "wanted exactly 1"
            )
        if hot["errors"]:
            failures.append(
                f"{tag}: {hot['errors']} hot-phase client errors: "
                f"{hot['error_samples']}"
            )
        if loop["builds"] != loop["distinct_keys"]:
            failures.append(
                f"{tag}: {loop['distinct_keys']} distinct keys cost "
                f"{loop['builds']} builds; wanted one build per key"
            )
        if loop["errors"]:
            failures.append(
                f"{tag}: {loop['errors']} closed-loop client errors: "
                f"{loop['error_samples']}"
            )
        if not entry["oracle_ok"]:
            failures.append(f"{tag}: oracle check failed")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4], metavar="N"
    )
    parser.add_argument("--nodes", type=int, default=5_000)
    parser.add_argument("--builder", default="polar-grid")
    parser.add_argument("--degree", type=int, default=6)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25)
    parser.add_argument("--keys", type=int, default=5)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_fleet.json")
    args = parser.parse_args(argv)

    report = run_fleet_bench(
        shard_counts=tuple(args.shards),
        n=args.nodes,
        builder=args.builder,
        max_out_degree=args.degree,
        clients=args.clients,
        requests_per_client=args.requests,
        distinct_keys=args.keys,
        replication=args.replication,
        seed=args.seed,
        log=lambda msg: print(msg, file=sys.stderr),
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = gate(report)
    for failure in failures:
        print(f"GATE: {failure}", file=sys.stderr)
    print(
        "gates: one-build-per-hot-key, one-build-per-distinct-key, "
        f"zero client errors, oracle -> {'PASS' if not failures else 'FAIL'}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
