"""Backend build benchmark + speedup gate; emits BENCH_build_5m.json.

Thin shim over :func:`repro.experiments.buildbench.run_build_bench`
(also exposed as ``python -m repro bench-build``). One cold build per
backend (reference / numpy / numba) on the same cloud, phase timings
pulled from the ``polar_grid.*`` spans, then two gates:

1. **identical trees** — every backend must produce the same parent
   array and radius (the differential contract of docs/PERFORMANCE.md);
2. **speedup** — at ``n >= 100,000``, the vectorised
   ``wire_cells + delay_pass`` phases must be >= 5x faster than the
   reference backend.

Schema (abridged)::

    {"schema": "bench-build/1",
     "n": int, "degree": int, "dim": int,
     "host": {"cpus": int, "numba": bool},
     "backends": {"reference": {"total_seconds": float,
                                "phases": {"cell_layout": ..,
                                           "representatives": ..,
                                           "wire_cells": ..,
                                           "delay_pass": ..},
                                "radius": float}, ...},
     "identical_trees": bool,                  # gate: true
     "speedup": {"wire_plus_delay": float,     # gate: >= 5 at n >= 100k
                 "total": float},
     "scale": [{"n": int, "total_seconds": float, ...}, ...]}

Run (the committed baseline was produced with ``--scale 1000000
5000000`` on a 1-CPU container — honest serial numbers, like
BENCH_engine)::

    PYTHONPATH=src python tools/bench_build.py --nodes 100000 \
        --out BENCH_build_5m.json

``--check FILE`` re-gates an existing report without running anything
(CI uses it to keep the committed baseline honest). Exit code 0 when
every gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.buildbench import (
    run_build_bench,
    speedup_gate_failures,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", type=int, default=100_000)
    parser.add_argument("--degree", type=int, default=6)
    parser.add_argument("--dim", type=int, default=2, choices=(2, 3, 4))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale",
        type=int,
        nargs="*",
        default=(),
        metavar="N",
        help="extra sizes to run numpy-only scale entries for "
        "(e.g. --scale 1000000 5000000)",
    )
    parser.add_argument(
        "--check",
        metavar="FILE",
        default=None,
        help="re-run the gates over an existing report instead of "
        "benchmarking",
    )
    parser.add_argument("--out", default="BENCH_build_5m.json")
    args = parser.parse_args(argv)

    if args.check:
        report = json.loads(Path(args.check).read_text())
    else:
        report = run_build_bench(
            n=args.nodes,
            degree=args.degree,
            dim=args.dim,
            seed=args.seed,
            scale_sizes=tuple(args.scale),
            log=lambda msg: print(msg, file=sys.stderr),
        )
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report -> {args.out}", file=sys.stderr)

    for name, entry in report["backends"].items():
        wd = entry["phases"]["wire_cells"] + entry["phases"]["delay_pass"]
        print(
            f"{name:9s} total {entry['total_seconds']:8.3f}s  "
            f"wire+delay {wd:8.3f}s  radius {entry['radius']:.9f}"
        )
    if "speedup" in report:
        s = report["speedup"]
        print(
            f"speedup vs reference: wire+delay {s['wire_plus_delay']}x, "
            f"total {s['total']}x"
        )
    failures = speedup_gate_failures(report)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
