"""Offline markdown link checker for README.md and docs/.

Validates every relative link and image target in the repo's markdown
files — inline ``[text](target)``, reference definitions
``[label]: target`` — against the working tree, including ``#fragment``
anchors into markdown files (matched against GitHub-style slugs of their
headings). External ``http(s):`` / ``mailto:`` links are skipped: CI has
no network, and this repo's docs are expected to stand alone.

Run::

    python tools/check_links.py            # README.md + docs/**/*.md
    python tools/check_links.py FILE...    # explicit file list

Exit status is the number of broken links (0 = clean).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` and ``![alt](target)`` — target up to the first
#: unescaped closing paren; titles (``(target "title")``) handled below.
INLINE_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)[^)]*\)")
#: ``[label]: target`` reference-style definitions.
REF_DEF_RE = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE_RE = re.compile(r"^(```|~~~)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)


def strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code so sample links are ignored."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, strip punctuation, dashes."""
    heading = re.sub(r"[`*_\[\]!()]", "", heading)
    heading = re.sub(r"[^\w\- ]", "", heading.lower())
    return heading.strip().replace(" ", "-")


def anchors_of(md_path: Path) -> set[str]:
    text = strip_code(md_path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in HEADING_RE.finditer(text):
        slug = slugify(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def targets_of(md_path: Path):
    text = strip_code(md_path.read_text(encoding="utf-8"))
    for regex in (INLINE_LINK_RE, REF_DEF_RE):
        for match in regex.finditer(text):
            yield match.group(1).strip("<>")


def check_file(md_path: Path) -> list[str]:
    errors: list[str] = []
    for target in targets_of(md_path):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # http:, https:, mailto:, data: — external, skipped
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.is_relative_to(REPO):
                continue  # e.g. GitHub's ../../actions/... badge URLs
            if not resolved.exists():
                errors.append(f"{md_path}: broken link -> {target}")
                continue
        else:
            resolved = md_path
        if fragment and resolved.suffix == ".md" and resolved.is_file():
            if fragment.lower() not in anchors_of(resolved):
                errors.append(f"{md_path}: missing anchor -> {target}")
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = [REPO / "README.md", *sorted((REPO / "docs").rglob("*.md"))]

    errors: list[str] = []
    for md in files:
        if not md.is_file():
            errors.append(f"{md}: no such file")
            continue
        errors.extend(check_file(md))

    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files: {len(errors)} broken links")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
