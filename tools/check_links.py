"""Offline markdown link checker for README.md and docs/.

Validates every relative link and image target in the repo's markdown
files — inline ``[text](target)``, reference definitions
``[label]: target`` — against the working tree, including ``#fragment``
anchors into markdown files (matched against GitHub-style slugs of their
headings). External ``http(s):`` / ``mailto:`` links are skipped: CI has
no network, and this repo's docs are expected to stand alone.

Links inside fenced code blocks are excluded, including fences indented
up to three spaces (e.g. inside lists) and fences with info strings —
example paths in a ``bash`` block must never fail the check. A fence
closes only on a matching marker (same character, at least as long), per
CommonMark, so a ``~~~`` line inside a backtick fence stays content.

Duplicate anchors are errors: two headings in one file that slugify to
the same anchor make ``#fragment`` links ambiguous (GitHub silently
binds the bare slug to the first heading), so the checker exits nonzero
on them rather than letting the ambiguity ship.

Run::

    python tools/check_links.py            # README.md + docs/**/*.md
    python tools/check_links.py FILE...    # explicit file list

Exit status is the number of broken links + duplicate anchors (0 =
clean).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` and ``![alt](target)`` — target up to the first
#: unescaped closing paren; titles (``(target "title")``) handled below.
INLINE_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)[^)]*\)")
#: ``[label]: target`` reference-style definitions.
REF_DEF_RE = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
#: A fence marker: up to 3 leading spaces, then 3+ backticks or tildes.
FENCE_RE = re.compile(r"^ {0,3}(`{3,}|~{3,})")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)


def strip_fences(text: str) -> str:
    """Drop fenced code blocks, keeping everything outside them."""
    out: list[str] = []
    open_fence: str | None = None
    for line in text.splitlines():
        match = FENCE_RE.match(line)
        if match:
            marker = match.group(1)
            if open_fence is None:
                open_fence = marker
                continue
            # CommonMark: a fence closes only on the same character,
            # at least as long as the opener.
            if marker[0] == open_fence[0] and len(marker) >= len(open_fence):
                open_fence = None
                continue
        if open_fence is None:
            out.append(line)
    return "\n".join(out)


def strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code so sample links are ignored."""
    return "\n".join(
        re.sub(r"`[^`]*`", "", line)
        for line in strip_fences(text).splitlines()
    )


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, strip punctuation, dashes."""
    heading = re.sub(r"[`*_\[\]!()]", "", heading)
    heading = re.sub(r"[^\w\- ]", "", heading.lower())
    return heading.strip().replace(" ", "-")


def _heading_slugs(md_path: Path) -> list[str]:
    """Every heading slug of a file, in order, without de-duplication.

    Fenced code blocks are excluded (a ``# comment`` in a shell sample
    is not a heading), but inline code spans keep their text — GitHub
    slugifies ``## `repro.core``` to ``#reprocore``.
    """
    text = strip_fences(md_path.read_text(encoding="utf-8"))
    return [slugify(match.group(1)) for match in HEADING_RE.finditer(text)]


def anchors_of(md_path: Path) -> set[str]:
    """The link-able anchors of a file (GitHub-suffixed for repeats)."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for slug in _heading_slugs(md_path):
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def duplicate_anchors_of(md_path: Path) -> list[str]:
    """Slugs that appear more than once in a file (ambiguous targets)."""
    counts: dict[str, int] = {}
    for slug in _heading_slugs(md_path):
        counts[slug] = counts.get(slug, 0) + 1
    return sorted(slug for slug, n in counts.items() if n > 1)


def targets_of(md_path: Path):
    text = strip_code(md_path.read_text(encoding="utf-8"))
    for regex in (INLINE_LINK_RE, REF_DEF_RE):
        for match in regex.finditer(text):
            yield match.group(1).strip("<>")


def check_file(md_path: Path) -> list[str]:
    errors: list[str] = []
    for target in targets_of(md_path):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # http:, https:, mailto:, data: — external, skipped
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.is_relative_to(REPO):
                continue  # e.g. GitHub's ../../actions/... badge URLs
            if not resolved.exists():
                errors.append(f"{md_path}: broken link -> {target}")
                continue
        else:
            resolved = md_path
        if fragment and resolved.suffix == ".md" and resolved.is_file():
            if fragment.lower() not in anchors_of(resolved):
                errors.append(f"{md_path}: missing anchor -> {target}")
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = [REPO / "README.md", *sorted((REPO / "docs").rglob("*.md"))]

    errors: list[str] = []
    for md in files:
        if not md.is_file():
            errors.append(f"{md}: no such file")
            continue
        errors.extend(check_file(md))
        errors.extend(
            f"{md}: duplicate anchor -> #{slug}"
            for slug in duplicate_anchors_of(md)
        )

    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files: {len(errors)} problems")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
