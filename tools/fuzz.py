"""Compatibility shim: the fuzzer now lives in :mod:`repro.testing.fuzz`.

The promoted harness is seed-corpus driven (instance ``i`` derives from
``SeedSequence((base_seed, i))``, independent of wall-clock and loop
state), runs the full differential + metamorphic checks, shrinks failing
instances and writes crash artifacts to ``results/fuzz/``. Prefer::

    python -m repro fuzz --seeds 200 --budget 60

This shim keeps the old ``--seconds`` interface working: it maps the
time budget onto a large corpus and forwards everything else. Exit codes
are the new ones: 0 clean, 3 crash-found.
"""

from __future__ import annotations

import argparse
import sys

from repro.testing.fuzz import DEFAULT_OUT_DIR, run_fuzz


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seconds",
        type=float,
        default=30.0,
        help="wall-clock budget (legacy flag; caps a 1M-entry corpus)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="explicit corpus size (overrides the time-capped default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--out", default=DEFAULT_OUT_DIR)
    parser.add_argument(
        "--report-every", type=int, default=200, help="progress interval"
    )
    args = parser.parse_args(argv)
    seeds = args.seeds if args.seeds is not None else 1_000_000
    budget = None if args.seeds is not None else args.seconds
    return run_fuzz(
        seeds=seeds,
        budget=budget,
        base_seed=args.seed,
        out_dir=args.out,
        report_every=args.report_every,
    )


if __name__ == "__main__":
    sys.exit(main())
