"""Release-QA fuzzer: random builds, validated, until the clock runs out.

Hammering the builders with random configurations is the cheapest way
to find the next boundary bug (duplicate points, collinear clouds,
extreme aspect ratios, tiny/huge budgets, weird dimensions). Every
iteration builds with a random algorithm/workload/degree combination
and validates the result tree; any exception or invariant violation
prints a reproducer line and exits non-zero.

Usage::

    python tools/fuzz.py --seconds 60 [--seed 0]
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

import numpy as np

from repro.baselines import bandwidth_latency_tree, compact_tree
from repro.core.builder import build_bisection_tree, build_polar_grid_tree
from repro.core.quadtree import build_quadtree_tree


def random_cloud(rng: np.random.Generator) -> np.ndarray:
    """A random point cloud with deliberately nasty shapes mixed in."""
    n = int(rng.integers(2, 400))
    dim = int(rng.choice([2, 2, 2, 3, 4]))
    kind = rng.integers(0, 5)
    if kind == 0:  # plain gaussian
        pts = rng.normal(size=(n, dim))
    elif kind == 1:  # extreme anisotropy
        scales = 10.0 ** rng.uniform(-3, 3, size=dim)
        pts = rng.normal(size=(n, dim)) * scales
    elif kind == 2:  # heavy duplicates
        base = rng.normal(size=(max(1, n // 8), dim))
        pts = base[rng.integers(0, base.shape[0], size=n)]
        pts = pts + rng.normal(scale=1e-9, size=pts.shape)
    elif kind == 3:  # collinear
        direction = rng.normal(size=dim)
        pts = np.outer(rng.uniform(-5, 5, n), direction)
    else:  # clustered far apart
        centers = rng.normal(scale=100.0, size=(3, dim))
        pts = centers[rng.integers(0, 3, size=n)] + rng.normal(size=(n, dim))
    return pts


def one_iteration(seed: int) -> str:
    """Run one random build; returns a description string."""
    rng = np.random.default_rng(seed)
    points = random_cloud(rng)
    n, dim = points.shape
    source = int(rng.integers(0, n))
    algo = rng.integers(0, 5)
    degree = int(rng.choice([2, 3, 4, 6, 8, 10, 20]))
    description = (
        f"seed={seed} algo={algo} n={n} dim={dim} source={source} "
        f"degree={degree}"
    )
    if algo == 0:
        result = build_polar_grid_tree(points, source, degree)
        tree = result.tree
    elif algo == 1:
        tree = build_bisection_tree(points, source, degree).tree
    elif algo == 2:
        tree = build_quadtree_tree(points, source, degree).tree
    elif algo == 3:
        tree = compact_tree(points, source, degree)
    else:
        tree = bandwidth_latency_tree(points, source, degree, seed=seed)
    effective = 2 if (algo in (0, 1, 2) and degree < (1 << dim)) else degree
    tree.validate(max_out_degree=max(effective, degree))
    # Cross-check the delay machinery on every tree.
    from repro.overlay.simulator import simulate_dissemination

    replay = simulate_dissemination(tree)
    if not np.allclose(replay.receive_time, tree.root_delays()):
        raise AssertionError("simulator disagrees with analytic delays")
    return description


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--report-every", type=int, default=200, help="progress interval"
    )
    args = parser.parse_args()

    deadline = time.monotonic() + args.seconds
    iteration = 0
    seed = args.seed
    while time.monotonic() < deadline:
        try:
            one_iteration(seed)
        except Exception:
            print(f"FUZZ FAILURE at seed={seed}")
            print(f"reproduce with: one_iteration({seed})")
            traceback.print_exc()
            return 1
        iteration += 1
        seed += 1
        if iteration % args.report_every == 0:
            print(f"{iteration} iterations, last seed {seed - 1}")
    print(f"fuzzing clean: {iteration} iterations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
