"""Offered-load congestion benchmark + gate; emits BENCH_congestion.json.

Thin shim over :func:`repro.experiments.congestion.run_congestion_sweep`
(also exposed as ``python -m repro bench-congestion``). One seeded
unit-disk cloud, one build per builder (polar-grid / compact-tree /
steiner), effective radius and hottest-uplink stress at each offered
load under the 1/(1 - u) congestion cost model, plus a
congestion-triggered rebuild demo and the three named load-profile
replays (light / heavy / bursty). Gates:

1. **curve shape** — effective radius and stress are monotone
   non-decreasing in offered load, and the load-0 radius equals the
   idle radius;
2. **oracle** — every tree (and every adopted congestion rebuild)
   validates under the scaled cost model;
3. **trigger calibration** — the light profile never trips the rebuild
   threshold, the heavy profile does, and the demo's make-before-break
   rebuild lowers the loaded radius;
4. **determinism** (``--check`` only) — the sweep is re-run with the
   committed report's parameters and every curve must agree within
   1e-9 (the whole suite is closed-form, so this is exact on any host).

Schema (abridged)::

    {"schema": "bench-congestion/1",
     "n": int, "degree": int, "seed": int, "capacity": float,
     "cost_model": {"name": "congestion", ...},
     "loads": [float, ...],
     "builders": {"polar-grid": {"radius": [...], "stress": [...],
                                 "idle_radius": float, "oracle_ok": true},
                  ...},
     "rebuild_demo": {"inflation": float, "triggered": true,
                      "rebuilt": true, "radius_before": float,
                      "radius_after": float, "oracle_ok": true},
     "profiles": {"light": {"triggers": 0, ...}, ...}}

Run::

    PYTHONPATH=src python tools/bench_congestion.py --out BENCH_congestion.json

``--check FILE`` re-runs the (cheap, deterministic) sweep with the
report's own parameters, compares curves, and re-applies every gate.
Exit code 0 when all gates hold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.congestion import (
    DEFAULT_LOADS,
    congestion_gate_failures,
    run_congestion_sweep,
)


def determinism_failures(committed: dict) -> list[str]:
    """Re-run the sweep with the committed params; compare every curve."""
    fresh = run_congestion_sweep(
        n=committed["n"],
        degree=committed["degree"],
        seed=committed["seed"],
        loads=tuple(committed["loads"]),
        builders=tuple(committed["builders"]),
        capacity=committed["capacity"],
        cost_model=committed["cost_model"],
    )
    failures = []
    for name, entry in committed["builders"].items():
        fresh_entry = fresh["builders"][name]
        for key in ("radius", "stress"):
            gaps = [
                abs(a - b) for a, b in zip(entry[key], fresh_entry[key])
            ]
            if max(gaps) > 1e-9:
                failures.append(
                    f"{name}: committed {key} curve drifts from a re-run "
                    f"by {max(gaps):.3e}"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", type=int, default=600)
    parser.add_argument("--degree", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--loads", type=float, nargs="*", default=(), metavar="L"
    )
    parser.add_argument("--capacity", type=float, default=8.0)
    parser.add_argument(
        "--check",
        metavar="FILE",
        default=None,
        help="re-gate an existing report (plus a determinism re-run) "
        "instead of writing a new one",
    )
    parser.add_argument("--out", default="BENCH_congestion.json")
    args = parser.parse_args(argv)

    if args.check:
        report = json.loads(Path(args.check).read_text())
        failures = congestion_gate_failures(report)
        failures += determinism_failures(report)
    else:
        report = run_congestion_sweep(
            n=args.nodes,
            degree=args.degree,
            seed=args.seed,
            loads=tuple(args.loads) or DEFAULT_LOADS,
            capacity=args.capacity,
            log=lambda msg: print(msg, file=sys.stderr),
        )
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report -> {args.out}", file=sys.stderr)
        failures = congestion_gate_failures(report)

    for name, entry in report["builders"].items():
        print(
            f"{name:13s} idle {entry['idle_radius']:7.3f}  "
            f"loaded({report['loads'][-1]}) {entry['radius'][-1]:7.3f}  "
            f"maxdeg {entry['max_out_degree']}  "
            f"oracle {'ok' if entry['oracle_ok'] else 'FAILED'}"
        )
    demo = report["rebuild_demo"]
    print(
        f"rebuild demo: inflation {demo['inflation']:.2f}, loaded radius "
        f"{demo['radius_before']:.3f} -> {demo['radius_after']:.3f}"
    )
    for name in sorted(report["profiles"]):
        entry = report["profiles"][name]
        print(
            f"profile {name:7s} triggers {entry['triggers']:3d}  "
            f"rebuilds {entry['rebuilds']}  "
            f"max inflation {entry['max_inflation']:.2f}"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
