"""Measure serial-vs-parallel engine throughput; emit BENCH_engine.json.

Gives every PR a perf trajectory to compare against: the CI workflow
runs this on a Table-I-shaped workload and uploads the JSON as an
artifact. Schema — a list of entries, one per measured configuration::

    {"name": str,      # "engine-serial" / "engine-process"
     "n": int,         # nodes per trial
     "trials": int,    # trials in the batch
     "workers": int,   # worker processes (1 for serial)
     "seconds": float, # wall-clock for the whole batch
     "speedup": float} # serial seconds / this entry's seconds

Run::

    PYTHONPATH=src python tools/bench_report.py --out BENCH_engine.json
    PYTHONPATH=src python tools/bench_report.py --n 10000 --trials 16 \\
        --workers 4 --force-process

``--force-process`` bypasses the single-CPU fallback and times real
worker processes anyway (useful to validate overhead; on a single CPU
the speedup will honestly sit near or below 1.0).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.experiments.parallel import (
    ProcessExecutor,
    SerialExecutor,
    TrialTask,
    make_executor,
)


def time_batch(executor, tasks) -> float:
    started = time.perf_counter()
    outcomes = executor.map(tasks)
    elapsed = time.perf_counter() - started
    failed = [o for o in outcomes if not hasattr(o, "delay")]
    if failed:
        raise SystemExit(f"{len(failed)} trial(s) failed: {failed[0]}")
    return elapsed


def run_report(
    n: int, trials: int, workers: int, force_process: bool
) -> list[dict]:
    tasks = [TrialTask(n, 6, 2, seed=t) for t in range(trials)]

    with SerialExecutor() as executor:
        serial_s = time_batch(executor, tasks)

    if force_process:
        parallel_executor = ProcessExecutor(max_workers=workers)
    else:
        parallel_executor = make_executor("process", max_workers=workers)
    with parallel_executor as executor:
        engine = executor.name
        actual_workers = getattr(executor, "max_workers", 1)
        parallel_s = time_batch(executor, tasks)

    entries = [
        {
            "name": "engine-serial",
            "n": n,
            "trials": trials,
            "workers": 1,
            "seconds": round(serial_s, 4),
            "speedup": 1.0,
        },
        {
            "name": f"engine-{engine}",
            "n": n,
            "trials": trials,
            "workers": actual_workers,
            "seconds": round(parallel_s, 4),
            "speedup": round(serial_s / parallel_s, 3)
            if parallel_s > 0
            else 0.0,
        },
    ]
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="serial-vs-parallel engine throughput report"
    )
    parser.add_argument("--n", type=int, default=5_000, help="nodes/trial")
    parser.add_argument("--trials", type=int, default=12)
    parser.add_argument(
        "--workers",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the parallel measurement",
    )
    parser.add_argument(
        "--force-process",
        action="store_true",
        help="use real worker processes even where the engine would "
        "fall back to serial (single-CPU hosts)",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    if args.trials < 1:
        parser.error("--trials must be at least 1")
    if args.workers < 1:
        parser.error("--workers must be at least 1")

    entries = run_report(
        args.n, args.trials, args.workers, args.force_process
    )
    Path(args.out).write_text(json.dumps(entries, indent=2) + "\n")
    for e in entries:
        print(
            f"{e['name']:>16}: {e['seconds']:8.3f}s "
            f"(workers={e['workers']}, speedup {e['speedup']:.2f}x)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
