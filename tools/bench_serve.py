"""Closed-loop build-service benchmark; emits BENCH_serve.json.

Thin shim over :func:`repro.service.bench.run_bench` (also exposed as
``python -m repro bench-serve``). Four phases over a real TCP server:

1. **cold** — first request for a fresh key pays for the build;
2. **warm** — repeats of the same request must hit the
   content-addressed cache; the gate is a >= 10x speedup of the median
   warm latency over the cold request;
3. **coalesce** — N concurrent identical requests from separate
   connections; the gate is *exactly one* underlying build;
4. **oracle** — one response is reconstructed client-side and passed
   through :func:`repro.analysis.oracle.check_tree`.

Schema (abridged)::

    {"cold_seconds": float,
     "warm_seconds_median": float,
     "speedup": float,                       # gate: >= 10
     "coalesce": {"clients": int,
                  "builds": int,             # gate: == 1
                  "coalesced_replies": int},
     "oracle_ok": bool,                      # gate: true
     "service_stats": {...}}                 # counters + cache stats

Run::

    PYTHONPATH=src python tools/bench_serve.py --out BENCH_serve.json

Exit code 0 when every gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.service.bench import run_bench

SPEEDUP_GATE = 10.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", type=int, default=20_000)
    parser.add_argument("--builder", default="polar-grid")
    parser.add_argument("--degree", type=int, default=6)
    parser.add_argument("--warm", type=int, default=20)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    report = run_bench(
        n=args.nodes,
        builder=args.builder,
        max_out_degree=args.degree,
        warm_requests=args.warm,
        clients=args.clients,
        seed=args.seed,
        log=lambda msg: print(msg, file=sys.stderr),
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    ok = (
        report["speedup"] >= SPEEDUP_GATE
        and report["coalesce"]["builds"] == 1
        and report["oracle_ok"]
    )
    print(
        f"gates: speedup {report['speedup']:.1f}x (>= {SPEEDUP_GATE:.0f}), "
        f"builds {report['coalesce']['builds']} (== 1), "
        f"oracle {'ok' if report['oracle_ok'] else 'FAILED'} -> "
        f"{'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
