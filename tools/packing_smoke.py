"""CI smoke test for multi-group packing: admit until the pool is full.

Starts a real TCP server hosting a shared population with a per-host
out-degree budget ledger, then admits seeded overlapping multicast
groups until the first rejection. Asserts:

* the rejection is a single structured ``BudgetExhausted`` carrying
  ``requested``/``available`` fields (not a generic failure);
* every admitted group's tree — fetched back over the wire via its
  session handle — passes the aggregate-degree packing oracle
  (:func:`repro.analysis.oracle.check_packing`): summed out-degrees
  within caps, every per-group tree structurally valid;
* after evicting live groups one at a time the rejected group fits
  (the ledger actually returns slots to the pool — one evict need not
  free the *specific* hosts the rejected group is short on, so the
  drill retries after each);
* the service's session counters agree with what the client did.

Fast by design (a few dozen hosts, seconds of wall clock); the CI
workflow runs it on every push. Exit 0 on pass, 1 on any violation.

Run::

    PYTHONPATH=src python tools/packing_smoke.py
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.oracle import check_packing
from repro.core.tree import MulticastTree
from repro.service import BackgroundServer, ServiceClient, ServiceClientError
from repro.workloads.generators import unit_disk


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--hosts", type=int, default=60)
    parser.add_argument("--cap", type=int, default=6)
    parser.add_argument("--degree", type=int, default=6)
    parser.add_argument("--group-size", type=int, default=24)
    parser.add_argument("--max-groups", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    points = unit_disk(args.hosts, seed=args.seed)
    failures: list[str] = []
    rejections: list[dict] = []
    handles = []
    rejected_spec = None

    with BackgroundServer(
        population=points, host_caps=args.cap, max_pending=64
    ) as server:
        with ServiceClient(port=server.port) as client:
            for g in range(args.max_groups):
                rng = np.random.default_rng(
                    np.random.SeedSequence((args.seed, g))
                )
                members = np.sort(
                    rng.choice(
                        args.hosts, size=args.group_size, replace=False
                    )
                )
                spec = {
                    "group": f"g{g}",
                    "members": [int(m) for m in members],
                    "source": int(members[0]),
                }
                try:
                    handles.append(
                        client.admit(
                            spec["group"],
                            members=spec["members"],
                            source=spec["source"],
                            params={"max_out_degree": args.degree},
                        )
                    )
                except ServiceClientError as exc:
                    rejections.append(
                        {"type": exc.error_type, "fields": exc.fields}
                    )
                    rejected_spec = spec
                    break

            if len(rejections) != 1:
                failures.append(
                    f"{len(rejections)} rejections in {args.max_groups} "
                    "offered groups; wanted exactly 1 (raise --max-groups "
                    "or shrink --cap if the pool never filled)"
                )
            for rejection in rejections:
                if rejection["type"] != "BudgetExhausted":
                    failures.append(
                        f"rejection type {rejection['type']!r}; wanted "
                        "BudgetExhausted"
                    )
                fields = rejection["fields"]
                if "requested" not in fields or "available" not in fields:
                    failures.append(
                        f"rejection fields {sorted(fields)} missing "
                        "requested/available detail"
                    )

            trees, memberships, groups = [], [], []
            for handle in handles:
                reply = client.build(handle, include_tree=True)
                if not reply.get("cached"):
                    failures.append(
                        f"session {handle.group_id} fetch missed the cache"
                    )
                trees.append(
                    MulticastTree(
                        np.asarray(reply["points"], dtype=np.float64),
                        np.asarray(reply["parent"], dtype=np.int64),
                        reply["root"],
                    ).validate()
                )
                memberships.append(handle.spec["members"])
                groups.append(handle.group_id)
            oracle = check_packing(
                trees,
                memberships,
                args.cap,
                n_hosts=args.hosts,
                groups=groups,
            )
            if not oracle.ok:
                failures.append(
                    f"packing oracle violations: {oracle.render()}"
                )

            evicted = 0
            retry_rejections = 0
            if rejected_spec is not None and handles:
                readmitted = False
                for handle in handles:
                    client.evict(handle)
                    evicted += 1
                    try:
                        client.admit(
                            rejected_spec["group"],
                            members=rejected_spec["members"],
                            source=rejected_spec["source"],
                            params={"max_out_degree": args.degree},
                        )
                        readmitted = True
                        break
                    except ServiceClientError as exc:
                        retry_rejections += 1
                        if exc.error_type != "BudgetExhausted":
                            failures.append(
                                "readmit retry failed with "
                                f"{exc.error_type!r}; wanted "
                                f"BudgetExhausted: {exc}"
                            )
                            break
                if not readmitted:
                    failures.append(
                        "rejected group never fit, even after evicting "
                        f"all {evicted} live group(s)"
                    )

            stats = client.stats()["sessions"]
            expected_rejected = len(rejections) + retry_rejections
            if stats["rejected"] != expected_rejected:
                failures.append(
                    f"service counted {stats['rejected']} rejections; "
                    f"client saw {expected_rejected}"
                )
            if stats["evicted"] != evicted:
                failures.append(
                    f"service counted {stats['evicted']} evictions; "
                    f"client performed {evicted}"
                )

    if failures:
        print("packing smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"packing smoke ok: {len(handles)} groups admitted, 1 structured "
        "rejection, aggregate-degree oracle clean, readmit after "
        f"{evicted} evict(s) ok"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
