"""CI smoke for the sharded fleet: coalescing and failover, or bust.

Starts a **process-mode** 3-shard fleet (real ``python -m repro serve``
subprocesses on ephemeral ports) and asserts, in order:

1. **one build fleet-wide** — N concurrent clients, each with its own
   :class:`~repro.service.shard.ShardRouter`, request the same hot key;
   the summed ``builds`` counters across all shards must advance by
   exactly 1 (routing sends every copy to the key's primary shard,
   which coalesces them onto one in-flight build);
2. **SIGKILL failover** — the hot key's primary shard is SIGKILLed
   mid-run via the :mod:`repro.testing.faults` plan vocabulary
   (``FaultSpec(kind="crash", trial=<shard index>)`` interpreted by
   :meth:`~repro.service.fleet.ShardFleet.inject`); a fresh wave of
   client requests for the same key must then succeed with **zero
   client-visible failures**, each reply recording the failover to a
   replica;
3. **replica correctness** — one post-kill response is reconstructed
   client-side and pushed through the structural oracle.

Fast by design (a few thousand nodes, seconds of wall clock); the CI
workflow runs it on every push. Exit 0 on pass, 1 on any violation.

Run::

    PYTHONPATH=src python tools/fleet_smoke.py
"""

from __future__ import annotations

import argparse
import sys
import threading

import numpy as np

from repro.analysis.oracle import check_tree
from repro.core.tree import MulticastTree
from repro.service.fleet import ShardFleet
from repro.testing import faults


def _concurrent_wave(fleet, clients, workload, params):
    """Fire one barrier-synchronised request per client; return results."""
    barrier = threading.Barrier(clients)
    replies: list[dict] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def fire():
        try:
            with fleet.router() as router:
                barrier.wait(timeout=30)
                reply = router.build(workload=workload, params=params)
                with lock:
                    replies.append(reply)
        except Exception as exc:  # noqa: BLE001 - collected for the gate
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=fire) for _ in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    return replies, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--nodes", type=int, default=3_000)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--degree", type=int, default=6)
    args = parser.parse_args(argv)

    workload = {"kind": "unit-disk", "n": args.nodes, "seed": 0}
    params = {"max_out_degree": args.degree}
    failures: list[str] = []

    with ShardFleet(
        shards=args.shards, mode="process", max_workers=max(2, args.clients)
    ) as fleet:
        # Phase 1: hot key, one build fleet-wide.
        replies, errors = _concurrent_wave(
            fleet, args.clients, workload, params
        )
        if errors:
            failures.append(f"hot-phase client error: {errors[0]!r}")
        builds = fleet.total_builds()
        if builds != 1:
            failures.append(
                f"{args.clients} concurrent clients x {args.shards} shards "
                f"ran {builds} builds fleet-wide; wanted exactly 1"
            )
        if not replies:
            failures.append("no replies in the hot phase")
            primary = None
        else:
            primary = replies[0]["shard"]
            if any(r["shard"] != primary for r in replies):
                failures.append(
                    "concurrent identical requests landed on different "
                    f"shards: { {r['shard'] for r in replies} }"
                )

        # Phase 2: SIGKILL the primary mid-run, via the faults plan
        # vocabulary; the next wave must fail over with zero errors.
        if primary is not None:
            fleet.inject(
                faults.FaultSpec(
                    kind="crash", trial=int(primary.rsplit("-", 1)[1])
                )
            )
            if fleet.alive()[primary]:
                failures.append(f"{primary} still alive after SIGKILL")
            replies2, errors2 = _concurrent_wave(
                fleet, args.clients, workload, params
            )
            if errors2:
                failures.append(
                    f"{len(errors2)} client-visible failures after killing "
                    f"{primary}: {errors2[0]!r}"
                )
            if len(replies2) != args.clients:
                failures.append(
                    f"{len(replies2)}/{args.clients} replies after the kill"
                )
            survivors = {r["shard"] for r in replies2}
            if primary in survivors:
                failures.append(
                    f"dead shard {primary} answered a post-kill request"
                )
            if not all(r.get("failovers") for r in replies2):
                failures.append(
                    "post-kill replies did not record a failover hop"
                )

            # Phase 3: a replica's answer must be structurally valid.
            with fleet.router() as router:
                reply = router.build(
                    workload=workload, params=params, include_tree=True
                )
            tree = MulticastTree(
                np.asarray(reply["points"], dtype=np.float64),
                np.asarray(reply["parent"], dtype=np.int64),
                reply["root"],
            ).validate()
            oracle = check_tree(tree, d_max=args.degree)
            if not oracle.ok:
                failures.append(f"oracle violations: {oracle.render()}")

    if failures:
        print("fleet smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"fleet smoke ok: {args.shards} shards, {args.clients} clients, "
        "1 build fleet-wide, SIGKILL failover with zero client failures, "
        "oracle clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
