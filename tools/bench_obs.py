"""Measure the observability layer's overhead; emit BENCH_obs.json.

The contract (ISSUE 3 / docs/OBSERVABILITY.md) is that instrumentation
costs < 2% when observability is **disabled** — the default. Two
measurements back that up:

1. **A/B build timing** — median wall time of repeated polar-grid
   builds with observability disabled vs enabled. Disabled is the
   shipping configuration; enabled shows the (small) price of actually
   recording spans and metrics.
2. **No-op microbench** — the per-call cost of ``obs.span`` and
   ``obs.add`` while disabled, times the number of instrumentation
   points a build crosses, divided by the build time. This is the
   *structural* disabled-mode overhead, independent of timer noise.

Schema::

    {"n": int,                        # nodes per build
     "repeats": int,                  # builds per configuration
     "disabled_seconds": float,       # median build, obs off
     "enabled_seconds": float,        # median build, obs on
     "enabled_overhead_pct": float,
     "noop_span_ns": float,           # one disabled obs.span() call
     "noop_add_ns": float,            # one disabled obs.add() call
     "calls_per_build": int,          # instrumentation points crossed
     "disabled_overhead_pct": float}  # structural estimate, the gate

Run::

    PYTHONPATH=src python tools/bench_obs.py --out BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import repro.obs as obs
from repro.core.builder import build_polar_grid_tree
from repro.workloads.generators import unit_disk

#: Observability calls one polar-grid build crosses: the build wrapper
#: span, four phase spans, one counter, one histogram observation.
CALLS_PER_BUILD = 7

GATE_PCT = 2.0


def median_build_seconds(points, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        build_polar_grid_tree(points, 0, 6)
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def noop_ns(fn, calls: int = 200_000) -> float:
    t0 = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - t0) / calls * 1e9


def run(n: int, repeats: int) -> dict:
    points = unit_disk(n, seed=0)
    build_polar_grid_tree(points, 0, 6)  # warm caches/allocator

    obs.reset()  # observability off — the shipping default
    disabled = median_build_seconds(points, repeats)

    obs.enable()
    enabled = median_build_seconds(points, repeats)
    obs.reset()

    span_ns = noop_ns(lambda: obs.span("bench.noop", n=1).__enter__())
    add_ns = noop_ns(lambda: obs.add("bench.noop"))

    per_build_ns = CALLS_PER_BUILD * max(span_ns, add_ns)
    disabled_pct = per_build_ns / (disabled * 1e9) * 100.0
    return {
        "n": n,
        "repeats": repeats,
        "disabled_seconds": round(disabled, 4),
        "enabled_seconds": round(enabled, 4),
        "enabled_overhead_pct": round((enabled / disabled - 1.0) * 100, 2),
        "noop_span_ns": round(span_ns, 1),
        "noop_add_ns": round(add_ns, 1),
        "calls_per_build": CALLS_PER_BUILD,
        "disabled_overhead_pct": round(disabled_pct, 6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=50_000, help="nodes per build")
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args(argv)

    report = run(args.n, args.repeats)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if report["disabled_overhead_pct"] >= GATE_PCT:
        print(
            f"FAIL: disabled-mode overhead "
            f"{report['disabled_overhead_pct']:.3f}% >= {GATE_PCT}%",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: disabled-mode overhead {report['disabled_overhead_pct']:.4f}% "
        f"< {GATE_PCT}% (enabled: {report['enabled_overhead_pct']:+.2f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
