"""Generate the CLI flag reference in docs/ENGINE.md from the parser.

Hand-written flag tables drift the moment someone adds an option; this
tool makes the argparse definitions in :func:`repro.cli.build_parser`
the single source of truth. It renders one markdown table per
subcommand (flag, type/choices, default, help text) and splices the
result between the ``<!-- cli-flags:begin -->`` / ``<!-- cli-flags:end
-->`` markers in ``docs/ENGINE.md``.

Modes::

    python tools/gen_cli_docs.py --check   # exit 1 if docs are stale
    python tools/gen_cli_docs.py --write   # rewrite the marked block

CI runs ``--check`` in the docs job; a failing check means "run
``--write`` and commit".
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import build_parser  # noqa: E402

TARGET = REPO / "docs" / "ENGINE.md"
BEGIN = "<!-- cli-flags:begin -->"
END = "<!-- cli-flags:end -->"
PREAMBLE = (
    "Generated from the argparse definitions in `src/repro/cli.py` by\n"
    "`tools/gen_cli_docs.py --write`; CI fails if this block is stale.\n"
)


def subparsers_of(parser: argparse.ArgumentParser):
    """``(name, subparser)`` pairs, in declaration order."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            seen = set()
            for name, sub in action.choices.items():
                if id(sub) not in seen:  # aliases map to the same parser
                    seen.add(id(sub))
                    yield name, sub


def describe_type(action: argparse.Action) -> str:
    """Human-readable value description for one option."""
    if isinstance(
        action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
    ):
        return "flag"
    if action.choices:
        return " \\| ".join(f"`{c}`" for c in action.choices)
    name = getattr(action.type, "__name__", None) or "str"
    if action.nargs in ("+", "*"):
        return f"{name}…"
    return name


def describe_default(action: argparse.Action) -> str:
    if isinstance(
        action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
    ):
        return "off"
    if action.default is None or action.default == argparse.SUPPRESS:
        return "—"
    return f"`{action.default}`"


def clean_help(action: argparse.Action) -> str:
    text = (action.help or "").strip()
    return re.sub(r"\s+", " ", text)


def option_rows(parser: argparse.ArgumentParser) -> list[str]:
    rows = []
    for action in parser._actions:
        if isinstance(action, argparse._HelpAction):
            continue
        if action.option_strings:
            flag = ", ".join(f"`{s}`" for s in action.option_strings)
        else:
            flag = f"`{action.dest}`"  # positional
        rows.append(
            f"| {flag} | {describe_type(action)} "
            f"| {describe_default(action)} | {clean_help(action)} |"
        )
    return rows


def render() -> str:
    """The full marked block, markers included."""
    parser = build_parser()
    lines = [BEGIN, PREAMBLE]
    for name, sub in subparsers_of(parser):
        lines.append(f"### `python -m repro {name}`")
        lines.append("")
        description = (sub.description or "").strip()
        if description:
            lines.append(description)
            lines.append("")
        lines.append("| flag | value | default | meaning |")
        lines.append("|---|---|---|---|")
        lines.extend(option_rows(sub))
        lines.append("")
    lines.append(END)
    return "\n".join(lines)


def spliced(text: str) -> str:
    """``text`` with the marked block replaced by a fresh render."""
    begin = text.find(BEGIN)
    end = text.find(END)
    if begin == -1 or end == -1:
        raise SystemExit(
            f"{TARGET}: missing {BEGIN} / {END} markers — add them where "
            "the flag reference should live"
        )
    return text[:begin] + render() + text[end + len(END) :]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the generated block is stale",
    )
    mode.add_argument(
        "--write", action="store_true", help="rewrite the generated block"
    )
    args = parser.parse_args(argv)

    current = TARGET.read_text(encoding="utf-8")
    fresh = spliced(current)
    if args.write:
        if fresh != current:
            TARGET.write_text(fresh, encoding="utf-8")
            print(f"updated {TARGET}")
        else:
            print(f"{TARGET} already up to date")
        return 0
    if fresh != current:
        print(
            f"{TARGET}: CLI flag reference is stale — run "
            "'python tools/gen_cli_docs.py --write'",
            file=sys.stderr,
        )
        return 1
    print(f"{TARGET}: CLI flag reference up to date")
    return 0


if __name__ == "__main__":
    sys.exit(main())
