"""Bench-regression gate: fresh BENCH_*.json vs the committed baselines.

CI produces fresh ``BENCH_serve.json`` / ``BENCH_fleet.json`` on every
push and this tool diffs them against the baselines committed in the
repo root, failing (exit 1) on a regression in either of two metric
families:

* **warm-hit latency** — ``warm_seconds_median`` (serve) and each
  fleet entry's ``closed_loop.warm_hit_seconds_median``. *Higher is
  worse.* Tolerance: fresh may exceed baseline by up to
  ``--tolerance`` (default 30%) **plus** an absolute grace of
  ``--latency-grace`` seconds (default 5 ms). The relative tolerance
  absorbs CI-runner vs. laptop speed differences; the absolute grace
  keeps sub-millisecond medians — where a single scheduler hiccup is
  a large *percentage* — from flapping the gate. A genuine cache-path
  regression (extra copy, lost cache hit → rebuild) blows through
  both.
* **coalescing ratio** — the fraction of requests absorbed without a
  build: serve's ``(coalesced + cached) / clients`` and each fleet
  entry's ``closed_loop.coalesce_ratio``. *Lower is worse*, and the
  ratio is machine-independent, so the only slack is the same
  ``--tolerance``: fresh must stay above ``baseline * (1 -
  tolerance)``. Duplicate builds for one key cannot hide in it.

Throughput and cold-build times are *reported* but not gated — they
measure the CI runner more than the code.

Run::

    PYTHONPATH=src python tools/bench_compare.py \\
        --serve BENCH_serve.json results/bench/BENCH_serve.json \\
        --fleet BENCH_fleet.json results/bench/BENCH_fleet.json

Each flag takes ``BASELINE FRESH``; pass either or both pairs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Relative slack on every gated metric (0.30 = 30% worse allowed).
DEFAULT_TOLERANCE = 0.30

#: Absolute latency grace in seconds, added on top of the relative
#: tolerance (see the module docstring for why).
DEFAULT_LATENCY_GRACE = 0.005


class Comparison:
    """Accumulates metric rows and verdicts for one gate run."""

    def __init__(self, tolerance: float, latency_grace: float):
        """A fresh comparison with the given slacks."""
        self.tolerance = tolerance
        self.latency_grace = latency_grace
        self.rows: list[tuple[str, float, float, bool, str]] = []

    def latency(self, name: str, baseline: float, fresh: float) -> None:
        """Gate a higher-is-worse latency metric."""
        limit = baseline * (1 + self.tolerance) + self.latency_grace
        self.rows.append(
            (name, baseline, fresh, fresh <= limit, f"<= {limit:.6f}")
        )

    def ratio(self, name: str, baseline: float, fresh: float) -> None:
        """Gate a lower-is-worse ratio metric."""
        limit = baseline * (1 - self.tolerance)
        self.rows.append(
            (name, baseline, fresh, fresh >= limit, f">= {limit:.3f}")
        )

    def info(self, name: str, baseline: float, fresh: float) -> None:
        """Report a metric without gating it."""
        self.rows.append((name, baseline, fresh, True, "(not gated)"))

    @property
    def failures(self) -> list[str]:
        """Names of every gated metric that regressed."""
        return [name for name, _, _, ok, _ in self.rows if not ok]

    def render(self) -> str:
        """A fixed-width table of every comparison row."""
        lines = [
            f"{'metric':<44} {'baseline':>12} {'fresh':>12} "
            f"{'verdict':<8} bound"
        ]
        for name, baseline, fresh, ok, bound in self.rows:
            lines.append(
                f"{name:<44} {baseline:>12.6f} {fresh:>12.6f} "
                f"{'ok' if ok else 'REGRESSED':<8} {bound}"
            )
        return "\n".join(lines)


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"bench report not found: {path}") from None


def _serve_coalesce_ratio(report: dict) -> float:
    coalesce = report["coalesce"]
    absorbed = coalesce["coalesced_replies"] + coalesce["cached_replies"]
    return absorbed / coalesce["clients"] if coalesce["clients"] else 0.0


def compare_serve(cmp: Comparison, baseline: dict, fresh: dict) -> None:
    """Add the BENCH_serve.json rows to ``cmp``."""
    cmp.latency(
        "serve.warm_seconds_median",
        baseline["warm_seconds_median"],
        fresh["warm_seconds_median"],
    )
    cmp.ratio(
        "serve.coalesce_ratio",
        _serve_coalesce_ratio(baseline),
        _serve_coalesce_ratio(fresh),
    )
    cmp.info("serve.cold_seconds", baseline["cold_seconds"], fresh["cold_seconds"])


def compare_fleet(cmp: Comparison, baseline: dict, fresh: dict) -> None:
    """Add the BENCH_fleet.json rows to ``cmp``, matched by shard count."""
    fresh_by_shards = {e["shards"]: e for e in fresh["curve"]}
    for base_entry in baseline["curve"]:
        shards = base_entry["shards"]
        fresh_entry = fresh_by_shards.get(shards)
        if fresh_entry is None:
            cmp.rows.append(
                (f"fleet[{shards}].missing", 1.0, 0.0, False, "entry present")
            )
            continue
        base_loop = base_entry["closed_loop"]
        fresh_loop = fresh_entry["closed_loop"]
        if base_loop.get("warm_hit_seconds_median") is not None:
            cmp.latency(
                f"fleet[{shards}].warm_hit_seconds_median",
                base_loop["warm_hit_seconds_median"],
                fresh_loop["warm_hit_seconds_median"] or float("inf"),
            )
        cmp.ratio(
            f"fleet[{shards}].coalesce_ratio",
            base_loop["coalesce_ratio"],
            fresh_loop["coalesce_ratio"],
        )
        cmp.info(
            f"fleet[{shards}].throughput_rps",
            base_loop["throughput_rps"],
            fresh_loop["throughput_rps"],
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--serve",
        nargs=2,
        metavar=("BASELINE", "FRESH"),
        help="compare a BENCH_serve.json pair",
    )
    parser.add_argument(
        "--fleet",
        nargs=2,
        metavar=("BASELINE", "FRESH"),
        help="compare a BENCH_fleet.json pair",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative regression slack (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--latency-grace",
        type=float,
        default=DEFAULT_LATENCY_GRACE,
        metavar="SECS",
        help="absolute latency grace added to the relative slack "
        "(default 0.005s; see the module docstring)",
    )
    args = parser.parse_args(argv)
    if not args.serve and not args.fleet:
        parser.error("pass --serve and/or --fleet (BASELINE FRESH pairs)")

    cmp = Comparison(args.tolerance, args.latency_grace)
    if args.serve:
        compare_serve(cmp, _load(args.serve[0]), _load(args.serve[1]))
    if args.fleet:
        compare_fleet(cmp, _load(args.fleet[0]), _load(args.fleet[1]))

    print(cmp.render())
    failures = cmp.failures
    if failures:
        print(
            f"\nbench regression gate FAILED: {', '.join(failures)} "
            f"(tolerance {args.tolerance:.0%} "
            f"+ {args.latency_grace * 1000:.0f}ms latency grace)",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nbench regression gate ok "
        f"({len(cmp.rows)} metrics, tolerance {args.tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
