"""Multi-group packing benchmark + gate; emits BENCH_packing.json.

Thin shim over :func:`repro.experiments.packing.run_packing_sweep`
(also exposed as ``python -m repro bench-packing``). One seeded
unit-disk host population with a uniform per-host out-degree cap
serves an increasing number of offered multicast groups under two
admission strategies — **packed** (``packed-polar-grid`` built against
the allocator's residual budgets) and **naive** (plain ``polar-grid``,
blind to co-tenants, admitted only if its degrees happen to fit) —
plus a TCP phase exercising admit/evict/readmit end to end. Gates:

1. **oracle** — every admitted configuration at every offered count
   passes :func:`repro.analysis.oracle.check_packing` (aggregate
   out-degrees within caps, every per-group tree valid);
2. **packing wins** — packed admits at least as many groups as naive
   everywhere and strictly more somewhere;
3. **admission shape** — admitted counts are monotone non-decreasing
   and never exceed the offer;
4. **rejection path** — over-subscription yields a structured
   ``BudgetExhausted`` (requested/available fields) both in-process
   and over TCP, and the rejected group fits after one evict;
5. **determinism** (``--check`` only) — a re-run with the committed
   report's parameters must reproduce every curve within 1e-9.

Schema (abridged)::

    {"schema": "bench-packing/1",
     "n_hosts": int, "cap": int, "degree": int, "group_size": int,
     "seed": int, "offered": [int, ...],
     "packed": {"admitted": [...], "oracle_ok": [...],
                "inflation_mean": [...], "inflation_max": [...],
                "rejection": {"group", "type", "fields"}},
     "naive": {"admitted": [...], "oracle_ok": [...], "rejection": ...},
     "tcp": {"admitted": int, "rejection": {...}, "readmit_ok": true,
             "evicted_group": str, "sessions": {...}}}

Run::

    PYTHONPATH=src python tools/bench_packing.py --out BENCH_packing.json

``--check FILE`` re-runs the (cheap, deterministic) sweep with the
report's own parameters, compares curves, and re-applies every gate.
Exit code 0 when all gates hold, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.packing import (
    DEFAULT_OFFERED,
    packing_gate_failures,
    run_packing_sweep,
)


def determinism_failures(committed: dict) -> list[str]:
    """Re-run the sweep with the committed params; compare every curve."""
    fresh = run_packing_sweep(
        n_hosts=committed["n_hosts"],
        cap=committed["cap"],
        degree=committed["degree"],
        group_size=committed["group_size"],
        seed=committed["seed"],
        offered=tuple(committed["offered"]),
    )
    failures = []
    for name in ("packed", "naive"):
        if committed[name]["admitted"] != fresh[name]["admitted"]:
            failures.append(
                f"{name}: committed admitted curve "
                f"{committed[name]['admitted']} drifts from a re-run "
                f"{fresh[name]['admitted']}"
            )
    for key in ("inflation_mean", "inflation_max"):
        gaps = [
            abs(a - b)
            for a, b in zip(committed["packed"][key], fresh["packed"][key])
        ]
        if gaps and max(gaps) > 1e-9:
            failures.append(
                f"packed: committed {key} curve drifts from a re-run "
                f"by {max(gaps):.3e}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--hosts", type=int, default=120)
    parser.add_argument("--cap", type=int, default=8)
    parser.add_argument("--degree", type=int, default=6)
    parser.add_argument("--group-size", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--offered", type=int, nargs="*", default=(), metavar="G"
    )
    parser.add_argument(
        "--check",
        metavar="FILE",
        default=None,
        help="re-gate an existing report (plus a determinism re-run) "
        "instead of writing a new one",
    )
    parser.add_argument("--out", default="BENCH_packing.json")
    args = parser.parse_args(argv)

    if args.check:
        report = json.loads(Path(args.check).read_text())
        failures = packing_gate_failures(report)
        failures += determinism_failures(report)
    else:
        report = run_packing_sweep(
            n_hosts=args.hosts,
            cap=args.cap,
            degree=args.degree,
            group_size=args.group_size,
            seed=args.seed,
            offered=tuple(args.offered) or DEFAULT_OFFERED,
            log=lambda msg: print(msg, file=sys.stderr),
        )
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report -> {args.out}", file=sys.stderr)
        failures = packing_gate_failures(report)

    for count, p, nv, infl in zip(
        report["offered"],
        report["packed"]["admitted"],
        report["naive"]["admitted"],
        report["packed"]["inflation_mean"],
    ):
        print(
            f"offered {count:3d}: packed {p:3d}  naive {nv:3d}  "
            f"inflation {infl:5.3f}"
        )
    tcp = report["tcp"]
    print(
        f"tcp: admitted {tcp['admitted']}, "
        f"rejection {'yes' if tcp['rejection'] else 'no'}, "
        f"readmit after evict {'ok' if tcp['readmit_ok'] else 'FAILED'}"
    )
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
