"""CI smoke test for the build service: coalescing is not optional.

Starts a real TCP server, fires N concurrent identical build requests
from independent connections, and asserts — via the service's build
counter — that exactly **one** underlying build ran: every other
request must be answered by coalescing onto the in-flight build or by
the content-addressed cache. One response is then reconstructed
client-side and pushed through the structural oracle.

Fast by design (a few thousand nodes, seconds of wall clock); the CI
workflow runs it on every push. Exit 0 on pass, 1 on any violation.

Run::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.analysis.oracle import check_tree
from repro.service import BackgroundServer, ServiceClient


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--nodes", type=int, default=5_000)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--degree", type=int, default=6)
    args = parser.parse_args(argv)

    workload = {"kind": "unit-disk", "n": args.nodes, "seed": 0}
    params = {"max_out_degree": args.degree}
    failures: list[str] = []

    with BackgroundServer(max_workers=max(2, args.clients)) as server:
        barrier = threading.Barrier(args.clients)
        replies: list[dict] = []
        errors: list[BaseException] = []

        def fire():
            try:
                with ServiceClient(port=server.port) as client:
                    barrier.wait(timeout=30)
                    replies.append(
                        client.build(workload=workload, params=params)
                    )
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=fire) for _ in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)

        if errors:
            failures.append(f"client error: {errors[0]!r}")
        if len(replies) != args.clients:
            failures.append(
                f"{len(replies)}/{args.clients} replies arrived"
            )
        builds = server.service.builds
        if builds != 1:
            failures.append(
                f"{args.clients} concurrent identical requests ran "
                f"{builds} builds; wanted exactly 1"
            )
        absorbed = sum(
            1 for r in replies if r.get("coalesced") or r.get("cached")
        )
        if absorbed != len(replies) - 1:
            failures.append(
                f"{absorbed} replies coalesced/cached; wanted "
                f"{len(replies) - 1}"
            )

        with ServiceClient(port=server.port) as client:
            reply, tree = client.build_tree(workload=workload, params=params)
            if not reply["cached"]:
                failures.append("post-smoke repeat missed the cache")
            oracle = check_tree(tree, d_max=args.degree)
            if not oracle.ok:
                failures.append(f"oracle violations: {oracle.render()}")

    if failures:
        print("service smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"service smoke ok: {args.clients} concurrent requests, "
        f"1 build, oracle clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
