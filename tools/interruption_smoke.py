"""Kill-and-resume drill for the resilience layer (CI interruption smoke).

The drill, end to end:

1. **Reference run** — a clean ``table1`` sweep with ``--checkpoint``,
   establishing the ground-truth record stream.
2. **Victim run** — the same sweep under the process engine
   (``REPRO_FORCE_PROCESS_ENGINE=1`` so single-CPU runners still fork
   real workers), slowed by an injected per-trial ``sleep`` fault so the
   kill reliably lands mid-flight. Once the journal holds at least
   ``--min-records`` completed trials, the whole process group gets
   ``SIGKILL`` — no cleanup handlers, exactly like the OOM killer.
3. **Resume run** — the same sweep with ``--resume`` against the
   victim's journal. Completed trials must be replayed, not recomputed;
   only the in-flight tail is re-run.
4. **Verdict** — the resumed journal must (a) byte-preserve the
   victim's complete-line prefix and (b) yield a merged record stream
   identical (modulo per-trial wall-clock ``seconds``) to the reference.

Exit status 0 on success, 1 on any violated property. The journals are
left in ``--workdir`` so CI can upload them as artifacts.

Run locally::

    python tools/interruption_smoke.py --workdir /tmp/smoke
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOTAL_DEGREES = 2  # table1 sweeps out-degrees 6 and 2


def sweep_command(args, journal_flag: str, journal: Path) -> list[str]:
    """The ``python -m repro table1`` invocation for one drill stage."""
    return [
        sys.executable,
        "-m",
        "repro",
        "table1",
        "--sizes",
        *[str(s) for s in args.sizes],
        "--trials",
        str(args.trials),
        "--seed",
        str(args.seed),
        journal_flag,
        str(journal),
    ]


def sweep_env(faults_plan: str | None = None, force_process: bool = False):
    """Subprocess environment: repo on PYTHONPATH, optional fault plan."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FORCE_PROCESS_ENGINE", None)
    if faults_plan is not None:
        env["REPRO_FAULTS"] = faults_plan
    if force_process:
        env["REPRO_FORCE_PROCESS_ENGINE"] = "1"
    return env


def journal_records(path: Path) -> dict[str, dict]:
    """``key -> record`` from a journal, wall-clock field stripped."""
    records: dict[str, dict] = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail — the kill case this tool exists for
        if entry.get("type") == "record":
            record = dict(entry["record"])
            record.pop("seconds", None)
            records[entry["key"]] = record
    return records


def count_records(path: Path) -> int:
    """Completed records currently in a (possibly growing) journal."""
    if not path.exists():
        return 0
    return len(journal_records(path))


def complete_line_prefix(raw: bytes) -> bytes:
    """The prefix of ``raw`` made of whole lines (drops any torn tail)."""
    end = raw.rfind(b"\n")
    return raw[: end + 1] if end != -1 else b""


def run_reference(args, workdir: Path) -> Path:
    """Stage 1: the uninterrupted ground-truth sweep."""
    journal = workdir / "reference.jsonl"
    result = subprocess.run(
        sweep_command(args, "--checkpoint", journal),
        env=sweep_env(),
        capture_output=True,
        text=True,
        timeout=args.stage_timeout,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"reference run failed (rc={result.returncode}):\n"
            f"{result.stdout}\n{result.stderr}"
        )
    return journal


def run_victim(args, workdir: Path) -> tuple[Path, bytes]:
    """Stage 2: the sweep that gets SIGKILLed mid-flight.

    Returns the journal path and its bytes as captured right after the
    kill (before the resume touches the file).
    """
    journal = workdir / "victim.jsonl"
    # Every trial sleeps a little: the brake that guarantees the kill
    # lands while trials are still in flight.
    plan = json.dumps(
        {"faults": [{"kind": "sleep", "seconds": args.sleep}]}
    )
    command = sweep_command(args, "--checkpoint", journal) + [
        "--engine",
        "process",
        "--workers",
        "2",
    ]
    victim = subprocess.Popen(
        command,
        env=sweep_env(faults_plan=plan, force_process=True),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,  # killpg must not hit this process
    )
    total = len(args.sizes) * TOTAL_DEGREES * args.trials
    deadline = time.monotonic() + args.stage_timeout
    try:
        while count_records(journal) < args.min_records:
            if victim.poll() is not None:
                raise RuntimeError(
                    f"victim exited (rc={victim.returncode}) before "
                    f"{args.min_records} records landed — raise --sleep"
                )
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"victim produced {count_records(journal)} records "
                    f"in {args.stage_timeout}s; wanted {args.min_records}"
                )
            time.sleep(0.05)
    finally:
        if victim.poll() is None:
            os.killpg(os.getpgid(victim.pid), signal.SIGKILL)
        victim.wait()

    pre_kill = journal.read_bytes()
    survivors = len(journal_records(journal))
    if survivors >= total:
        raise RuntimeError(
            f"victim finished all {total} trials before the kill landed "
            f"— raise --sleep or lower --min-records"
        )
    print(
        f"victim killed with {survivors}/{total} trials journaled",
        flush=True,
    )
    return journal, pre_kill


def run_resume(args, journal: Path) -> None:
    """Stage 3: resume the killed sweep to completion."""
    result = subprocess.run(
        sweep_command(args, "--resume", journal),
        env=sweep_env(),
        capture_output=True,
        text=True,
        timeout=args.stage_timeout,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"resume run failed (rc={result.returncode}):\n"
            f"{result.stdout}\n{result.stderr}"
        )
    if "resuming:" not in result.stderr:
        raise RuntimeError(
            f"resume run did not report replayed trials:\n{result.stderr}"
        )


def verdict(args, reference: Path, victim: Path, pre_kill: bytes) -> list[str]:
    """Stage 4: the properties the drill asserts. Returns violations."""
    problems = []
    prefix = complete_line_prefix(pre_kill)
    final = victim.read_bytes()
    if not final.startswith(prefix):
        problems.append(
            "resumed journal does not byte-preserve the pre-kill prefix"
        )
    ref_records = journal_records(reference)
    victim_records = journal_records(victim)
    total = len(args.sizes) * TOTAL_DEGREES * args.trials
    if len(ref_records) != total:
        problems.append(
            f"reference journal has {len(ref_records)} records, "
            f"expected {total}"
        )
    if victim_records != ref_records:
        missing = sorted(set(ref_records) - set(victim_records))
        extra = sorted(set(victim_records) - set(ref_records))
        diff = sorted(
            k
            for k in set(ref_records) & set(victim_records)
            if ref_records[k] != victim_records[k]
        )
        problems.append(
            "resumed record stream differs from the uninterrupted run: "
            f"missing={missing} extra={extra} differing={diff}"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL a table1 sweep mid-flight, resume it, and "
        "verify the merged record stream matches an uninterrupted run."
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[30, 40], metavar="N"
    )
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sleep",
        type=float,
        default=0.4,
        help="injected per-trial brake so the kill lands mid-flight",
    )
    parser.add_argument(
        "--min-records",
        type=int,
        default=2,
        help="completed trials to wait for before killing the victim",
    )
    parser.add_argument(
        "--stage-timeout",
        type=float,
        default=180.0,
        help="per-stage subprocess timeout in seconds",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for the journals (kept; uploadable as a CI "
        "artifact). Default: a fresh temp directory.",
    )
    args = parser.parse_args(argv)

    workdir = Path(
        args.workdir or tempfile.mkdtemp(prefix="interruption-smoke-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    print(f"journals under {workdir}", flush=True)

    reference = run_reference(args, workdir)
    print(f"reference run complete: {count_records(reference)} records")
    victim, pre_kill = run_victim(args, workdir)
    run_resume(args, victim)
    problems = verdict(args, reference, victim, pre_kill)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print(
            f"PASS: kill-and-resume preserved all "
            f"{count_records(victim)} records"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
