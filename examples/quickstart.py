"""Quickstart: build a minimal-delay multicast tree in ten lines.

Generates hosts uniformly in the unit disk (the paper's Section V
workload), builds the asymptotically optimal polar-grid tree with
out-degree 6, and prints the metrics the paper reports.

Run:  python examples/quickstart.py [n]
"""

import sys

from repro import build, unit_disk


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000

    # Row 0 is the source at the disk centre; rows 1.. are receivers.
    points = unit_disk(n, seed=7)

    result = build(points, source=0, spec="polar-grid", max_out_degree=6)
    tree = result.tree
    tree.validate(max_out_degree=6)

    print(f"nodes                : {n}")
    print(f"grid rings (k)       : {result.rings}")
    print(f"max delay (radius)   : {tree.radius():.4f}")
    print(f"core delay           : {result.core_delay:.4f}")
    print(f"eq.(7) upper bound   : {result.upper_bound:.4f}")
    print(f"max out-degree used  : {tree.max_out_degree()}")
    print(f"build time           : {result.build_seconds:.3f}s")
    print()
    print("The optimal radius approaches 1 (the farthest receiver) as n")
    print("grows; the tree's max delay should be within a few percent.")


if __name__ == "__main__":
    main()
