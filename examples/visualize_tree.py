"""Render the polar-grid structure as SVG files.

Builds trees for each algorithm variant on the same 1,500-node disk and
writes them next to this script. Open the SVGs in a browser:

* ``polar_grid_deg6.svg`` — the binary core tree (dark radial spokes)
  with 4-way bisection fans inside the grid cells;
* ``polar_grid_deg2.svg`` — everything stretched into chains of two;
* ``bisection_only.svg``  — the Section II constant-factor algorithm on
  its own: one giant ring segment, recursively quartered;
* ``compact_tree.svg``    — the greedy baseline for contrast: excellent
  delay, but no visible structure to maintain decentralised.

Edge colour encodes hop depth (dark = close to the source).

Run:  python examples/visualize_tree.py [n]
"""

import sys
from pathlib import Path

from repro import build, unit_disk
from repro.viz import save_svg

OUT_DIR = Path(__file__).resolve().parent


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1_500
    points = unit_disk(n, seed=42)

    trees = {
        "polar_grid_deg6": build(points, 0, "polar-grid", max_out_degree=6).tree,
        "polar_grid_deg2": build(points, 0, "polar-grid", max_out_degree=2).tree,
        "bisection_only": build(points, 0, "bisection", max_out_degree=4).tree,
        "compact_tree": build(points, 0, "compact-tree", max_out_degree=6).tree,
    }

    for name, tree in trees.items():
        path = save_svg(tree, OUT_DIR / f"{name}.svg", size=700)
        print(
            f"{name:18} radius={tree.radius():.3f} "
            f"depth={int(tree.depths().max()):3d}  -> {path.name}"
        )

    print("\nOpen the SVGs to see the paper's Figure 1/2 geometry emerge:")
    print("the grid's aligned ring segments and the binary core spokes.")


if __name__ == "__main__":
    main()
