"""A research workflow: checkpointed campaign + convergence analysis.

How you would actually *use* this repository to study the algorithm:

1. declare an experiment campaign (sizes x degrees x trials);
2. run it with per-trial checkpointing — interrupt and re-run freely,
   finished trials are never recomputed;
3. fit the convergence rate of the excess delay;
4. verify the paper's formal claims on the way out.

Run:  python examples/research_workflow.py [workdir]
"""

import sys
import tempfile

from repro.analysis.convergence import fit_power_law
from repro.analysis.verify import run_all_checks
from repro.experiments.campaign import Campaign, ExperimentSpec
from repro.experiments.reporting import format_table


def main() -> None:
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()

    spec = ExperimentSpec(
        name="disk-degree6",
        sizes=(500, 2_000, 8_000, 32_000),
        degrees=(6,),
        trials=5,
        seed=0,
    )
    campaign = Campaign(spec, workdir)
    print(f"campaign directory: {campaign.directory}")
    print("status before:", campaign.status())

    rows = campaign.run(progress=print)
    print("\nresults:")
    print(
        format_table(
            ["n", "rings", "core", "delay", "dev", "bound"],
            [
                [r.n, round(r.rings, 2), r.core_delay, r.delay,
                 r.delay_std, r.bound]
                for r in rows
            ],
        )
    )

    # Convergence of the excess delay toward the optimum.
    fit = fit_power_law(
        [r.n for r in rows], [r.delay - 1.0 for r in rows]
    )
    print(
        f"\nexcess delay ~ n^(-{fit.beta:.2f})  (R^2 = {fit.r_squared:.3f}); "
        "the eq.(7) bound only promises n^(-1/4)"
    )

    # Re-running is free: everything is checkpointed.
    again = Campaign(spec, workdir).run()
    assert [r.delay for r in again] == [r.delay for r in rows]
    print("re-run served entirely from checkpoints")

    print("\nformal-claim check (fast mode):")
    report = run_all_checks(seed=1, fast=True)
    print(report.render())


if __name__ == "__main__":
    main()
