"""A churning webinar: realistic membership dynamics end to end.

Scenario: a one-hour webinar where viewers arrive Poisson-style and
stay for heavy-tailed (lognormal) sessions — the shape measurement
studies report for real overlays. We drive both membership layers with
the same generated trace:

* the *centralised* maintainer (`DynamicOverlay`) — global knowledge,
  threshold-triggered polar-grid rebuilds;
* the *decentralised* protocol (`DistributedJoinProtocol`) — join walks
  with local knowledge only, probes counted.

Then we stream packets through the final tree while its highest-fanout
relay dies, and report the continuity damage.

Run:  python examples/webinar_churn.py
"""

import numpy as np

from repro.overlay import (
    DistributedJoinProtocol,
    DynamicOverlay,
    FailureEvent,
    simulate_stream,
)
from repro.workloads.churn import generate_churn_trace, replay_trace

FANOUT = 4


def main() -> None:
    trace = generate_churn_trace(
        duration=60.0,          # minutes
        arrival_rate=8.0,       # viewers per minute
        mean_session=25.0,      # minutes, heavy-tailed
        session_sigma=1.0,
        seed=12,
    )
    joins = sum(1 for e in trace if e.action == "join")
    leaves = len(trace) - joins
    print(f"trace: {joins} joins, {leaves} leaves over 60 minutes\n")

    central = DynamicOverlay((0.0, 0.0), FANOUT, rebuild_threshold=0.25)
    stats = replay_trace(central, trace)
    print("centralised maintainer (DynamicOverlay):")
    print(f"  peak membership   : {stats['peak']}")
    print(f"  final membership  : {central.n}")
    print(f"  full rebuilds     : {central.rebuild_count}")
    print(f"  final radius      : {central.radius():.3f}")

    proto = DistributedJoinProtocol((0.0, 0.0), FANOUT)
    replay_trace(proto, trace)
    print("\ndecentralised protocol (join walks):")
    print(f"  final radius      : {proto.radius():.3f}")
    print(f"  messages per join : {proto.mean_messages_per_join():.1f} "
          f"(vs {proto.n} members a global scan would touch)")

    # Stream 200 packets through the centralised tree; kill the busiest
    # relay a third of the way in.
    tree = central.tree()
    degrees = tree.out_degrees()
    degrees[tree.root] = 0
    relay = int(np.argmax(degrees))
    report = simulate_stream(
        tree,
        FANOUT,
        packets=200,
        packet_interval=0.02,
        failures=[FailureEvent(node=relay, time=200 * 0.02 / 3)],
        recovery_latency=0.12,
    )
    affected = int(np.count_nonzero(report.lost > 0))
    print("\nstreaming with a mid-session relay failure:")
    print(f"  receivers hit     : {affected} of {tree.n - 1}")
    print(f"  packets lost      : {report.total_lost} "
          f"({report.loss_fraction():.2%} of all deliveries)")
    print(f"  worst interruption: {report.worst_interruption:.2f} time units")
    report.final_tree.validate(max_out_degree=FANOUT)
    print("  repaired tree valid, stream continues")


if __name__ == "__main__":
    main()
