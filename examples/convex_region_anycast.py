"""General convex regions and off-centre sources (Section IV-C).

Scenario: a regional deployment — receivers spread over a rectangular
service area (think: a country's delay map) with the origin in a corner
data centre, plus a second deployment on a convex polygon. The paper's
Section IV-C says the algorithm stays asymptotically optimal: the grid
becomes the smallest *annulus* around the source covering all receivers.

The script compares the default full-disk grid with ``fit_annulus=True``
and reports how close each gets to the unbeatable lower bound (the
distance to the farthest receiver).

Run:  python examples/convex_region_anycast.py
"""

from repro.core.builder import build_polar_grid_tree
from repro.workloads.generators import polygon_points, rectangle_points

N = 20_000


def report(label: str, points, degree: int = 6) -> None:
    farthest = max(
        ((p[0] - points[0][0]) ** 2 + (p[1] - points[0][1]) ** 2) ** 0.5
        for p in points[1:]
    )
    # The paper's property 3 ("every inner cell occupied") assumes the
    # source is surrounded by receivers; an off-centre source leaves
    # whole angular sectors empty, so we switch to the relaxed
    # "connected" occupancy rule derived from convexity (Section IV-C).
    plain = build_polar_grid_tree(points, 0, degree)
    fitted = build_polar_grid_tree(
        points, 0, degree, fit_annulus=True, occupancy="connected"
    )
    plain.tree.validate(degree)
    fitted.tree.validate(degree)
    print(f"{label}")
    print(f"  lower bound (farthest receiver) : {farthest:.4f}")
    print(
        f"  property-3 grid : radius {plain.radius:.4f} "
        f"({plain.radius / farthest:.3f}x), k={plain.rings}"
    )
    print(
        f"  connected grid  : radius {fitted.radius:.4f} "
        f"({fitted.radius / farthest:.3f}x), k={fitted.rings}"
    )
    print()


def main() -> None:
    # Corner source: the annulus covering receivers excludes the huge
    # empty space near the source, so the grid spends its rings usefully.
    corner = rectangle_points(
        N, lower=(0.0, 0.0), upper=(4.0, 1.0), source=(0.05, 0.05), seed=23
    )
    report("rectangle 4x1, source in a corner", corner)

    hexagon = [
        (1.0, 0.0),
        (0.5, 0.87),
        (-0.5, 0.87),
        (-1.0, 0.0),
        (-0.5, -0.87),
        (0.5, -0.87),
    ]
    centred = polygon_points(N, hexagon, seed=23)
    report("hexagon, source at the centroid", centred)

    offcentre = polygon_points(N, hexagon, source=(0.6, 0.3), seed=23)
    report("hexagon, off-centre source", offcentre)

    print("In every case the radius sits a few percent above the lower")
    print("bound, as Theorem 2 predicts for convex regions.")


if __name__ == "__main__":
    main()
