"""CDN flash-update distribution: the full pipeline, measurements first.

Scenario: a content provider must push an urgent update from its origin
to a few hundred edge servers using only server-to-server unicast, each
server forwarding to at most 4 others (uplink budget). The paper's
pipeline is:

1. measure pairwise delays            -> simulated transit-stub Internet
2. embed hosts into Euclidean space   -> GNP landmark embedding
3. build the degree-bounded tree      -> Algorithm Polar_Grid
4. disseminate                        -> event-driven simulator

We score every algorithm on the TRUE delays (the transit-stub matrix),
not the embedded estimates, and compare against the classic baselines —
including the trade-off the paper's contribution is really about:
the greedy compact tree is excellent at hundreds of nodes but costs
O(n^2), while the polar grid stays near-optimal at millions of nodes in
near-linear time.

Run:  python examples/cdn_distribution.py
"""

import time

import numpy as np

from repro.baselines import bandwidth_latency_tree, capped_star, compact_tree
from repro.core.builder import build_polar_grid_tree
from repro.embedding import (
    embedding_distortion,
    gnp_embedding,
    transit_stub_delays,
)
from repro.workloads.generators import unit_disk

N_SERVERS = 220
FANOUT = 4  # < 6, so the grid algorithm runs its out-degree-2 variant


def true_radius(parent: np.ndarray, root: int, delays: np.ndarray) -> float:
    """Worst origin-to-edge delay measured on the real delay matrix."""
    worst = 0.0
    for node in range(parent.shape[0]):
        total = 0.0
        walk = node
        while walk != root:
            total += delays[walk, parent[walk]]
            walk = int(parent[walk])
        worst = max(worst, total)
    return worst


def main() -> None:
    print(f"CDN update push: {N_SERVERS} servers, fan-out <= {FANOUT}\n")

    # 1. "Measure" the Internet: shortest-path delays on a transit-stub
    #    topology (our stand-in for real RTT measurements).
    delays = transit_stub_delays(N_SERVERS, n_transit=10, seed=3)
    print(f"measured delays: median {np.median(delays):.1f} ms, "
          f"max {delays.max():.1f} ms")

    # 2. Embed into R^2 with GNP (origin = host 0).
    coords = gnp_embedding(delays, dim=2, n_landmarks=8, seed=3)
    quality = embedding_distortion(delays, coords)
    print("GNP embedding: median relative error "
          f"{quality['median_ratio_error']:.2%}\n")

    # Mixed uplink classes for the bandwidth-first baseline: a few fat
    # university pipes, mostly thin ones.
    rng = np.random.default_rng(3)
    bandwidth = rng.choice([100.0, 10.0, 1.0], size=N_SERVERS, p=[0.1, 0.3, 0.6])

    # 3+4. Build trees and score them on the TRUE delays.
    contenders = {
        "polar grid (paper)": build_polar_grid_tree(coords, 0, FANOUT).tree,
        "compact tree": compact_tree(coords, 0, FANOUT),
        "bandwidth-latency": bandwidth_latency_tree(
            coords, 0, FANOUT, bandwidth=bandwidth, seed=3
        ),
        "capped star": capped_star(coords, 0, FANOUT),
    }

    print(f"{'algorithm':22} {'radius(embedded)':>17} {'radius(true ms)':>16}")
    for name, tree in contenders.items():
        tree.validate(max_out_degree=FANOUT)
        embedded = tree.radius()
        actual = true_radius(tree.parent, tree.root, delays)
        print(f"{name:22} {embedded:17.2f} {actual:16.1f}")

    print(
        "\nAt a few hundred nodes the greedy compact tree wins on raw"
        "\nradius — but it is O(n^2). The paper's algorithm is the one"
        "\nthat still runs when the group has a million receivers:\n"
    )

    # The scaling act: polar grid at 200k nodes, compact tree timed at a
    # size where O(n^2) is already visible.
    big = unit_disk(200_000, seed=3)
    t0 = time.perf_counter()
    result = build_polar_grid_tree(big, 0, FANOUT)
    t_grid = time.perf_counter() - t0
    small = big[:4_000]
    t0 = time.perf_counter()
    compact_tree(small, 0, FANOUT)
    t_compact = time.perf_counter() - t0
    est = t_compact * (200_000 / 4_000) ** 2
    print(f"polar grid, 200,000 nodes : {t_grid:6.2f}s "
          f"(radius {result.radius:.3f}, lower bound ~1)")
    print(f"compact tree, 4,000 nodes : {t_compact:6.2f}s "
          f"-> ~{est/60:.0f} min extrapolated at 200k")


if __name__ == "__main__":
    main()
