"""Live streaming with residential peers: out-degree-2 trees plus churn.

Scenario: a webcast to thousands of viewers whose upload links can carry
at most two stream copies — the paper's binary-tree case. We build the
out-degree-2 polar-grid tree, simulate the dissemination with per-hop
processing delay and uplink serialisation, then kill a relay mid-session
and let the repair module reattach its orphans.

Run:  python examples/live_stream_degree2.py
"""

import numpy as np

from repro.overlay import Host, MulticastSession
from repro.workloads.generators import unit_disk

N_VIEWERS = 3_000


def main() -> None:
    # Viewer coordinates in delay space (unit disk; source at the centre,
    # e.g. from network coordinates — see examples/cdn_distribution.py).
    points = unit_disk(N_VIEWERS + 1, seed=11)
    hosts = [
        Host(
            name="origin" if i == 0 else f"viewer-{i}",
            coords=tuple(points[i]),
            max_fanout=2,
            processing_delay=0.002,  # 2 "ms" of forwarding latency
        )
        for i in range(N_VIEWERS + 1)
    ]

    session = MulticastSession(hosts, source="origin", algorithm="polar-grid")
    tree = session.build()
    metrics = session.metrics()
    print(f"viewers             : {N_VIEWERS}")
    print(f"max out-degree used : {metrics.max_out_degree} (budget 2)")
    print(f"tree radius         : {metrics.radius:.4f}")
    print(f"max depth           : {metrics.max_depth} hops")

    # Replay one keyframe through the event simulator.
    replay = session.simulate(serialization_delay=0.001)
    print(f"last viewer receives: t = {replay.completion_time:.4f} "
          f"(pure-distance radius {metrics.radius:.4f} + per-hop costs)")

    # A relay with two children leaves mid-stream.
    degrees = tree.out_degrees()
    relays = np.flatnonzero(degrees == 2)
    relay_idx = int(relays[relays != tree.root][0])
    relay_name = session.hosts[relay_idx].name
    print(f"\n{relay_name} (a relay with 2 children) disconnects...")
    session.handle_departure(relay_name)
    repaired = session.metrics()
    print(f"repaired tree radius: {repaired.radius:.4f} "
          f"(still out-degree <= 2: {repaired.max_out_degree <= 2})")
    session.tree.validate(max_out_degree=2)
    print("repaired tree passes full validation")


if __name__ == "__main__":
    main()
