"""Ablation A9: stream continuity under churn, by tree shape.

Degree-6 trees are shallow with few, heavily-loaded relays; degree-2
trees are deep with many lightly-loaded relays. Which loses more
packets under random relay failures? Deep trees put more receivers
below any given relay on average — the shallow tree should lose less.
Also: IP multicast vs overlay, head to head on the underlay.
"""

import numpy as np
import pytest

from repro.core.builder import build_polar_grid_tree
from repro.embedding.gnp import gnp_embedding
from repro.embedding.underlay import TransitStubNetwork
from repro.overlay.stream_sim import FailureEvent, simulate_stream
from repro.workloads.generators import unit_disk

pytestmark = pytest.mark.bench

N = 1_000


def random_relay_failures(tree, count, seed, horizon):
    rng = np.random.default_rng(seed)
    relays = np.flatnonzero(
        (tree.out_degrees() > 0) & (np.arange(tree.n) != tree.root)
    )
    victims = rng.choice(relays, size=count, replace=False)
    times = np.sort(rng.uniform(0.1 * horizon, 0.9 * horizon, size=count))
    return [
        FailureEvent(node=int(v), time=float(t))
        for v, t in zip(victims, times)
    ]


@pytest.mark.parametrize("degree", [6, 2])
def test_stream_under_churn(benchmark, degree):
    points = unit_disk(N, seed=70)
    tree = build_polar_grid_tree(points, 0, degree).tree
    packets, interval = 200, 0.02
    failures = random_relay_failures(
        tree, 8, seed=70, horizon=packets * interval
    )

    def run():
        return simulate_stream(
            tree,
            degree,
            packets=packets,
            packet_interval=interval,
            failures=failures,
            recovery_latency=0.1,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    report.final_tree.validate(max_out_degree=degree)
    benchmark.extra_info.update(
        degree=degree,
        loss_fraction=round(report.loss_fraction(), 5),
        failures=report.failures_applied,
    )
    assert report.failures_applied == 8
    assert report.loss_fraction() < 0.25


def test_shallow_trees_lose_less():
    """Averaged over failure scripts, the degree-6 tree's loss fraction
    is below the degree-2 tree's (smaller average subtree per relay)."""
    points = unit_disk(N, seed=71)
    losses = {}
    for degree in (6, 2):
        tree = build_polar_grid_tree(points, 0, degree).tree
        fractions = []
        for seed in range(6):
            failures = random_relay_failures(tree, 6, seed=seed, horizon=4.0)
            report = simulate_stream(
                tree,
                degree,
                packets=200,
                packet_interval=0.02,
                failures=failures,
                recovery_latency=0.1,
            )
            fractions.append(report.loss_fraction())
        losses[degree] = float(np.mean(fractions))
    assert losses[6] < losses[2]


def test_overlay_vs_ip_multicast(benchmark):
    """The deployability price, quantified on a transit-stub underlay."""
    net = TransitStubNetwork.generate(120, n_transit=8, seed=72)
    coords = gnp_embedding(net.delay_matrix(), dim=2, n_landmarks=9, seed=72)

    def run():
        tree = build_polar_grid_tree(coords, 0, 4).tree
        return net.overlay_vs_ip_multicast(tree)

    verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: round(v, 3) if isinstance(v, float) else v for k, v in verdict.items()}
    )
    assert 1.0 <= verdict["delay_ratio"] < 8.0
    assert verdict["overlay_max_stress"] < 120 - 1  # better than a star
