"""Benchmark: Table I — the paper's headline experiment.

Each (size, degree) cell of Table I becomes one benchmark: pytest-
benchmark times the build (the paper's "CPU Sec" column) and the
measured quality metrics land in ``extra_info`` next to the published
values. Shape assertions encode what must replicate: delays fall toward
1 with n, degree 2 costs more than degree 6, the eq.(7) bound dominates.

Run::

    pytest benchmarks/test_table1.py --benchmark-only
    REPRO_BENCH_SCALE=paper pytest benchmarks/test_table1.py --benchmark-only
"""

import pytest

from benchmarks.conftest import current_scale
from repro.core.builder import build_polar_grid_tree
from repro.experiments.runner import aggregate, run_trials
from repro.experiments.table1 import PAPER_TABLE1
from repro.workloads.generators import unit_disk

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_SCALE = current_scale()


@pytest.mark.parametrize("degree", [6, 2])
@pytest.mark.parametrize("n", _SCALE["table1_sizes"])
def test_table1_cell(benchmark, n, degree):
    points = unit_disk(n, seed=0)

    result = benchmark(build_polar_grid_tree, points, 0, degree)
    result.tree.validate(max_out_degree=degree)

    # Quality statistics over independent trials (cheap relative to the
    # timing loop for small n; reduced trial counts at giant n).
    trials = _SCALE["trials"] if n <= 100_000 else 3
    row = aggregate(run_trials(n, degree, trials=trials, seed=1))

    paper = PAPER_TABLE1.get((n, degree))
    benchmark.extra_info.update(
        n=n,
        degree=degree,
        rings=row.rings,
        core=round(row.core_delay, 4),
        delay=round(row.delay, 4),
        dev=round(row.delay_std, 4),
        bound=round(row.bound, 4),
        paper_delay=paper[2] if paper else None,
        paper_core=paper[1] if paper else None,
        paper_rings=paper[0] if paper else None,
    )

    # --- shape assertions (the reproduction claims) ---
    assert row.bound > row.delay, "eq.(7) must dominate the measured delay"
    if paper is not None:
        # Delay within 20% of the published mean (both converge to 1).
        assert row.delay == pytest.approx(paper[2], rel=0.20)
        # Ring counts match the published averages within one ring.
        assert abs(row.rings - paper[0]) <= 1.0


def test_table1_monotone_convergence():
    """Across sizes, the average delay decreases toward 1 (both degrees)."""
    sizes = [s for s in _SCALE["table1_sizes"] if s <= 50_000]
    for degree in (6, 2):
        delays = [
            aggregate(run_trials(n, degree, trials=5, seed=2)).delay
            for n in sizes
        ]
        assert all(a > b for a, b in zip(delays, delays[1:])), (degree, delays)
        assert delays[-1] > 1.0


def test_table1_degree2_overhead():
    """Degree-2 delay overhead is roughly twice the degree-6 overhead
    (the paper's reading of Figure 5), here asserted loosely at one
    mid-sized point."""
    n = 10_000
    six = aggregate(run_trials(n, 6, trials=5, seed=3)).delay - 1.0
    two = aggregate(run_trials(n, 2, trials=5, seed=3)).delay - 1.0
    assert 1.2 * six < two < 4.0 * six
